"""Append-only write-ahead log of serving mutations.

File format — a sequence of framed records::

    +----------------+----------------+------------------+
    | length  (u32)  | crc32   (u32)  | payload (length) |
    +----------------+----------------+------------------+

both header fields big-endian; the payload is UTF-8 JSON of one record
object carrying a monotone ``"seq"`` number plus the mutation fields.
The CRC covers the payload bytes only, so a torn header and a torn
payload are detected the same way: the frame fails to verify and the
scan stops *before* it.  Everything up to the last verifiable frame is
trusted; everything after is discarded (and physically truncated the
next time the log is opened for writing) — the standard torn-tail rule.

Durability knobs (``fsync`` policy):

``always``
    ``flush`` + ``os.fsync`` after every append.  No acknowledged
    mutation can be lost to a crash; slowest.
``interval``
    fsync every ``fsync_interval`` appends (and on :meth:`sync` /
    :meth:`close`).  A crash can lose at most the last interval's
    acknowledged mutations; the file is still never *corrupted* beyond
    the torn tail.
``never``
    flush to the OS only.  Survives process crashes (the page cache
    holds the data) but not power loss; fastest.

Sequence numbers are monotone for the lifetime of the dataset — they
keep counting across :meth:`truncate` (checkpoints), which lets the
snapshot record "applied through seq N" and the recovery path replay
exactly the frames with ``seq > N``.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Any, Dict, List, NamedTuple

from repro.observability.events import get_events
from repro.observability.metrics import get_metrics

__all__ = [
    "FSYNC_POLICIES",
    "HEADER",
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "read_wal",
]

#: Frame header: payload length + CRC32 of the payload, both big-endian u32.
HEADER = struct.Struct(">II")

FSYNC_POLICIES = ("always", "interval", "never")

#: Refuse to trust frames claiming more than this many payload bytes: a
#: corrupt length field must not make the scanner allocate gigabytes.
MAX_RECORD_BYTES = 256 * 1024 * 1024


class WalRecord(NamedTuple):
    """One decoded frame: its sequence number and the payload object."""

    seq: int
    payload: Dict[str, Any]


class WalScan(NamedTuple):
    """Result of reading a log file.

    ``valid_bytes`` is the offset just past the last verifiable frame —
    a writer reopening the log truncates to it before appending, so a
    torn tail can never corrupt later records.
    """

    records: List[WalRecord]
    valid_bytes: int
    torn: bool


def encode_record(payload: Dict[str, Any]) -> bytes:
    """Frame one payload object (which must already carry ``"seq"``)."""
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")
    return HEADER.pack(len(body), zlib.crc32(body)) + body


def read_wal(path: str) -> WalScan:
    """Scan a log file, stopping at the first unverifiable frame.

    Missing file reads as an empty, un-torn log.  A frame is rejected —
    and the scan stopped — when its header is short, its declared length
    runs past EOF or exceeds :data:`MAX_RECORD_BYTES`, its CRC fails, or
    its payload is not a JSON object with an integer ``"seq"``.
    """
    try:
        blob = open(path, "rb").read()
    except FileNotFoundError:
        return WalScan([], 0, False)
    records: List[WalRecord] = []
    offset = 0
    torn = False
    size = len(blob)
    while offset < size:
        if offset + HEADER.size > size:
            torn = True
            break
        length, crc = HEADER.unpack_from(blob, offset)
        start = offset + HEADER.size
        end = start + length
        if length > MAX_RECORD_BYTES or end > size:
            torn = True
            break
        body = blob[start:end]
        if zlib.crc32(body) != crc:
            torn = True
            break
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            torn = True
            break
        if not isinstance(payload, dict) or not isinstance(payload.get("seq"), int):
            torn = True
            break
        records.append(WalRecord(payload["seq"], payload))
        offset = end
    return WalScan(records, offset, torn)


class WriteAheadLog:
    """Appender over one log file; torn-tail trimming on open.

    Not internally locked: the owning :class:`~repro.serving.store.SkylineStore`
    serialises every append under its store lock (the ``wal-discipline``
    contract ``repro lint`` checks), which also keeps the sequence
    numbers monotone without a second lock here.
    """

    def __init__(
        self,
        path: str,
        *,
        fsync: str = "interval",
        fsync_interval: int = 8,
        next_seq: int | None = None,
    ):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if fsync_interval < 1:
            raise ValueError(f"fsync_interval must be >= 1, got {fsync_interval}")
        self.path = path
        self.fsync_policy = fsync
        self.fsync_interval = fsync_interval
        scan = read_wal(path)
        #: Whether the file had a torn tail when this writer opened it —
        #: the recovery report wants that fact even though the tail is
        #: physically trimmed a few lines below.
        self.torn_on_open = scan.torn
        if scan.torn:
            get_metrics().counter("wal.torn_tail").inc()
            get_events().emit(
                "durability.torn_tail",
                path=path,
                kept_records=len(scan.records),
                kept_bytes=scan.valid_bytes,
            )
        # Open for in-place append and trim any torn tail *before* the
        # first write lands after it.
        self._fh = open(path, "ab")
        if os.path.getsize(path) != scan.valid_bytes:
            self._fh.truncate(scan.valid_bytes)
            self._fh.seek(scan.valid_bytes)
        last_seq = scan.records[-1].seq if scan.records else -1
        self._next_seq = (last_seq + 1) if next_seq is None else max(next_seq, last_seq + 1)
        self._unsynced = 0
        self._closed = False

    # -- inspection -------------------------------------------------------------

    @property
    def next_seq(self) -> int:
        return self._next_seq

    @property
    def size_bytes(self) -> int:
        return self._fh.tell() if not self._closed else 0

    # -- writes -----------------------------------------------------------------

    def append_record(self, payload: Dict[str, Any]) -> int:
        """Frame and append one record; returns its sequence number.

        The payload's ``"seq"`` field is assigned here; callers pass the
        mutation fields only.  Durability of the returned seq depends on
        the fsync policy (see the module docstring).
        """
        if self._closed:
            raise ValueError(f"write-ahead log {self.path} is closed")
        seq = self._next_seq
        framed = encode_record({**payload, "seq": seq})
        self._fh.write(framed)
        self._next_seq = seq + 1
        self._unsynced += 1
        metrics = get_metrics()
        metrics.counter("wal.appends").inc()
        metrics.counter("wal.bytes_written").inc(len(framed))
        if self.fsync_policy == "always":
            self._do_sync()
        elif self.fsync_policy == "interval" and self._unsynced >= self.fsync_interval:
            self._do_sync()
        else:
            self._fh.flush()
        return seq

    def sync(self) -> None:
        """Force everything appended so far onto stable storage."""
        if not self._closed and self._unsynced:
            self._do_sync()

    def truncate(self) -> None:
        """Drop every frame — the post-checkpoint reset.

        Sequence numbers keep counting; only the *file* restarts, because
        the snapshot now durably covers everything the dropped frames
        said.  Callers must only invoke this after the snapshot replace
        has been fsynced (see :meth:`DatasetLog.checkpoint`).
        """
        if self._closed:
            raise ValueError(f"write-ahead log {self.path} is closed")
        self._fh.truncate(0)
        self._fh.seek(0)
        self._do_sync()
        get_metrics().counter("wal.truncates").inc()

    def close(self) -> None:
        if not self._closed:
            self.sync()
            self._fh.close()
            self._closed = True

    def _do_sync(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._unsynced = 0
        get_metrics().counter("wal.syncs").inc()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
