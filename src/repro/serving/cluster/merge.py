"""Coordinator-side merge of per-shard candidate answers.

Each fan-out leg returns the shard's *local* answer — its local skyline /
k-skyband / constrained / subspace result, already filter-pruned — as
``(global ids, rows)``.  This module turns the union of those candidate
sets into the exact global answer:

* ``skyline`` — the global skyline equals the skyline of the union of
  local skylines, so the candidates go through the reduce-side BNL
  (:func:`repro.core.bnl.bnl_merge`) via the kernel seam — the same merge
  the batch pipeline's reduce stage runs;
* ``skyband`` — the global k-skyband equals the k-skyband of the union of
  local k-skybands: a point with ``>= k`` global dominators has, in some
  single shard, dominators forming a chain prefix of ``k`` points that are
  themselves locally in the k-skyband, so every global refutation survives
  into the union;
* ``constrained`` / ``subspace`` — the same union-closure argument applied
  inside the query box / projected subspace, evaluated by the reference
  :func:`repro.serving.queries.evaluate`.

The merged rows come back alongside the ids because the coordinator feeds
them straight to :func:`repro.core.filtering.compute_filter_points` — the
next fan-out's broadcast filter set.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.core.bnl import bnl_merge
from repro.core.kernels import DominanceKernel
from repro.serving.queries import QuerySpec, evaluate

__all__ = ["merge_candidates"]


def merge_candidates(
    spec: QuerySpec,
    answers: Sequence[Tuple[Sequence[int], np.ndarray]],
    *,
    kernel: str | DominanceKernel | None = None,
) -> Tuple[List[int], np.ndarray]:
    """Merge per-shard ``(global ids, rows)`` answers into the global one.

    Returns ``(ids ascending, rows aligned with ids)``.  ``answers`` may
    be any subset of the fan-out (a degraded merge simply covers fewer
    shards); empty answers are skipped.
    """
    ids_parts: List[np.ndarray] = []
    rows_parts: List[np.ndarray] = []
    width = 0
    for shard_ids, shard_rows in answers:
        rows = np.asarray(shard_rows, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[0] == 0:
            continue
        if len(shard_ids) != rows.shape[0]:
            raise ValueError(
                f"shard answer mismatch: {len(shard_ids)} ids "
                f"for {rows.shape[0]} rows"
            )
        ids_parts.append(np.asarray(shard_ids, dtype=np.intp))
        rows_parts.append(rows)
        width = rows.shape[1]
    if not ids_parts:
        return [], np.empty((0, width))
    cat_ids = np.concatenate(ids_parts)
    cat_rows = np.vstack(rows_parts)
    if spec.kind == "skyline":
        result = bnl_merge(rows_parts, kernel=kernel)
        keep = result.indices
        order = np.argsort(cat_ids[keep], kind="stable")
        keep = keep[order]
        return [int(i) for i in cat_ids[keep]], cat_rows[keep]
    merged = evaluate(spec, cat_ids, cat_rows)
    position = {int(pid): i for i, pid in enumerate(cat_ids.tolist())}
    rows = (
        cat_rows[[position[pid] for pid in merged]]
        if merged
        else np.empty((0, width))
    )
    return merged, rows
