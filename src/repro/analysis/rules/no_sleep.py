"""udf-no-sleep: map/combine/reduce callables must never sleep.

The fault-tolerance layer (``docs/fault_tolerance.md``) budgets every task
attempt against ``RetryPolicy.task_timeout_s`` and compares stragglers to
the *median* completed-task duration when deciding speculative backups.  A
UDF that sleeps corrupts both signals: a healthy task looks hung (the
driver abandons it and burns a retry) and the inflated median masks real
stragglers.  Blocking waits belong in the engine, which accounts for them —
never in user task code.

``udf-purity`` already bans the dotted ``time.sleep`` as a nondeterminism
side effect; this rule closes the aliasing holes with a sharper message:
``from time import sleep`` then ``sleep(...)``, ``asyncio.sleep``, and any
call whose final attribute is ``sleep`` (e.g. a clock object threaded into
a UDF).  Suppress a deliberate exception with
``# repro: allow[udf-no-sleep]`` and say why.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Rule, register
from repro.analysis.findings import Finding
from repro.analysis.project import Module, Project, dotted_name
from repro.analysis.rules._udf import udf_classes


@register
class UdfNoSleepRule(Rule):
    """UDFs must not sleep — it breaks timeout and speculation accounting."""

    id = "udf-no-sleep"

    def check(self, project: Project) -> Iterator[Finding]:
        for (_, _), (module, classdef) in sorted(
            udf_classes(project).items(),
            key=lambda kv: (kv[1][0].path, kv[1][1].lineno),
        ):
            yield from self._check_class(module, classdef)

    def _check_class(
        self, module: Module, classdef: ast.ClassDef
    ) -> Iterator[Finding]:
        for method in classdef.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            where = f"{classdef.name}.{method.name}"
            for node in ast.walk(method):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if not name:
                    continue
                if name.split(".")[-1] == "sleep":
                    yield self.finding(
                        module,
                        node,
                        f"UDF {where} calls {name}(): a sleeping UDF looks "
                        "hung to the retry deadline and skews the straggler "
                        "median that triggers speculation — blocking waits "
                        "belong in the engine, not in task code",
                    )
