"""Fixture: real violations silenced by ``# repro: allow[...]`` pragmas."""


def inline_swallow(fn):
    try:
        return fn()
    except Exception:  # repro: allow[exception-hygiene] -- demo suppression
        return None


def standalone_swallow(fn):
    try:
        return fn()
    # repro: allow[exception-hygiene] -- the pragma covers the next line
    except Exception:
        return None
