"""Tests for the sort-based shuffle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.shuffle import group_sorted, shuffle


def _one_map_output(pairs, num_partitions, partition_fn):
    buffers = [[] for _ in range(num_partitions)]
    for k, v in pairs:
        buffers[partition_fn(k)].append((k, v))
    return buffers


class TestGroupSorted:
    def test_groups_runs(self):
        pairs = [("a", 1), ("a", 2), ("b", 3), ("b", 4), ("c", 5)]
        assert group_sorted(pairs) == [("a", [1, 2]), ("b", [3, 4]), ("c", [5])]

    def test_empty(self):
        assert group_sorted([]) == []

    def test_non_adjacent_duplicates_stay_separate(self):
        # group_sorted only merges adjacent runs; callers must sort first.
        pairs = [("a", 1), ("b", 2), ("a", 3)]
        assert group_sorted(pairs) == [("a", [1]), ("b", [2]), ("a", [3])]

    def test_none_key(self):
        assert group_sorted([(None, 1), (None, 2)]) == [(None, [1, 2])]


class TestShuffle:
    def test_merges_across_map_tasks(self):
        m0 = _one_map_output([("a", 1), ("b", 2)], 2, lambda k: 0 if k == "a" else 1)
        m1 = _one_map_output([("a", 3), ("b", 4)], 2, lambda k: 0 if k == "a" else 1)
        partitions, stats = shuffle([m0, m1], 2)
        assert partitions[0] == [("a", [1, 3])]
        assert partitions[1] == [("b", [2, 4])]
        assert stats.records == 4
        assert stats.bytes > 0

    def test_sorts_keys_within_partition(self):
        m0 = [[("z", 1), ("a", 2), ("m", 3)]]
        partitions, _ = shuffle([m0], 1)
        assert [k for k, _ in partitions[0]] == ["a", "m", "z"]

    def test_sort_disabled_preserves_order(self):
        m0 = [[("z", 1), ("a", 2)]]
        partitions, _ = shuffle([m0], 1, sort_keys=False)
        assert [k for k, _ in partitions[0]] == ["z", "a"]

    def test_value_order_stable_within_key(self):
        # Map-task order then buffer order — Hadoop gives no guarantee, we do.
        m0 = [[("k", "first")]]
        m1 = [[("k", "second")]]
        partitions, _ = shuffle([m0, m1], 1)
        assert partitions[0] == [("k", ["first", "second"])]

    def test_empty_partitions_present(self):
        partitions, stats = shuffle([[[("k", 1)], []]], 2)
        assert len(partitions) == 2
        assert partitions[1] == []
        assert stats.segments == 1

    def test_heterogeneous_keys_total_order(self):
        m0 = [[(1, "a"), ("x", "b"), (2.5, "c"), ((1, 2), "d")]]
        partitions, _ = shuffle([m0], 1)
        assert len(partitions[0]) == 4  # no crash, all keys present

    def test_same_type_incomparable_keys(self):
        # (1, "a") < ("a", 1) raises TypeError: same type (tuple), mutually
        # incomparable elements.  The sort must fall back to repr order
        # rather than crash — regression for the _sort_token TypeError fix.
        m0 = [[((1, "a"), "x"), (("a", 1), "y"), ((1, "a"), "z")]]
        partitions, _ = shuffle([m0], 1)
        # repr order: "('a', 1)" < "(1, 'a')" ("'" sorts before "1"), and
        # equal keys group adjacently with map-order values.
        assert partitions[0] == [
            (("a", 1), ["y"]),
            ((1, "a"), ["x", "z"]),
        ]
        again, _ = shuffle([m0], 1)
        assert again[0] == partitions[0]

    def test_same_type_incomparable_keys_frozensets(self):
        # frozensets order by subset relation: {1} < {2} is False both ways
        # but raises nothing — while mixed tuples DO raise.  Use objects
        # whose < raises to pin the repr fallback on a second type.
        class Opaque:
            def __init__(self, tag):
                self.tag = tag

            def __repr__(self):
                return f"Opaque({self.tag})"

            def __hash__(self):
                return hash(self.tag)

            def __eq__(self, other):
                return isinstance(other, Opaque) and self.tag == other.tag

        m0 = [[(Opaque("b"), 1), (Opaque("a"), 2), (Opaque("b"), 3)]]
        partitions, _ = shuffle([m0], 1)
        assert [k.tag for k, _ in partitions[0]] == ["a", "b"]
        assert partitions[0][1][1] == [1, 3]

    def test_no_map_outputs(self):
        partitions, stats = shuffle([], 3)
        assert partitions == [[], [], []]
        assert stats.records == 0

    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, 20), st.integers()), max_size=60
        ),
        num_maps=st.integers(1, 4),
        num_partitions=st.integers(1, 5),
    )
    @settings(max_examples=60)
    def test_property_no_records_lost(self, pairs, num_maps, num_partitions):
        # Distribute pairs across map tasks round-robin, partition by key mod.
        outputs = []
        for m in range(num_maps):
            chunk = pairs[m::num_maps]
            outputs.append(
                _one_map_output(chunk, num_partitions, lambda k: k % num_partitions)
            )
        partitions, stats = shuffle(outputs, num_partitions)
        flat = [
            (k, v)
            for part in partitions
            for k, values in part
            for v in values
        ]
        assert sorted(flat) == sorted(pairs)
        assert stats.records == len(pairs)
        # Keys grouped exactly once per partition
        for part in partitions:
            keys = [k for k, _ in part]
            assert len(keys) == len(set(keys))


class TestExternalSpill:
    def test_spill_path_equals_in_memory(self, tmp_path):
        pairs = [(i % 7, i) for i in range(500)]
        m0 = _one_map_output(pairs, 1, lambda k: 0)
        in_mem, _ = shuffle([m0], 1)
        spilled, stats = shuffle(
            [m0], 1, spill_dir=str(tmp_path), spill_threshold_records=100
        )
        assert spilled == in_mem
        assert stats.spilled_segments >= 1

    def test_spill_files_cleaned_up(self, tmp_path):
        pairs = [(i, i) for i in range(200)]
        m0 = _one_map_output(pairs, 1, lambda k: 0)
        shuffle([m0], 1, spill_dir=str(tmp_path), spill_threshold_records=50)
        assert list(tmp_path.iterdir()) == []

    def test_below_threshold_stays_in_memory(self, tmp_path):
        pairs = [(i, i) for i in range(10)]
        m0 = _one_map_output(pairs, 1, lambda k: 0)
        _, stats = shuffle(
            [m0], 1, spill_dir=str(tmp_path), spill_threshold_records=100
        )
        assert stats.spilled_segments == 0
