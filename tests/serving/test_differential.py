"""Acceptance: served answers equal from-scratch batch computation.

For each query kind, after any script of inserts/removes, the service's
answer must equal :func:`repro.serving.queries.evaluate` run from scratch
over the membership snapshot of the same generation — across the serial
and thread executors, and through both bulk-load paths (MapReduce-seeded
and in-core).
"""

import numpy as np
import pytest

from repro.serving.queries import QuerySpec, evaluate
from repro.serving.service import ServeConfig, SkylineService


def _specs(d):
    return [
        QuerySpec(dataset="qws"),
        QuerySpec(dataset="qws", kind="skyband", k=2),
        QuerySpec(dataset="qws", kind="skyband", k=4),
        QuerySpec(
            dataset="qws", kind="constrained",
            lower=(0.1,) * d, upper=(0.75,) * d,
        ),
        QuerySpec(dataset="qws", kind="subspace", dims=(0, d - 1)),
    ]


def _script(rng, service, live_ids):
    """One mutation step: mostly inserts, removals once enough points live."""
    if live_ids and rng.random() < 0.4:
        victim = int(rng.choice(live_ids))
        service.remove("qws", victim)
        live_ids.remove(victim)
    else:
        point = rng.random(3) + 0.01
        pid, _ = service.insert("qws", point)
        live_ids.append(pid)


@pytest.mark.parametrize("executor", ["serial", "threads"])
@pytest.mark.parametrize("mr_threshold", [10**9, 50])
def test_served_answers_match_batch_recomputation(executor, mr_threshold):
    rng = np.random.default_rng(42)
    points = rng.random((150, 3)) + 0.01
    service = SkylineService(
        ServeConfig(mr_bulk_threshold=mr_threshold, executor=executor)
    )
    service.register("qws", points)
    live_ids = list(range(150))

    for step in range(25):
        _script(rng, service, live_ids)
        snap = service.store("qws").snapshot()
        for spec in _specs(3):
            response = service.query(spec)
            assert response.generation == snap.generation, spec.describe()
            expected = evaluate(spec, snap.ids, snap.rows)
            assert response.ids == expected, (
                f"step {step}, {spec.describe()}: served {response.ids} "
                f"!= batch {expected} at generation {snap.generation}"
            )
        # Re-asking within the same generation must hit the cache and agree.
        for spec in _specs(3):
            again = service.query(spec)
            assert again.cache_hit
            assert again.ids == evaluate(spec, snap.ids, snap.rows)


def test_generation_labels_are_reproducible():
    """An answer labelled generation g matches recomputation at g, later."""
    rng = np.random.default_rng(7)
    service = SkylineService()
    service.register("qws", rng.random((80, 3)) + 0.01)
    history = {}
    answers = []
    live = list(range(80))
    for _ in range(15):
        _script(rng, service, live)
        snap = service.store("qws").snapshot()
        history[snap.generation] = snap
        answers.append((service.query(QuerySpec(dataset="qws")), snap.generation))
    for response, generation in answers:
        snap = history[generation]
        assert response.generation == generation
        assert response.ids == evaluate(
            QuerySpec(dataset="qws"), snap.ids, snap.rows
        )
