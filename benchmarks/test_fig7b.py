"""Figure 7(b): local skyline optimality vs dimension, N=100,000.

Shape assertions: the paper's ordering MR-Angle > MR-Grid > MR-Dim holds at
the top dimension, where its gaps "are even greater" than at N=1,000, and
optimality rises with dimension for the angle method.
"""

from repro.bench.experiments import figure7


def test_fig7b(benchmark, scale, cache):
    table = benchmark.pedantic(
        lambda: figure7(
            scale.large_n, dims=scale.dims, cluster=scale.cluster, cache=cache
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(table.render())
    d_top = -1
    angle = table.column("MR-Angle")
    grid = table.column("MR-Grid")
    dim = table.column("MR-Dim")
    assert angle[d_top] > grid[d_top] > dim[d_top]
    # Optimality increases with dimension ("the increase in dimensionality
    # decreases the comparability between service pairs").
    assert angle[d_top] > angle[0]
    eq_width = table.column("MR-Angle(eq-width)")
    assert eq_width[d_top] > grid[d_top]
