"""exception-hygiene: broad ``except`` must not swallow.

A ``try`` around user map/reduce code legitimately catches ``Exception`` —
but only to *wrap* it (``raise TaskError(task_id, exc) from exc``) or to
clean up and *re-raise*.  A broad handler that swallows turns a failing
task into silently-wrong output: the job "succeeds" with missing
partitions, and the differential executor suite has nothing to compare
against.  Narrow handlers (``except OSError:``) are exempt — catching a
specific type is a statement of intent this rule trusts.

A handler is compliant when its body (a) contains any ``raise``, or
(b) constructs a :class:`~repro.mapreduce.errors.TaskError`.  Anything
else needs ``# repro: allow[exception-hygiene]`` plus a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Rule, register
from repro.analysis.findings import Finding
from repro.analysis.project import Module, Project, dotted_name

_BROAD = {"Exception", "BaseException"}


@register
class ExceptionHygieneRule(Rule):
    """Broad ``except`` must re-raise, wrap into TaskError, or be allowed."""

    id = "exception-hygiene"

    def check_module(self, module: Module, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = _broad_name(node)
            if caught is None:
                continue
            if _handler_complies(node):
                continue
            yield self.finding(
                module,
                node,
                f"broad `except {caught}` swallows the error: re-raise, "
                "wrap into TaskError, or add `# repro: allow"
                "[exception-hygiene]` with a reason",
            )


def _broad_name(handler: ast.ExceptHandler) -> str | None:
    """The broad exception name this handler catches, or None if narrow."""
    if handler.type is None:
        return "BaseException"  # bare `except:`
    exprs = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for expr in exprs:
        name = dotted_name(expr)
        if name.rsplit(".", 1)[-1] in _BROAD:
            return name.rsplit(".", 1)[-1]
    return None


def _handler_complies(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            callee = dotted_name(node.func)
            if callee.rsplit(".", 1)[-1] == "TaskError":
                return True
    return False
