"""Fixture: the blocking work happens outside the lock — nothing to flag.

The pattern the serving plane uses everywhere: block first, publish the
result under the lock; keyed ``dict.get`` and ``block=False`` try-forms
are not blocking.
"""

import threading
import time


class WarmCache:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.items = {}

    def refresh(self, conn) -> None:
        payload = conn.recv(1024)  # blocking, but no lock held
        with self._lock:
            self.items["x"] = payload

    def load(self, queue) -> None:
        item = queue.get()  # blocking, but no lock held
        with self._lock:
            self.items["y"] = item

    def peek(self, queue) -> object:
        with self._lock:
            cached = self.items.get("y")  # keyed get: a dict read
            if cached is None:
                cached = queue.get(block=False)  # try-form never blocks
            return cached

    def backoff(self) -> None:
        time.sleep(0.5)
        with self._lock:
            self.items.clear()
