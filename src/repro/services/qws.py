"""Synthetic QWS-like web-service QoS dataset — the paper's workload.

**Substitution note** (see DESIGN.md §2): the paper evaluates on the QWS
dataset (Al-Masri & Mahmoud) — nine measured QoS attributes over ~10,000
real web services — extended to 100,000 services × 10 attributes "by
randomly generating QoS values which are limited to a narrow range following
the distribution of the QWS dataset".  QWS is not redistributable here, so
this module synthesises a stand-in with

* the nine QWS attributes plus a tenth (price) to reach the paper's 10
  dimensions,
* marginal distributions matched to the published QWS summary statistics
  (log-normal-ish response time / latency, percentage attributes piling up
  near 100 %, gamma-ish throughput), and
* a realistic correlation structure via a Gaussian copula (response time ↔
  latency strongly positive; availability ↔ successability ↔ reliability
  positive; throughput mildly anti-correlated with response time).

The extension procedure itself (:func:`extend_dataset`) is implemented
exactly as the paper describes: fit *empirical* per-attribute marginals and
the rank-correlation of a base dataset, then copula-resample to any size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.distributions import (
    empirical_quantile,
    gaussian_copula_uniforms,
    sample_with_marginals,
)
from repro.services.qos import Polarity, QoSAttribute, QoSSchema

__all__ = [
    "QWS_SCHEMA",
    "ServiceDataset",
    "generate_qws",
    "extend_dataset",
    "quantize_raw",
]


#: The nine QWS attributes plus a price attribute (10th dimension).
QWS_SCHEMA = QoSSchema(
    [
        QoSAttribute("response_time", "ms", Polarity.LOWER_IS_BETTER),
        QoSAttribute("availability", "%", Polarity.HIGHER_IS_BETTER, 100.0),
        QoSAttribute("throughput", "invokes/s", Polarity.HIGHER_IS_BETTER, 50.0),
        QoSAttribute("successability", "%", Polarity.HIGHER_IS_BETTER, 100.0),
        QoSAttribute("reliability", "%", Polarity.HIGHER_IS_BETTER, 100.0),
        QoSAttribute("compliance", "%", Polarity.HIGHER_IS_BETTER, 100.0),
        QoSAttribute("best_practices", "%", Polarity.HIGHER_IS_BETTER, 100.0),
        QoSAttribute("latency", "ms", Polarity.LOWER_IS_BETTER),
        QoSAttribute("documentation", "%", Polarity.HIGHER_IS_BETTER, 100.0),
        QoSAttribute("price", "$", Polarity.LOWER_IS_BETTER),
    ]
)

# Hand-authored rank-correlation targets between the ten attributes, in
# schema order.  Derived from the qualitative relationships reported for QWS:
# the latency/response-time pair is strongly coupled; the "health"
# percentages (availability / successability / reliability) move together;
# compliance / best-practices / documentation are mildly coupled; throughput
# suffers under slow responses.  Magnitudes are moderate on purpose — strong
# correlation collapses the skyline to a handful of services, independence
# blows it up; the calibration target is a skyline that grows smoothly with
# the attribute-prefix dimension (see tests/services/test_qws.py).
_CORR = np.array(
    [
        # rt    av    tp    su    re    co    bp    la    do    pr
        [1.00, -0.35, -0.35, -0.35, -0.30, -0.15, -0.15, 0.70, -0.20, 0.35],
        [-0.35, 1.00, 0.25, 0.55, 0.45, 0.25, 0.20, -0.30, 0.30, -0.30],
        [-0.35, 0.25, 1.00, 0.25, 0.20, 0.10, 0.10, -0.30, 0.15, -0.20],
        [-0.35, 0.55, 0.25, 1.00, 0.50, 0.25, 0.20, -0.30, 0.30, -0.30],
        [-0.30, 0.45, 0.20, 0.50, 1.00, 0.20, 0.15, -0.25, 0.25, -0.25],
        [-0.15, 0.25, 0.10, 0.25, 0.20, 1.00, 0.35, -0.15, 0.45, 0.00],
        [-0.15, 0.20, 0.10, 0.20, 0.15, 0.35, 1.00, -0.15, 0.50, 0.00],
        [0.70, -0.30, -0.30, -0.30, -0.25, -0.15, -0.15, 1.00, -0.20, 0.35],
        [-0.20, 0.30, 0.15, 0.30, 0.25, 0.45, 0.50, -0.20, 1.00, -0.15],
        [0.35, -0.30, -0.20, -0.30, -0.25, 0.00, 0.00, 0.35, -0.15, 1.00],
    ]
)



#: Round-off applied to every generated attribute, mirroring QWS's
#: measurement resolution (integer percentages, millisecond timings).  The
#: resulting ties matter for skyline workloads: continuous synthetic data
#: has almost-surely-distinct coordinates and therefore unrealistically
#: large skylines at d = 10.
_QUANT_DECIMALS = (0, 0, 1, 0, 0, 0, 0, 0, 0, 2)


def quantize_raw(raw: np.ndarray) -> np.ndarray:
    """Round raw attribute values to QWS measurement resolution."""
    out = np.asarray(raw, dtype=np.float64).copy()
    for j, dec in enumerate(_QUANT_DECIMALS[: out.shape[1]]):
        out[:, j] = np.round(out[:, j], dec)
    return out


def _marginals():
    """Quantile functions approximating the published QWS v2 marginals.

    Smooth distributions only (log-normal tails, beta percentages): hard
    clipping would put probability *atoms* at the attribute bounds, and the
    joint atom at the all-optimal corner manufactures "perfect services"
    that collapse the skyline to a single point — a degenerate workload no
    real service registry exhibits.
    """
    from scipy import stats

    def lognormal(sigma: float, scale: float):
        return lambda u: stats.lognorm.ppf(u, s=sigma, scale=scale)

    def pct_beta(a: float, b: float):
        return lambda u: 100.0 * stats.beta.ppf(u, a, b)

    def scaled_beta(scale: float, a: float, b: float):
        return lambda u: scale * stats.beta.ppf(u, a, b)

    return [
        lognormal(0.75, 300.0),  # response_time ms
        pct_beta(7.0, 1.4),  # availability
        scaled_beta(50.0, 1.6, 8.0),  # throughput (invokes/s, right-skewed)
        pct_beta(7.0, 1.2),  # successability
        pct_beta(6.0, 2.2),  # reliability
        pct_beta(8.0, 2.2),  # compliance
        pct_beta(5.0, 2.2),  # best_practices
        lognormal(0.9, 50.0),  # latency ms
        pct_beta(1.6, 3.0),  # documentation
        lognormal(0.8, 5.0),  # price $
    ]


@dataclass(slots=True)
class ServiceDataset:
    """A set of services with raw QoS values and their schema."""

    raw: np.ndarray  # (n, len(schema)) raw attribute values
    schema: QoSSchema
    name: str = "qws-synthetic"

    def __post_init__(self) -> None:
        self.raw = np.asarray(self.raw, dtype=np.float64)
        if self.raw.ndim != 2 or self.raw.shape[1] != len(self.schema):
            raise ValueError(
                f"raw shape {self.raw.shape} does not match schema "
                f"({len(self.schema)} attributes)"
            )

    def __len__(self) -> int:
        return self.raw.shape[0]

    @property
    def num_attributes(self) -> int:
        return self.raw.shape[1]

    def qos_matrix(self, dims: int | None = None) -> np.ndarray:
        """All-minimisation matrix over the first ``dims`` attributes.

        This is what feeds the skyline pipeline: the paper evaluates at
        d ∈ {2, 4, 6, 8, 10} by taking attribute prefixes.
        """
        dims = dims or self.num_attributes
        sub = self.schema.subset(dims)
        return sub.to_minimization(self.raw[:, :dims])

    def subset(self, n: int, *, seed: int = 0) -> "ServiceDataset":
        """A uniform random sample of ``n`` services (without replacement)."""
        if not 1 <= n <= len(self):
            raise ValueError(f"n must be in [1, {len(self)}], got {n}")
        rng = np.random.default_rng(seed)
        idx = rng.choice(len(self), size=n, replace=False)
        return ServiceDataset(
            raw=self.raw[np.sort(idx)], schema=self.schema, name=f"{self.name}-sub{n}"
        )


def generate_qws(n: int = 10_000, *, seed: int = 0) -> ServiceDataset:
    """Generate ``n`` synthetic QWS-like services over all 10 attributes."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = np.random.default_rng(seed)
    raw = sample_with_marginals(n, _marginals(), _CORR, rng)
    return ServiceDataset(raw=quantize_raw(raw), schema=QWS_SCHEMA)


def extend_dataset(
    base: ServiceDataset,
    n: int,
    *,
    seed: int = 0,
    method: str = "resample",
    narrow_range: float = 0.05,
) -> ServiceDataset:
    """The paper's extension procedure: grow ``base`` to ``n`` services.

    "We extend the size of QWS dataset by randomly generating QoS values
    which are limited to a narrow range following the distribution of the
    QWS dataset."  Two readings are implemented:

    ``method="resample"`` (default)
        Distribution-matched copula resampling: fit empirical per-attribute
        quantile functions and the base's rank correlation (normal-scores
        transform), then sample ``n - len(base)`` fresh services.  This is
        the "following the distribution" reading and is what the benchmark
        harness uses.

    ``method="jitter"``
        The "limited to a narrow range" reading: each synthetic service is
        a uniformly-chosen base service with every attribute perturbed
        uniformly within ``± narrow_range`` of that attribute's standard
        deviation, clipped to the base's observed [min, max].  Keeps local
        cluster structure but multiplies skyline membership (each skyline
        service spawns incomparable neighbours); compared in the ablation
        benchmarks.

    In both cases the first ``len(base)`` rows are the base itself — the
    paper *extends* the dataset, it does not replace it.
    """
    if n < len(base):
        raise ValueError(
            f"extension target {n} is smaller than the base ({len(base)})"
        )
    rng = np.random.default_rng(seed)
    data = base.raw
    extra = n - len(base)
    if extra == 0:
        return ServiceDataset(raw=data.copy(), schema=base.schema, name=base.name)

    if method == "jitter":
        if narrow_range < 0:
            raise ValueError(f"narrow_range must be >= 0, got {narrow_range}")
        parents = rng.integers(0, len(base), size=extra)
        spread = data.std(axis=0) * narrow_range
        noise = rng.uniform(-1.0, 1.0, size=(extra, data.shape[1])) * spread
        lo = data.min(axis=0)
        hi = data.max(axis=0)
        synthetic = np.clip(data[parents] + noise, lo, hi)
    elif method == "resample":
        d = data.shape[1]
        # Rank correlation via normal scores (van der Waerden), robust to
        # the heavy-tailed marginals.
        ranks = np.argsort(np.argsort(data, axis=0), axis=0)
        u = (ranks + 0.5) / data.shape[0]
        from repro.data.distributions import _erfinv  # internal, stable

        scores = np.sqrt(2.0) * _erfinv(2.0 * u - 1.0)
        corr = np.corrcoef(scores, rowvar=False) if d > 1 else np.ones((1, 1))
        uniforms = gaussian_copula_uniforms(extra, corr, rng)
        synthetic = np.column_stack(
            [empirical_quantile(data[:, j])(uniforms[:, j]) for j in range(d)]
        )
    else:
        raise ValueError(f"unknown method {method!r}; use 'resample' or 'jitter'")

    return ServiceDataset(
        raw=np.vstack([data, quantize_raw(synthetic)]),
        schema=base.schema,
        name=f"{base.name}-x{n}",
    )
