"""Shard placement: which shard owns which dataset rows.

The cluster's unit of placement is the dataset.  A small dataset lives on
exactly one shard (round-robin across registrations); a large one is
*partitioner-keyed*: the coordinator fits one of the paper's space
partitioners (:func:`repro.core.partitioning.make_partitioner`) over the
registered rows with ``num_partitions = number of shards`` and every row
— present and future — routes to the shard its partition id names.  The
shard functions are exactly the partitioning schemes:

* ``"hash"`` — content-hash placement (:class:`RandomPartitioner`), the
  load-balanced default;
* ``"angle"`` / ``"grid"`` / ``"dim"`` — the paper's angular, grid and
  dimensional schemes, which co-locate geometrically-similar rows so each
  shard's local skyline (the fan-out candidate set) stays small.

Identity: the coordinator replicates the single-node id discipline —
global ids are assigned in arrival order and never reused — and keeps the
bidirectional ``global id <-> (shard, local id)`` maps, so a cluster
answer is *bit-identical* to the single-node answer for the same mutation
history (the differential suite compares raw id lists).

Versioning: each placement carries a **generation vector** — the highest
generation observed from every owning shard.  Observations are merged
with ``max`` so the vector never regresses, even when a degraded fan-out
hears from only some shards.

Thread-safety: a :class:`ShardMap` is plain state with no I/O; the
coordinator serialises access under its own lock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.partitioning import SpacePartitioner, make_partitioner

__all__ = [
    "SHARD_FUNCTIONS",
    "DatasetPlacement",
    "ShardMap",
]

#: Partitioner-keyed shard functions (``None`` at register = single-shard).
SHARD_FUNCTIONS = ("hash", "angle", "grid", "dim")

#: Shard function -> partitioning scheme it reuses.
_SHARD_SCHEMES = {
    "hash": "random",
    "angle": "angle",
    "grid": "grid",
    "dim": "dim",
}


@dataclass
class DatasetPlacement:
    """Placement + identity state of one registered dataset."""

    name: str
    #: Shards holding (a slice of) this dataset, ascending.
    shard_ids: Tuple[int, ...]
    #: ``"single"`` or one of :data:`SHARD_FUNCTIONS`.
    shard_fn: str
    #: Fitted row -> shard router (``None`` for single-shard placements).
    partitioner: SpacePartitioner | None = None
    #: Next global id to assign (ids are arrival-ordered, never reused).
    next_global_id: int = 0
    #: Live row count (for stats; the shards hold the actual rows).
    size: int = 0
    #: Highest generation observed per owning shard (monotone).
    generations: Dict[int, int] = field(default_factory=dict)
    #: global id -> (shard id, shard-local id)
    local_of: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    #: (shard id, shard-local id) -> global id
    global_of: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def generation_vector(self) -> Tuple[int, ...]:
        """Per-shard generations in ``shard_ids`` order — the cache key leg."""
        return tuple(self.generations[s] for s in self.shard_ids)

    def observe_generation(self, shard_id: int, generation: int) -> None:
        """Fold in one shard's reported generation (``max``: never regress)."""
        current = self.generations.get(shard_id, 0)
        self.generations[shard_id] = max(current, int(generation))

    def owner_of(self, row: np.ndarray) -> int:
        """The shard id that owns ``row`` (routing for inserts)."""
        if self.partitioner is None:
            return self.shard_ids[0]
        part = int(self.partitioner.assign(np.asarray(row).reshape(1, -1))[0])
        return self.shard_ids[part]

    def bind(self, shard_id: int, local_id: int) -> int:
        """Record a newly-inserted row; returns its fresh global id."""
        global_id = self.next_global_id
        self.next_global_id += 1
        self.local_of[global_id] = (shard_id, local_id)
        self.global_of[(shard_id, local_id)] = global_id
        self.size += 1
        return global_id

    def release(self, global_id: int) -> Tuple[int, int]:
        """Forget a removed row; returns its ``(shard, local id)`` address."""
        try:
            address = self.local_of.pop(global_id)
        except KeyError:
            raise KeyError(
                f"unknown point id {global_id} in dataset {self.name!r}"
            ) from None
        del self.global_of[address]
        self.size -= 1
        return address

    def to_global(self, shard_id: int, local_ids: Sequence[int]) -> List[int]:
        """Translate one shard's answer ids into global ids."""
        return [self.global_of[(shard_id, int(i))] for i in local_ids]


class ShardMap:
    """Dataset placements across a fixed set of shards.

    Owns no connections and does no I/O; the coordinator consults it for
    routing and identity under its own lock.
    """

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise ValueError(f"need at least one shard, got {num_shards}")
        self.num_shards = num_shards
        self._placements: Dict[str, DatasetPlacement] = {}
        self._next_single = 0  # round-robin cursor for single-shard datasets

    def __contains__(self, name: str) -> bool:
        return name in self._placements

    def datasets(self) -> List[str]:
        return sorted(self._placements)

    def placement(self, name: str) -> DatasetPlacement:
        try:
            return self._placements[name]
        except KeyError:
            raise KeyError(name) from None

    def place(
        self,
        name: str,
        points: np.ndarray | None,
        *,
        shard_fn: str | None = None,
    ) -> Tuple[DatasetPlacement, List[np.ndarray | None]]:
        """Create (or replace) a placement; returns it plus per-shard slices.

        The second element has one entry per cluster shard: the rows that
        shard must register (``None`` where the shard does not participate,
        an empty array where it participates but starts empty).  Global ids
        are pre-assigned here in row order — exactly the ids a single-node
        register would hand out.
        """
        if not name:
            raise ValueError("dataset name must be non-empty")
        if shard_fn is not None and shard_fn not in SHARD_FUNCTIONS:
            raise ValueError(
                f"unknown shard function {shard_fn!r}; "
                f"choose from {SHARD_FUNCTIONS} (or omit for single-shard)"
            )
        slices: List[np.ndarray | None] = [None] * self.num_shards
        if shard_fn is None or self.num_shards == 1:
            shard = self._next_single % self.num_shards
            self._next_single += 1
            placement = DatasetPlacement(
                name=name, shard_ids=(shard,), shard_fn="single"
            )
            rows = (
                np.empty((0, 0))
                if points is None
                else np.asarray(points, dtype=np.float64)
            )
            slices[shard] = rows
            for i in range(rows.shape[0]):
                placement.bind(shard, i)
        else:
            if points is None or np.asarray(points).shape[0] == 0:
                raise ValueError(
                    f"shard function {shard_fn!r} needs registration rows "
                    "to fit its partitioner; register points or omit shard_fn"
                )
            rows = np.asarray(points, dtype=np.float64)
            partitioner = make_partitioner(
                _SHARD_SCHEMES[shard_fn], self.num_shards
            )
            partitioner.fit(rows)
            assignment = partitioner.assign(rows)
            placement = DatasetPlacement(
                name=name,
                shard_ids=tuple(range(self.num_shards)),
                shard_fn=shard_fn,
                partitioner=partitioner,
            )
            locals_seen = [0] * self.num_shards
            for shard in range(self.num_shards):
                slices[shard] = rows[assignment == shard]
            # Shard-local ids are the row's rank within its slice — the
            # order the shard's own register will assign them in.
            for row_index in range(rows.shape[0]):
                shard = int(assignment[row_index])
                placement.bind(shard, locals_seen[shard])
                locals_seen[shard] += 1
        for shard in placement.shard_ids:
            placement.generations.setdefault(shard, 0)
        self._placements[name] = placement
        return placement, slices
