"""Filter-point selection — the broadcast pruning stage (Ciaccia–Martinenghi).

*Optimization Strategies for Parallel Computation of Skylines* shows that a
small, well-chosen set of **filter points** broadcast to every partition
prunes most of the input before any partition-local skyline work: a point
dominated by any filter point cannot be in the skyline and need never enter
the shuffle.  This module picks that set:

1. draw a seeded sample of the input (one pass, deterministic),
2. keep only the sample's own skyline (a dominated sample point can never
   out-prune its dominator),
3. rank the sample-skyline points by estimated pruning power and keep the
   top ``k``:

   * ``"volume"`` (default) — the volume of the dominance region
     ``Π (upper_i − v_i)``: the fraction of the data box a filter point
     dominates under independence, the paper's geometric criterion;
   * ``"entropy"`` — smallest ``Σ ln(1 + v_i)`` first, the same monotone
     score the sort-first ordering uses (cheaper, correlates with volume on
     normalised data).

Because every filter point is an actual input row, pruning is *exact*: a
pruned point is dominated by a surviving data point, so the global skyline
is unchanged — only redundant shuffle traffic and local dominance work
disappear.  The map-side application is
:meth:`repro.core.kernels.DominanceKernel.filter_survivors`; counts land in
the ``prune.*`` counter family.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.core.dominance import validate_points
from repro.core.kernels import DominanceKernel, get_kernel

__all__ = [
    "DEFAULT_FILTER_K",
    "DEFAULT_FILTER_SAMPLE",
    "FilterScore",
    "compute_filter_points",
]

#: Default filter-set size: small enough to broadcast to every map task for
#: free, large enough to cover the skyline's spread at d ≤ 10.
DEFAULT_FILTER_K = 32

#: Default sample size the filter set is chosen from.
DEFAULT_FILTER_SAMPLE = 2048

FilterScore = Literal["volume", "entropy"]


def compute_filter_points(
    points: np.ndarray,
    *,
    k: int = DEFAULT_FILTER_K,
    sample: int = DEFAULT_FILTER_SAMPLE,
    seed: int = 0,
    score: FilterScore = "volume",
    kernel: str | DominanceKernel | None = None,
) -> np.ndarray:
    """Choose up to ``k`` filter rows from ``points``.

    Returns a ``(k', d)`` array with ``k' ≤ k`` (the sample skyline can be
    smaller than ``k``).  ``k = 0`` returns an empty ``(0, d)`` array —
    pruning disabled.  Deterministic for a given ``(points, k, sample,
    seed, score)``.
    """
    pts = validate_points(points)
    n, d = pts.shape
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if sample < 1:
        raise ValueError(f"sample must be >= 1, got {sample}")
    if score not in ("volume", "entropy"):
        raise ValueError(f"unknown filter score {score!r}")
    if k == 0 or n == 0:
        return np.empty((0, d))

    rng = np.random.default_rng(seed)
    if n > sample:
        drawn = pts[rng.choice(n, size=sample, replace=False)]
    else:
        drawn = pts
    knl = get_kernel(kernel)
    candidates = drawn[knl.skyline(drawn, stage="filter-select")]

    ranks = _pruning_rank(candidates, score)
    # Strongest pruner first: map-side application prescreens against the
    # head of the filter array before paying for the full-width pass.
    return np.ascontiguousarray(candidates[ranks[:k]])


def _pruning_rank(candidates: np.ndarray, score: FilterScore) -> np.ndarray:
    """Candidate indices ordered best-pruner first (stable, deterministic)."""
    if score == "volume":
        upper = candidates.max(axis=0, keepdims=True)
        gaps = np.clip(upper - candidates, 0.0, None)
        # log-volume of the dominated box; -inf (a coordinate on the upper
        # face) simply ranks last, which is exactly right: that face prunes
        # nothing in that dimension.
        with np.errstate(divide="ignore"):
            power = np.log(gaps).sum(axis=1)
        return np.argsort(-power, kind="stable")
    shifted = candidates - candidates.min(axis=0, keepdims=True)
    return np.argsort(np.log1p(shifted).sum(axis=1), kind="stable")
