"""Versioned result cache for the serving layer.

Entries are keyed by ``(dataset, query-kind, params, generation)`` — the
:meth:`repro.serving.queries.QuerySpec.cache_key` tuple.  Mutations never
*delete* from the cache: they bump the store's generation counter, so new
lookups simply miss and old generations age out of the LRU.  That makes
stale results addressable on purpose: under overload the service can
answer from :meth:`ResultCache.latest` — the newest cached generation of
the same query — flagged ``degraded=True`` (the PR-4 degrade vocabulary),
instead of shedding the request outright.

Thread-safety: every access to the entry map happens under ``self._lock``
(the engine's lock-discipline contract, enforced by ``repro lint``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, List, Tuple

from repro.observability.events import get_events

__all__ = ["ResultCache"]

Key = Tuple[Any, ...]


class ResultCache:
    """Bounded LRU cache of query results, versioned by generation."""

    def __init__(self, max_entries: int = 256):
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        # ``max_entries == 0`` is a legal degenerate cache: every get
        # misses, every put is dropped (never stored-then-evicted, which
        # would spray ``cache.evict`` events), and the stale-answer path
        # finds nothing — the configuration knob for cache-off serving.
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Key, List[int]]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Key) -> List[int] | None:
        """The cached result ids for ``key``, or ``None`` on a miss.

        Returns a *copy*: the stored list must never escape the lock by
        reference, or a caller mutating its response races an eviction's
        re-read of the same object (and every coalesced follower would
        alias the leader's list).
        """
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return list(value)

    def put(self, key: Key, value: List[int]) -> None:
        if self.max_entries == 0:
            return
        evicted: List[Key] = []
        with self._lock:
            self._entries[key] = list(value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                old_key, _ = self._entries.popitem(last=False)
                self._evictions += 1
                evicted.append(old_key)
        for old_key in evicted:  # emit outside the lock; emission may fan out
            get_events().emit(
                "cache.evict",
                dataset=old_key[0],
                query=old_key[1],
                generation=old_key[3] if len(old_key) > 3 else None,
            )

    def invalidate(self, dataset: str) -> int:
        """Drop every entry of ``dataset``; returns how many were dropped.

        Normal mutations never need this — they bump the generation and
        old keys age out.  Re-*registering* a dataset is the exception:
        the replacement store restarts its generation counter, so entries
        of the previous incarnation would become addressable again at the
        same ``(dataset, kind, params, generation)`` key while naming ids
        that no longer exist."""
        with self._lock:
            stale = [key for key in self._entries if key[0] == dataset]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def latest(
        self, dataset: str, kind: str, params_key: Tuple[Any, ...]
    ) -> Tuple[Any, List[int]] | None:
        """Newest cached ``(generation, ids)`` for this query shape.

        The stale-answer path: scans for every cached generation of the
        ``(dataset, kind, params)`` prefix and returns the most recent one
        (or ``None`` when the query was never cached).  Linear in the cache
        size, which is LRU-bounded and small.  Generations are compared
        with ``>`` and returned untouched, so integer store generations
        and the cluster's per-shard generation vectors both work.
        """
        prefix = (dataset, kind, params_key)
        with self._lock:
            # One pass entirely under the lock: the generation comparison
            # and the value read are atomic with respect to evictions, so
            # a concurrent ``put`` can never leave us holding a key whose
            # entry was just popped.  The value is copied for the same
            # aliasing reason as :meth:`get`.
            best: Tuple[Any, List[int]] | None = None
            for key, value in self._entries.items():
                if key[:3] == prefix and (best is None or key[3] > best[0]):
                    best = (key[3], value)
            if best is None:
                return None
            return (best[0], list(best[1]))

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }
