"""§IV theory check: Theorems 1–2 closed forms vs Monte-Carlo areas."""

from repro.bench.experiments import theory


def test_theory(benchmark, scale):
    table = benchmark.pedantic(
        lambda: theory(mc_samples=scale.mc_samples),
        rounds=1,
        iterations=1,
    )
    print()
    print(table.render())
    assert all(table.column("bound_holds"))
    for closed, mc in zip(table.column("D_angle_eq3"), table.column("D_angle_mc")):
        assert abs(closed - mc) < 0.02
    # MR-Angle dominates MR-Grid throughout the premise region.
    for a, g in zip(table.column("D_angle_eq3"), table.column("D_grid")):
        assert a > g
