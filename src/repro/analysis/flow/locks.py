"""Whole-program lock analysis: acquisition graph, cycles, blocking reach.

Per function, a forward may-analysis over the :class:`~repro.analysis.flow.
cfg.CFG` computes the set of locks held before every event (``with
self._lock`` regions plus bare ``.acquire()`` / ``.release()`` expression
statements).  That yields a :class:`FunctionSummary`: locks acquired,
direct lock→lock ordering edges, every call site with its held-set, direct
blocking operations, and ``self.X`` mutations with their guard state.

Two interprocedural fixpoints close the summaries over the call graph
(callbacks included, thread hand-offs excluded — locks do not follow a
callable onto another thread):

* **transitive acquires** — every lock a call to ``f`` may end up taking,
  with a witness chain of ``qualname:line`` frames;
* **transitive blocking** — whether a call to ``f`` may reach a blocking
  operation (sleep / socket / queue / future / subprocess), with the same
  kind of chain.

The lock graph then has an edge ``A → B`` wherever some path acquires B
while holding A.  A cycle (or a non-reentrant self-edge) is a potential
deadlock; a held-set call site whose callee may block is the classic
serving-latency killer.  Precision notes: summaries are context-
insensitive (a callee's acquisitions are flattened to "may acquire", so
intra-callee release-before-call ordering is kept but caller-specific
paths are not), and same-lock nesting inside one function under-counts —
both directions only ever *drop* edges, never invent them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.flow.callgraph import CallGraph, FunctionInfo, _lock_call_kind
from repro.analysis.flow.cfg import CFG, Event, dataflow_forward
from repro.analysis.project import Module, Project

__all__ = [
    "LockAnalysis",
    "LockId",
    "LockCycle",
    "EdgeWitness",
    "HeldBlocking",
    "FunctionSummary",
    "CallSiteInfo",
]

#: Witness chains are truncated to this many frames.
_MAX_CHAIN = 8

#: Fixpoint passes over the function set (call-graph diameter bound).
_MAX_ROUNDS = 24

#: Resolved out-of-project callees that block the calling thread.
_BLOCKING_EXTERNAL = {
    "time.sleep",
    "select.select",
    "selectors.BaseSelector.select",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "socket.create_connection",
    "os.wait",
    "os.waitpid",
}

#: Method names that block regardless of arguments (socket/future/event/
#: process idioms).  Deliberately excludes ambiguous names like ``send``.
_BLOCKING_ATTRS = {
    "sleep",
    "recv",
    "recv_into",
    "sendall",
    "accept",
    "serve_forever",
    "result",
    "wait",
    "communicate",
    "connect",
}

#: Method names that block only in their zero-positional-arg form:
#: ``q.join()`` / ``q.get()`` block, ``sep.join(parts)`` / ``d.get(k)``
#: do not.
_BLOCKING_ZERO_ARG_ATTRS = {"join", "get"}

#: In-place container mutators (mirrors the lock-discipline rule).
_MUTATORS = {
    "append",
    "add",
    "update",
    "extend",
    "insert",
    "remove",
    "discard",
    "clear",
    "pop",
    "popitem",
    "setdefault",
}

_CONSTRUCTORS = {"__init__", "__new__", "__post_init__"}


@dataclass(slots=True, frozen=True, order=True)
class LockId:
    """One lock identity: (owning class-or-module qualname, attribute)."""

    owner: str
    attr: str

    def label(self) -> str:
        return f"{self.owner}.{self.attr}"


@dataclass(slots=True)
class CallSiteInfo:
    """One call (or property read / dunder dispatch) with its held-set."""

    node: ast.AST
    line: int
    held: FrozenSet[LockId]
    callees: Tuple[FunctionInfo, ...]
    #: Blocking description when the call itself blocks ("time.sleep").
    blocking: str = ""
    async_sink: bool = False
    escaping: Tuple[FunctionInfo, ...] = ()


@dataclass(slots=True)
class FunctionSummary:
    """Everything the interprocedural passes need about one function."""

    fn: FunctionInfo
    #: Lock → line of its first acquisition in this function.
    acquires: Dict[LockId, int] = field(default_factory=dict)
    #: (held, acquired, acquisition node) ordering edges within the body.
    direct_edges: List[Tuple[LockId, LockId, ast.AST]] = field(default_factory=list)
    #: Non-reentrant locks re-acquired while already held.
    self_deadlocks: List[Tuple[LockId, ast.AST]] = field(default_factory=list)
    call_sites: List[CallSiteInfo] = field(default_factory=list)
    #: (attr, some-lock-held, node) for each ``self.X`` mutation.
    attr_writes: List[Tuple[str, bool, ast.AST]] = field(default_factory=list)


@dataclass(slots=True)
class EdgeWitness:
    """Why edge src → dst exists: the acquiring path's top frame."""

    src: LockId
    dst: LockId
    module: Module
    node: ast.AST
    fn_qualname: str
    #: ``qualname:line`` frames from the held site down to the acquisition.
    chain: Tuple[str, ...]


@dataclass(slots=True)
class LockCycle:
    """One strongly-connected component of the lock graph."""

    locks: Tuple[LockId, ...]
    edges: Tuple[EdgeWitness, ...]


@dataclass(slots=True)
class HeldBlocking:
    """A blocking operation reachable while at least one lock is held."""

    module: Module
    node: ast.AST
    fn_qualname: str
    held: Tuple[LockId, ...]
    description: str
    chain: Tuple[str, ...]


class LockAnalysis:
    """Summaries + fixpoints + the lock acquisition graph for one project."""

    def __init__(self, project: Project, graph: CallGraph):
        self.project = project
        self.graph = graph
        self.summaries: Dict[str, FunctionSummary] = {}
        self.lock_kinds: Dict[LockId, str] = {}
        #: fn qualname → lock → witness chain for its (transitive) acquires.
        self.trans_acquires: Dict[str, Dict[LockId, Tuple[str, ...]]] = {}
        #: fn qualname → (description, chain) when the function may block.
        self.trans_blocking: Dict[str, Optional[Tuple[str, Tuple[str, ...]]]] = {}
        self.edges: Dict[Tuple[LockId, LockId], EdgeWitness] = {}

    # -- construction -------------------------------------------------------------

    @classmethod
    def build(cls, project: Project) -> "LockAnalysis":
        graph = CallGraph.build(project)
        analysis = cls(project, graph)
        for qualname in sorted(graph.functions):
            fn = graph.functions[qualname]
            analysis.summaries[qualname] = analysis._summarize(fn)
        analysis._run_fixpoints()
        analysis._build_edges()
        return analysis

    # -- lock identification ------------------------------------------------------

    def lock_ids_in(self, fn: FunctionInfo, expr: ast.expr) -> List[LockId]:
        """Lock identities a with-item / acquire receiver refers to."""
        if isinstance(expr, ast.Name):
            kind = self.graph.module_locks.get((fn.module.name, expr.id))
            if kind is not None:
                lock = LockId(fn.module.name, expr.id)
                self.lock_kinds.setdefault(lock, kind)
                return [lock]
            local = self._local_lock(fn, expr.id)
            if local is not None:
                return [local]
            binding = self.graph.project.resolve_name(fn.module, expr.id)
            if binding is not None:
                kind = self.graph.module_locks.get(
                    (binding.module.name, binding.qualname.rsplit(".", 1)[-1])
                )
                if kind is not None:
                    lock = LockId(
                        binding.module.name, binding.qualname.rsplit(".", 1)[-1]
                    )
                    self.lock_kinds.setdefault(lock, kind)
                    return [lock]
            return []
        if not isinstance(expr, ast.Attribute):
            return []
        if isinstance(expr.value, ast.Name) and expr.value.id == "self":
            if fn.class_info is None:
                return []
            return self._class_lock(fn.class_info.qualname, expr.attr)
        ref = self.graph.infer_type(fn, expr.value)
        if ref is not None and ref.cls is not None:
            return self._class_lock(ref.cls, expr.attr)
        return []

    def _local_lock(self, fn: FunctionInfo, name: str) -> Optional[LockId]:
        """A function-local ``lock = threading.Lock()`` binding."""
        for stmt in ast.walk(fn.node):
            if not isinstance(stmt, ast.Assign) or not isinstance(
                stmt.value, ast.Call
            ):
                continue
            kind = _lock_call_kind(stmt.value)
            if kind is None:
                continue
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    lock = LockId(fn.qualname, name)
                    self.lock_kinds.setdefault(lock, kind)
                    return lock
        return None

    def _class_lock(self, class_qualname: str, attr: str) -> List[LockId]:
        info = self.graph.classes.get(class_qualname)
        if info is None:
            return []
        for cls in self.graph.mro(info):
            kind = cls.lock_attrs.get(attr)
            if kind is not None:
                lock = LockId(cls.qualname, attr)
                self.lock_kinds.setdefault(lock, kind)
                return [lock]
        return []

    def _reentrant(self, lock: LockId) -> bool:
        """Reacquiring while held is safe only for a known RLock; the
        name-convention-only "unknown" kind gets the benefit of the doubt
        (no self-deadlock report without seeing the constructor)."""
        return self.lock_kinds.get(lock, "unknown") != "lock"

    # -- per-function summaries ---------------------------------------------------

    def _summarize(self, fn: FunctionInfo) -> FunctionSummary:
        summary = FunctionSummary(fn=fn)
        cfg = CFG.from_function(fn.node)
        empty: FrozenSet[LockId] = frozenset()

        def transfer(state: FrozenSet[LockId], event: Event) -> FrozenSet[LockId]:
            kind, node = event
            if kind == "with_enter":
                assert isinstance(node, (ast.With, ast.AsyncWith))
                for item in node.items:
                    for lock in self.lock_ids_in(fn, item.context_expr):
                        state = state | {lock}
                return state
            if kind == "with_exit":
                assert isinstance(node, (ast.With, ast.AsyncWith))
                for item in node.items:
                    for lock in self.lock_ids_in(fn, item.context_expr):
                        state = state - {lock}
                return state
            acquired = self._acquire_stmt_lock(fn, node)
            if acquired is not None:
                lock, releasing = acquired
                state = (state - {lock}) if releasing else (state | {lock})
            return state

        def join(a: FrozenSet[LockId], b: FrozenSet[LockId]) -> FrozenSet[LockId]:
            return a | b

        states = dataflow_forward(cfg, empty, empty, transfer, join)
        for block_id in sorted(states):
            for event, held in states[block_id]:
                self._scan_event(fn, summary, event, held)
        return summary

    def _acquire_stmt_lock(
        self, fn: FunctionInfo, node: ast.AST
    ) -> Optional[Tuple[LockId, bool]]:
        """(lock, is_release) for a bare ``x.acquire()``/``x.release()``."""
        if not isinstance(node, ast.Expr) or not isinstance(node.value, ast.Call):
            return None
        call = node.value
        if not isinstance(call.func, ast.Attribute):
            return None
        if call.func.attr not in ("acquire", "release"):
            return None
        if call.func.attr == "acquire" and _kw_false(call, ("blocking",)):
            return None  # try-lock: may not be held afterwards
        locks = self.lock_ids_in(fn, call.func.value)
        if not locks:
            return None
        return locks[0], call.func.attr == "release"

    def _scan_event(
        self,
        fn: FunctionInfo,
        summary: FunctionSummary,
        event: Event,
        held: FrozenSet[LockId],
    ) -> None:
        kind, node = event
        if kind == "with_exit":
            return
        if kind == "with_enter":
            assert isinstance(node, (ast.With, ast.AsyncWith))
            for item in node.items:
                for lock in self.lock_ids_in(fn, item.context_expr):
                    self._record_acquisition(summary, lock, node, held)
                self._scan_calls(fn, summary, item.context_expr, held)
            return
        acquired = self._acquire_stmt_lock(fn, node)
        if acquired is not None and not acquired[1]:
            self._record_acquisition(summary, acquired[0], node, held)
        for root in _stmt_scan_roots(node):
            self._scan_calls(fn, summary, root, held)
            self._scan_writes(fn, summary, root, held)

    def _record_acquisition(
        self,
        summary: FunctionSummary,
        lock: LockId,
        node: ast.AST,
        held: FrozenSet[LockId],
    ) -> None:
        summary.acquires.setdefault(lock, getattr(node, "lineno", 0))
        for prior in sorted(held):
            if prior == lock:
                if not self._reentrant(lock):
                    summary.self_deadlocks.append((lock, node))
            else:
                summary.direct_edges.append((prior, lock, node))

    def _scan_calls(
        self,
        fn: FunctionInfo,
        summary: FunctionSummary,
        root: ast.AST,
        held: FrozenSet[LockId],
    ) -> None:
        for call in _calls_under(root):
            # Lock acquire/release primitives are ordering events, not calls.
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in ("acquire", "release")
                and self.lock_ids_in(fn, call.func.value)
            ):
                continue
            resolved = self.graph.resolve_call(fn, call)
            callees = list(resolved.callees)
            callees.extend(self.graph.invoked_callbacks(fn, call, resolved))
            blocking = self._blocking_description(fn, call, resolved.external)
            if callees or blocking or resolved.async_sink:
                summary.call_sites.append(
                    CallSiteInfo(
                        node=call,
                        line=getattr(call, "lineno", 0),
                        held=held,
                        callees=tuple(callees),
                        blocking=blocking,
                        async_sink=resolved.async_sink,
                        escaping=resolved.escaping,
                    )
                )
        for prop_node, getter in self.graph.property_reads(fn, root):
            summary.call_sites.append(
                CallSiteInfo(
                    node=prop_node,
                    line=getattr(prop_node, "lineno", 0),
                    held=held,
                    callees=(getter,),
                )
            )
        for cmp_node, method in self.graph.contains_checks(fn, root):
            summary.call_sites.append(
                CallSiteInfo(
                    node=cmp_node,
                    line=getattr(cmp_node, "lineno", 0),
                    held=held,
                    callees=(method,),
                )
            )

    def _blocking_description(
        self, fn: FunctionInfo, call: ast.Call, external: str
    ) -> str:
        if external in _BLOCKING_EXTERNAL:
            return external
        func = call.func
        if not isinstance(func, ast.Attribute):
            return ""
        attr = func.attr
        if attr in _BLOCKING_ATTRS:
            if _kw_false(call, ("blocking", "block", "wait")):
                return ""
            return f".{attr}()"
        if attr in _BLOCKING_ZERO_ARG_ATTRS and not call.args:
            if _kw_false(call, ("blocking", "block")):
                return ""
            return f".{attr}()"
        if attr == "acquire" and not self.lock_ids_in(fn, func.value):
            # Semaphore/condition acquire — blocking unless blocking=False.
            if _kw_false(call, ("blocking",)):
                return ""
            return ".acquire()"
        return ""

    def _scan_writes(
        self,
        fn: FunctionInfo,
        summary: FunctionSummary,
        root: ast.AST,
        held: FrozenSet[LockId],
    ) -> None:
        if fn.class_info is None:
            return
        locked = bool(held)
        for node in _nodes_under(root):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in _flatten_targets(targets):
                    attr = _self_attr_root(target)
                    if attr is not None:
                        summary.attr_writes.append((attr, locked, node))
            elif isinstance(node, ast.Call):
                callee = node.func
                if isinstance(callee, ast.Attribute) and callee.attr in _MUTATORS:
                    attr = _self_attr_root(callee.value)
                    if attr is not None:
                        summary.attr_writes.append((attr, locked, node))

    # -- interprocedural fixpoints ------------------------------------------------

    def _run_fixpoints(self) -> None:
        for qualname, summary in self.summaries.items():
            acquires: Dict[LockId, Tuple[str, ...]] = {}
            for lock in sorted(summary.acquires):
                acquires[lock] = (f"{qualname}:{summary.acquires[lock]}",)
            self.trans_acquires[qualname] = acquires
            blocking: Optional[Tuple[str, Tuple[str, ...]]] = None
            for site in sorted(summary.call_sites, key=lambda s: s.line):
                if site.blocking:
                    blocking = (site.blocking, (f"{qualname}:{site.line}",))
                    break
            self.trans_blocking[qualname] = blocking

        for _ in range(_MAX_ROUNDS):
            changed = False
            for qualname in sorted(self.summaries):
                summary = self.summaries[qualname]
                mine = self.trans_acquires[qualname]
                for site in summary.call_sites:
                    if site.async_sink:
                        continue  # runs on another thread, not in this frame
                    frame = f"{qualname}:{site.line}"
                    for callee in site.callees:
                        sub = self.trans_acquires.get(callee.qualname)
                        if sub:
                            for lock, chain in sub.items():
                                if lock not in mine:
                                    mine[lock] = (frame, *chain)[:_MAX_CHAIN]
                                    changed = True
                        if self.trans_blocking[qualname] is None:
                            deeper = self.trans_blocking.get(callee.qualname)
                            if deeper is not None:
                                desc, chain = deeper
                                self.trans_blocking[qualname] = (
                                    desc,
                                    (frame, *chain)[:_MAX_CHAIN],
                                )
                                changed = True
            if not changed:
                break

    # -- the lock graph -----------------------------------------------------------

    def _build_edges(self) -> None:
        for qualname in sorted(self.summaries):
            summary = self.summaries[qualname]
            module = summary.fn.module
            for src, dst, node in summary.direct_edges:
                self._add_edge(
                    src, dst, module, node, qualname,
                    (f"{qualname}:{getattr(node, 'lineno', 0)}",),
                )
            for lock, node in summary.self_deadlocks:
                self._add_edge(
                    lock, lock, module, node, qualname,
                    (f"{qualname}:{getattr(node, 'lineno', 0)}",),
                )
            for site in summary.call_sites:
                if site.async_sink or not site.held:
                    continue
                frame = f"{qualname}:{site.line}"
                for callee in site.callees:
                    sub = self.trans_acquires.get(callee.qualname)
                    if not sub:
                        continue
                    for lock in sorted(sub):
                        chain = (frame, *sub[lock])[:_MAX_CHAIN]
                        for held in sorted(site.held):
                            if held == lock:
                                if not self._reentrant(lock):
                                    self._add_edge(
                                        lock, lock, module, site.node,
                                        qualname, chain,
                                    )
                            else:
                                self._add_edge(
                                    held, lock, module, site.node, qualname, chain
                                )

    def _add_edge(
        self,
        src: LockId,
        dst: LockId,
        module: Module,
        node: ast.AST,
        fn_qualname: str,
        chain: Tuple[str, ...],
    ) -> None:
        key = (src, dst)
        if key not in self.edges:
            self.edges[key] = EdgeWitness(
                src=src,
                dst=dst,
                module=module,
                node=node,
                fn_qualname=fn_qualname,
                chain=chain,
            )

    # -- rule-facing queries ------------------------------------------------------

    def edge_pairs(self) -> Set[Tuple[str, str]]:
        """Owner-level edge labels — the sanitizer subgraph contract."""
        return {(src.label(), dst.label()) for (src, dst) in self.edges}

    def cycles(self) -> List[LockCycle]:
        """Strongly-connected lock-graph components (incl. self-loops)."""
        nodes: Set[LockId] = set()
        adjacency: Dict[LockId, List[LockId]] = {}
        for src, dst in sorted(self.edges):
            nodes.add(src)
            nodes.add(dst)
            adjacency.setdefault(src, []).append(dst)

        index: Dict[LockId, int] = {}
        low: Dict[LockId, int] = {}
        on_stack: Set[LockId] = set()
        stack: List[LockId] = []
        sccs: List[List[LockId]] = []
        counter = [0]

        def strongconnect(root: LockId) -> None:
            work: List[Tuple[LockId, int]] = [(root, 0)]
            while work:
                node, child_index = work.pop()
                if child_index == 0:
                    index[node] = low[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                children = adjacency.get(node, [])
                advanced = False
                for position in range(child_index, len(children)):
                    child = children[position]
                    if child not in index:
                        work.append((node, position + 1))
                        work.append((child, 0))
                        advanced = True
                        break
                    if child in on_stack:
                        low[node] = min(low[node], index[child])
                if advanced:
                    continue
                if low[node] == index[node]:
                    component: List[LockId] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    sccs.append(component)
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])

        for node in sorted(nodes):
            if node not in index:
                strongconnect(node)

        out: List[LockCycle] = []
        for component in sccs:
            members = set(component)
            cyclic = len(component) > 1 or any(
                (lock, lock) in self.edges for lock in component
            )
            if not cyclic:
                continue
            witnesses = [
                self.edges[key]
                for key in sorted(self.edges)
                if key[0] in members and key[1] in members
            ]
            out.append(
                LockCycle(
                    locks=tuple(sorted(members)), edges=tuple(witnesses)
                )
            )
        out.sort(key=lambda cycle: cycle.locks)
        return out

    def blocking_under_lock(self) -> List[HeldBlocking]:
        """Every blocking operation reachable with at least one lock held."""
        out: List[HeldBlocking] = []
        seen: Set[Tuple[str, int, str]] = set()

        def add(
            summary: FunctionSummary,
            site: CallSiteInfo,
            description: str,
            chain: Tuple[str, ...],
        ) -> None:
            key = (summary.fn.qualname, site.line, description)
            if key in seen:
                return
            seen.add(key)
            out.append(
                HeldBlocking(
                    module=summary.fn.module,
                    node=site.node,
                    fn_qualname=summary.fn.qualname,
                    held=tuple(sorted(site.held)),
                    description=description,
                    chain=chain,
                )
            )

        for qualname in sorted(self.summaries):
            summary = self.summaries[qualname]
            for site in summary.call_sites:
                if not site.held or site.async_sink:
                    continue
                frame = f"{qualname}:{site.line}"
                if site.blocking:
                    add(summary, site, site.blocking, (frame,))
                for callee in site.callees:
                    deeper = self.trans_blocking.get(callee.qualname)
                    if deeper is not None:
                        desc, chain = deeper
                        add(summary, site, desc, (frame, *chain)[:_MAX_CHAIN])
        return out


# ---------------------------------------------------------------------------
# AST helpers
# ---------------------------------------------------------------------------


def _stmt_scan_roots(node: ast.AST) -> List[ast.AST]:
    """The parts of a statement event executed *at* the event.

    Compound statements appear in the CFG as header events — their bodies
    become separate events — so only the header expression is scanned here
    (scanning the whole node would double-count the body).
    """
    if isinstance(node, (ast.If, ast.While)):
        return [node.test]
    if isinstance(node, (ast.For, ast.AsyncFor)):
        return [node.iter]
    if isinstance(node, ast.Match):
        return [node.subject]
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    return [node]


def _nodes_under(root: ast.AST) -> Iterator[ast.AST]:
    """Walk without descending into nested defs/lambdas (deferred code)."""
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        if node is not root and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _calls_under(root: ast.AST) -> Iterator[ast.Call]:
    for node in _nodes_under(root):
        if isinstance(node, ast.Call):
            yield node


def _kw_false(call: ast.Call, names: Tuple[str, ...]) -> bool:
    """True when a keyword like ``blocking=False`` disarms the call."""
    for kw in call.keywords:
        if kw.arg in names and isinstance(kw.value, ast.Constant):
            if kw.value.value is False:
                return True
    return False


def _flatten_targets(targets: List[ast.expr]) -> Iterator[ast.AST]:
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            yield from _flatten_targets(list(target.elts))
        elif isinstance(target, ast.Starred):
            yield from _flatten_targets([target.value])
        else:
            yield target


def _self_attr_root(target: ast.AST) -> Optional[str]:
    """First-level attribute of a ``self.A...`` store target, else None."""
    chain: List[ast.AST] = []
    node: ast.AST = target
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        chain.append(node)
        node = node.value
    if not isinstance(node, ast.Name) or node.id != "self" or not chain:
        return None
    last = chain[-1]
    if isinstance(last, ast.Attribute):
        return last.attr
    return None
