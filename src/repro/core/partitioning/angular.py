"""Angular partitioning — the paper's new MR-Angle scheme (§III-C).

Points are transformed to hyperspherical coordinates (Eq. 1, implemented in
:mod:`repro.core.hyperspherical`) and the space is divided into sectors
along the ``n−1`` *angular* coordinates only — the radial coordinate plays
no role, so every sector is a cone from the origin.  That is exactly why the
scheme works: each cone slices through the whole quality range, so every
sector contains both near-origin (high-quality) and far-origin points, local
skylines stay small, and the Reduce-stage merge has little redundant work.

Two layout choices generalise the paper's 2-D picture (Figure 3c, a fan of
N sectors) to n dimensions; both are configurable, with defaults chosen by
measurement (see DESIGN.md §5):

* **allocation** — how the sector budget spreads over the n−1 angle axes.
  ``"first-axis"`` (default) puts all N sectors along ø₁, the direct
  generalisation of the 2-D fan; ``"balanced"`` mimics MR-Grid's
  balanced-budget rule over the angle subspace ("we modify the grid
  partitioning over the n−1 subspaces"); an explicit per-axis count list is
  also accepted.
* **bins** — boundary placement per axis.  ``"quantile"`` (default) uses
  angle quantiles of the fit data, so sectors hold equal point counts;
  ``"equal-width"`` divides ``[0, π/2]`` evenly, which matches the 2-D
  illustration but collapses in high dimensions, where angular coordinates
  concentrate near π/2 (a ten-dimensional suffix norm dwarfs any single
  coordinate, so ø₁ ≈ π/2 for almost every point).
"""

from __future__ import annotations

from typing import Literal, Mapping, Sequence

import numpy as np

from repro.core.hyperspherical import MAX_ANGLE, angular_coordinates
from repro.core.partitioning.base import SpacePartitioner
from repro.core.partitioning.grid import balanced_axis_counts

__all__ = ["AngularPartitioner"]

Bins = Literal["equal-width", "quantile"]
Allocation = Literal["first-axis", "balanced"]


class AngularPartitioner(SpacePartitioner):
    """Hyperspherical sectors over the angular coordinates.

    Parameters
    ----------
    num_partitions:
        Requested sector budget.  Exact under ``"first-axis"`` allocation;
        under ``"balanced"`` the effective count is the largest per-axis
        product ≤ the budget.
    bins:
        Boundary placement: ``"quantile"`` (default, load-balanced) or
        ``"equal-width"`` (the 2-D paper illustration).
    allocation:
        ``"first-axis"`` (default), ``"balanced"``, or an explicit sequence
        of per-angle-axis sector counts.
    boundaries:
        Explicit per-axis boundary-angle arrays (each sorted ascending,
        ``k−1`` edges for ``k`` sectors on that axis), overriding ``bins``.
        Used e.g. by the §IV theory benchmark, whose closed forms assume
        the paper's equal-*area* square sectors (boundary slopes 1/2, 1, 2)
        rather than equal angles.
    """

    scheme = "angle"

    def __init__(
        self,
        num_partitions: int,
        *,
        bins: Bins = "quantile",
        allocation: Allocation | Sequence[int] = "first-axis",
        boundaries: Sequence[np.ndarray] | None = None,
    ) -> None:
        super().__init__(num_partitions)
        if bins not in ("equal-width", "quantile"):
            raise ValueError(f"unknown bins mode {bins!r}")
        if boundaries is not None:
            boundaries = [np.asarray(b, dtype=np.float64) for b in boundaries]
            for b in boundaries:
                if b.ndim != 1 or (np.diff(b) < 0).any():
                    raise ValueError(
                        "each boundary array must be 1-D and sorted ascending"
                    )
        self._explicit_boundaries = boundaries
        if isinstance(allocation, str):
            if allocation not in ("first-axis", "balanced"):
                raise ValueError(f"unknown allocation {allocation!r}")
        else:
            allocation = [int(c) for c in allocation]
            if any(c < 1 for c in allocation):
                raise ValueError(f"axis counts must be >= 1, got {allocation}")
        self._requested = num_partitions
        self.bins = bins
        self.allocation = allocation
        self._counts: list[int] | None = None
        self._radix: np.ndarray | None = None
        self._boundaries: list[np.ndarray] | None = None

    def _axis_counts(self, n_axes: int) -> list[int]:
        if isinstance(self.allocation, list):
            counts = (self.allocation + [1] * n_axes)[:n_axes]
            if len(self.allocation) > n_axes:
                raise ValueError(
                    f"{len(self.allocation)} axis counts for {n_axes} angle axes"
                )
            return counts
        if self.allocation == "first-axis":
            return [self._requested] + [1] * (n_axes - 1)
        return balanced_axis_counts(self._requested, n_axes)

    def _fit(self, points: np.ndarray) -> None:
        angles = angular_coordinates(points)  # (n, d-1), values in [0, π/2]
        n_axes = angles.shape[1]
        if self._explicit_boundaries is not None:
            if len(self._explicit_boundaries) != n_axes:
                raise ValueError(
                    f"{len(self._explicit_boundaries)} boundary arrays for "
                    f"{n_axes} angle axes"
                )
            counts = [b.size + 1 for b in self._explicit_boundaries]
            self._counts = counts
            self.num_partitions = int(np.prod(counts))
            radix = np.ones(n_axes, dtype=np.int64)
            for i in range(n_axes - 2, -1, -1):
                radix[i] = radix[i + 1] * counts[i + 1]
            self._radix = radix
            self._boundaries = list(self._explicit_boundaries)
            return
        counts = self._axis_counts(n_axes)
        self._counts = counts
        self.num_partitions = int(np.prod(counts)) if counts else 1
        radix = np.ones(n_axes, dtype=np.int64)
        for i in range(n_axes - 2, -1, -1):
            radix[i] = radix[i + 1] * counts[i + 1]
        self._radix = radix

        boundaries: list[np.ndarray] = []
        for axis, k in enumerate(counts):
            if self.bins == "equal-width":
                edges = np.linspace(0.0, MAX_ANGLE, k + 1)[1:-1]
            else:
                qs = np.linspace(0, 1, k + 1)[1:-1]
                edges = np.quantile(angles[:, axis], qs)
            boundaries.append(np.asarray(edges, dtype=np.float64))
        self._boundaries = boundaries

    def _assign(self, points: np.ndarray) -> np.ndarray:
        angles = angular_coordinates(points)
        if angles.shape[1] != len(self._counts):
            raise ValueError(
                f"expected {len(self._counts) + 1}-dimensional points, "
                f"got {points.shape[1]}"
            )
        return self.sector_of_angles(angles)

    def sector_of_angles(self, angles: np.ndarray) -> np.ndarray:
        """Sector ids for pre-computed angle vectors."""
        angles = np.atleast_2d(np.asarray(angles, dtype=np.float64))
        ids = np.zeros(angles.shape[0], dtype=np.int64)
        for axis, edges in enumerate(self._boundaries):
            if edges.size == 0:
                continue
            # searchsorted gives the bin index; boundary ownership goes to
            # the upper bin (right-open bins); clamping keeps π/2 in range.
            bin_idx = np.searchsorted(edges, angles[:, axis], side="right")
            bin_idx = np.clip(bin_idx, 0, self._counts[axis] - 1)
            ids += bin_idx * self._radix[axis]
        return ids

    def _detail(self) -> Mapping[str, object]:
        return {
            "bins": self.bins,
            "allocation": self.allocation,
            "requested_partitions": self._requested,
            "counts_per_angle_axis": list(self._counts) if self._counts else None,
            "boundaries": (
                [b.tolist() for b in self._boundaries] if self._boundaries else None
            ),
        }

    def _trace_attrs(self) -> Mapping[str, object]:
        return {
            "bins": self.bins,
            "allocation": (
                self.allocation if isinstance(self.allocation, str) else "explicit"
            ),
            "sectors_per_axis": list(self._counts) if self._counts else [],
        }
