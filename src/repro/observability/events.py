"""Structured event log: a bounded ring buffer of operational moments.

Metrics say *how much*; spans say *how long*; events say *what happened*.
The engine and serving layer emit one :class:`Event` per operationally
interesting moment — a shed request, a degraded (stale) answer, a task
retry or speculative backup, a dataset generation bump, a cache eviction —
into a process-wide :class:`EventLog` (:func:`get_events`).  The log is a
fixed-capacity ring: emission never blocks and never grows without bound;
old events fall off the tail and are counted in :attr:`EventLog.dropped`.

Each event carries a monotone sequence number, a wall-clock timestamp, a
dotted ``kind`` (``serve.shed``, ``task.retry``, ``store.generation``,
``cache.evict``, …) and flat JSON-safe attributes.  Consumers poll with
:meth:`EventLog.tail` (optionally filtered by kind glob and ``since_seq``
for gap-free incremental reads) or dump the whole ring as JSON lines —
the ``events`` verb of the serving protocol and the CI smoke artifact are
both exactly that.

The timestamp source is injectable (``time_fn``) so tests pin event times
with a fake clock; everything else is plain dict arithmetic under one
lock (the engine's lock-discipline contract).
"""

from __future__ import annotations

import fnmatch
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, List

__all__ = ["Event", "EventLog", "get_events", "set_events"]

#: Default ring capacity: enough for minutes of busy serving, small enough
#: that an `events` response or CI artifact stays a few hundred KB.
DEFAULT_CAPACITY = 1024


@dataclass(frozen=True, slots=True)
class Event:
    """One structured occurrence; immutable once emitted."""

    seq: int
    ts: float
    kind: str
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"seq": self.seq, "ts": round(self.ts, 6), "kind": self.kind,
                **self.attrs}


class EventLog:
    """Thread-safe bounded ring buffer of :class:`Event` records."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        *,
        time_fn: Any = time.time,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._time_fn = time_fn
        self._lock = threading.Lock()
        self._ring: Deque[Event] = deque(maxlen=capacity)
        self._next_seq = 0
        self._emitted: Dict[str, int] = {}

    def emit(self, kind: str, **attrs: Any) -> Event:
        """Append one event; never blocks, never raises on a full ring."""
        reserved = attrs.keys() & {"seq", "ts", "kind"}
        if reserved:
            raise ValueError(
                f"event attr names {sorted(reserved)} are reserved"
            )
        with self._lock:
            event = Event(self._next_seq, float(self._time_fn()), kind, attrs)
            self._next_seq += 1
            self._ring.append(event)
            self._emitted[kind] = self._emitted.get(kind, 0) + 1
        return event

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def total_emitted(self) -> int:
        with self._lock:
            return self._next_seq

    @property
    def dropped(self) -> int:
        """Events that aged off the ring (emitted minus retained)."""
        with self._lock:
            return self._next_seq - len(self._ring)

    def counts(self) -> Dict[str, int]:
        """Cumulative emissions per kind (including dropped events)."""
        with self._lock:
            return dict(sorted(self._emitted.items()))

    def tail(
        self,
        n: int | None = None,
        *,
        kinds: Iterable[str] | None = None,
        since_seq: int | None = None,
    ) -> List[Event]:
        """The newest matching events, oldest first.

        ``kinds`` filters by glob patterns (``["serve.*"]``); ``since_seq``
        keeps only events with ``seq > since_seq`` so an incremental poller
        resumes where it left off; ``n`` caps the result (newest win).
        """
        with self._lock:
            events = list(self._ring)
        if since_seq is not None:
            events = [e for e in events if e.seq > since_seq]
        if kinds is not None:
            patterns = list(kinds)
            events = [
                e for e in events
                if any(fnmatch.fnmatchcase(e.kind, p) for p in patterns)
            ]
        if n is not None and n >= 0:
            events = events[-n:]
        return events

    def to_jsonl(self, **tail_kwargs: Any) -> str:
        """The (filtered) tail as JSON lines — the artifact/verb format."""
        return "\n".join(
            json.dumps(e.to_dict(), default=str, sort_keys=True)
            for e in self.tail(**tail_kwargs)
        )

    def dump(self, path: str, **tail_kwargs: Any) -> int:
        """Write the (filtered) tail to ``path``; returns the event count."""
        events = self.tail(**tail_kwargs)
        with open(path, "w", encoding="utf-8") as fh:
            for event in events:
                fh.write(
                    json.dumps(event.to_dict(), default=str, sort_keys=True)
                    + "\n"
                )
        return len(events)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()


_default_log = EventLog()


def get_events() -> EventLog:
    """The process-wide event log every engine/serving hook emits into."""
    return _default_log


def set_events(log: EventLog | None) -> EventLog:
    """Install (or, with ``None``, reset to a fresh) process-wide log."""
    global _default_log
    _default_log = log if log is not None else EventLog()
    return _default_log
