"""Sort-based shuffle: map outputs → grouped, key-sorted reduce inputs.

The runner hands over each map task's per-partition buffers; the shuffle
merges them per reduce partition, sorts by key, and groups values, exactly
like Hadoop's merge phase (minus the on-disk segment merging — an optional
spill path through framed temp files exists for memory-constrained runs).

Keys of mixed types are ordered by ``(type name, repr)`` so the sort is total
even for heterogeneous key sets; homogeneous keys sort naturally.
"""

from __future__ import annotations

import heapq
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Hashable, List, Tuple

from repro.mapreduce.serialization import (
    PickleCodec,
    estimate_nbytes,
    read_frames,
    write_frames,
)
from repro.observability.metrics import get_metrics

Pair = Tuple[Hashable, Any]
Grouped = List[Tuple[Hashable, List[Any]]]


@dataclass(slots=True)
class ShuffleStats:
    """Volume accounting for one job's shuffle."""

    records: int = 0
    bytes: int = 0
    segments: int = 0
    spilled_segments: int = 0

    def as_dict(self) -> dict:
        """JSON-ready view (attached to the shuffle phase's trace span)."""
        return {
            "records": self.records,
            "bytes": self.bytes,
            "segments": self.segments,
            "spilled_segments": self.spilled_segments,
        }

    def observe(self, registry) -> None:
        """Accumulate this shuffle's volume into a metrics registry."""
        registry.counter("shuffle.records").inc(self.records)
        registry.counter("shuffle.bytes").inc(self.bytes)
        registry.counter("shuffle.segments").inc(self.segments)
        registry.counter("shuffle.spilled_segments").inc(self.spilled_segments)


def _sort_token(key: Hashable) -> Tuple[str, Any]:
    """A totally-ordered proxy for arbitrary hashable keys."""
    return (type(key).__name__, key)


def _safe_sort(pairs: List[Pair]) -> List[Pair]:
    """Sort pairs by key, surviving heterogeneous / partially-ordered keys."""
    try:
        return sorted(pairs, key=lambda kv: kv[0])
    except TypeError:
        return sorted(pairs, key=lambda kv: (type(kv[0]).__name__, repr(kv[0])))


def group_sorted(pairs: List[Pair]) -> Grouped:
    """Group a key-sorted pair list into ``(key, [values])`` runs."""
    grouped: Grouped = []
    current_key: Hashable = None
    current_values: List[Any] | None = None
    for key, value in pairs:
        if current_values is not None and key == current_key:
            current_values.append(value)
        else:
            current_values = [value]
            current_key = key
            grouped.append((key, current_values))
    return grouped


def shuffle(
    map_outputs: List[List[List[Pair]]],
    num_partitions: int,
    *,
    sort_keys: bool = True,
    spill_dir: str | None = None,
    spill_threshold_records: int = 0,
) -> Tuple[List[Grouped], ShuffleStats]:
    """Merge map-side buffers into grouped reduce inputs.

    Parameters
    ----------
    map_outputs:
        ``map_outputs[m][p]`` is map task *m*'s buffer destined for reduce
        partition *p*.
    num_partitions:
        Number of reduce partitions ``R``.
    sort_keys:
        Sort each partition's pairs by key before grouping (Hadoop always
        does; disable only for experiments).
    spill_dir / spill_threshold_records:
        When set and a partition exceeds the threshold, its segments are
        staged through framed temp files and k-way merged — an external-sort
        path exercising the same code users would need at scale.

    Returns
    -------
    (per-partition grouped inputs, shuffle statistics)
    """
    stats = ShuffleStats()
    partitions: List[Grouped] = []
    for part in range(num_partitions):
        segments = [out[part] for out in map_outputs if out[part]]
        stats.segments += len(segments)
        n_records = sum(len(seg) for seg in segments)
        stats.records += n_records
        for seg in segments:
            for key, value in seg:
                stats.bytes += estimate_nbytes(key) + estimate_nbytes(value)
        use_spill = (
            spill_dir is not None
            and spill_threshold_records > 0
            and n_records > spill_threshold_records
            and sort_keys
        )
        if use_spill:
            merged = _external_merge(segments, spill_dir, stats)
        else:
            flat = [pair for seg in segments for pair in seg]
            merged = _safe_sort(flat) if sort_keys else flat
        partitions.append(group_sorted(merged))
    stats.observe(get_metrics())
    return partitions, stats


def _external_merge(
    segments: List[List[Pair]], spill_dir: str, stats: ShuffleStats
) -> List[Pair]:
    """Sort each segment, spill to framed files, then k-way merge."""
    codec = PickleCodec()
    paths: List[str] = []
    os.makedirs(spill_dir, exist_ok=True)
    try:
        for seg in segments:
            fd, path = tempfile.mkstemp(dir=spill_dir, suffix=".spill")
            paths.append(path)
            stats.spilled_segments += 1
            with os.fdopen(fd, "wb") as fh:
                write_frames(fh, (codec.encode(p) for p in _safe_sort(seg)))

        def _stream(path: str):
            with open(path, "rb") as fh:
                for frame in read_frames(fh):
                    yield codec.decode(frame)

        streams = [_stream(p) for p in paths]
        merged = list(
            heapq.merge(*streams, key=lambda kv: _sort_token(kv[0]))
        )
        return merged
    finally:
        for path in paths:
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
