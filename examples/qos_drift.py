#!/usr/bin/env python
"""QoS drift under network congestion — the paper's §I motivation.

"The QoS of selected service may get degraded rapidly, when the Internet
traffic becomes saturated or jammed with bottlenecks.  This may prevent the
skyline solution from achieving the desired level of QoS."

This example simulates exactly that: congestion waves inflate the response
time / latency of a random subset of providers each epoch; affected services
are re-published with their fresh measurements, the registry's incremental
skylines absorb the churn, and we track how much of the previously
recommended skyline survives each wave — the practical argument for
re-running selection continuously rather than caching it.

Run:  python examples/qos_drift.py
"""

import numpy as np

from repro.services import QWS_SCHEMA, ServiceRegistry, generate_qws

CONGESTION_FACTOR = 3.0     # response time / latency inflation when congested
CONGESTED_SHARE = 0.15      # fraction of services hit per epoch
EPOCHS = 6

def main() -> None:
    rng = np.random.default_rng(11)
    dataset = generate_qws(1_000, seed=9)
    rt_col = QWS_SCHEMA.index_of("response_time")
    la_col = QWS_SCHEMA.index_of("latency")

    registry = ServiceRegistry(QWS_SCHEMA, dims=6)
    current_qos = dataset.raw.copy()
    ids = [
        registry.publish(f"svc-{i}", f"provider-{i % 37}", "payments", current_qos[i])
        .service_id
        for i in range(len(dataset))
    ]

    previous = {s.service_id for s in registry.skyline("payments")}
    print(f"epoch 0: {len(previous)} skyline services (baseline)\n")
    print("epoch  congested  skyline  kept  lost  gained")

    for epoch in range(1, EPOCHS + 1):
        # Map the previous epoch's skyline to logical service indices now —
        # re-publishing below replaces registry ids.
        prev_map = {sid: i for i, sid in enumerate(ids)}
        prev_idx = {prev_map[s] for s in previous}

        # A congestion wave: some services get much slower...
        hit = rng.random(len(dataset)) < CONGESTED_SHARE
        # ...and last epoch's victims recover.
        current_qos = dataset.raw.copy()
        current_qos[hit, rt_col] *= CONGESTION_FACTOR
        current_qos[hit, la_col] *= CONGESTION_FACTOR

        # Re-publish fresh measurements for affected services only: a
        # withdraw + publish pair per service touches just its partition.
        for i in np.flatnonzero(hit):
            registry.withdraw(ids[i])
            ids[i] = registry.publish(
                f"svc-{i}", f"provider-{i % 37}", "payments", current_qos[i]
            ).service_id

        current = {s.service_id for s in registry.skyline("payments")}
        # Compare by original service index, not registry id.
        id_to_idx = {sid: i for i, sid in enumerate(ids)}
        curr_idx = {id_to_idx[s] for s in current}
        kept = len(prev_idx & curr_idx)
        print(f"{epoch:5d}  {int(hit.sum()):9d}  {len(current):7d}  "
              f"{kept:4d}  {len(prev_idx - curr_idx):4d}  "
              f"{len(curr_idx - prev_idx):6d}")
        previous = current

    print("\nevery congestion wave churns part of the QoS-optimal set, so"
          "\na cached selection goes stale within epochs — re-selection must"
          "\nbe cheap, which is what incremental per-partition maintenance"
          "\n(and the MapReduce pipeline at scale) buys.")

if __name__ == "__main__":
    main()
