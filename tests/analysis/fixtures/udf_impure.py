"""Violating fixture for udf-purity.

Each line carrying a ``# VIOLATION: <rule-id>`` marker must produce exactly
that finding; the test asserts the (rule id, line) pairs match the markers.
"""

import random
import time

CACHE = {}
STATE = []


class Mapper:
    pass


class Reducer:
    pass


class NoisyMapper(Mapper):
    def map(self, key, value):
        jitter = random.random()  # VIOLATION: udf-purity
        stamp = time.time()  # VIOLATION: udf-purity
        print(key)  # VIOLATION: udf-purity
        CACHE[key] = value  # VIOLATION: udf-purity
        STATE.append(value)  # VIOLATION: udf-purity
        yield key, value + jitter + stamp


class LeakyReducer(Reducer):
    def reduce(self, key, values):
        global STATE  # VIOLATION: udf-purity
        get_metrics().counter("n").inc()  # VIOLATION: udf-purity
        yield key, sum(values)


def get_metrics():
    return None


class Job:
    def __init__(self, name, mapper, reducer):
        self.name = name


JOB = Job("dirty", NoisyMapper, LeakyReducer)
