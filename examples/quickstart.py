#!/usr/bin/env python
"""Quickstart: compute a skyline three ways and check they agree.

Covers the core public API in ~40 lines:

* generate a benchmark workload,
* compute the skyline on a single machine (BNL),
* run the paper's distributed MR-Angle pipeline on the bundled
  MapReduce engine, and
* replay the measured run on a simulated 4-server Hadoop-era cluster.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import run_mr_skyline, skyline
from repro.data import generate
from repro.mapreduce.cluster import ClusterSpec

def main() -> None:
    # 10,000 points, 4 attributes, minimisation semantics on the unit cube.
    points = generate("independent", 10_000, 4, seed=7)

    # Single-machine reference: block-nested-loops (Börzsönyi et al.).
    local = skyline(points, algorithm="bnl")
    print(f"single-machine BNL skyline: {local.size} of {len(points)} points")

    # Distributed: the paper's MR-Angle pipeline (Algorithm 1) — angular
    # partitioning, per-sector local skylines, BNL merge.
    result = run_mr_skyline(points, method="angle", num_workers=4)
    print(f"MR-Angle global skyline:    {result.global_indices.size} points "
          f"across {result.num_partitions} sectors")
    assert np.array_equal(result.global_indices, local), "pipelines disagree!"

    # Per-partition view: every sector contributed a local skyline.
    for pid, sky in sorted(result.local_skylines.items()):
        print(f"  sector {pid}: {sky.size:4d} local skyline points")

    # Replay the measured tasks on a simulated 4-server cluster.
    sim = result.simulate(ClusterSpec(num_nodes=4))
    print(f"simulated 4-server run: map {sim.map_time_s:.2f}s + "
          f"reduce {sim.reduce_time_s:.2f}s = {sim.total_s:.2f}s")
    print(f"dominance tests performed: {result.dominance_tests:,}")

if __name__ == "__main__":
    main()
