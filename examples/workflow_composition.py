#!/usr/bin/env python
"""QoS-aware workflow composition — skyline pruning on a travel workflow.

A travel-booking workflow chains three abstract tasks (flight search,
payment, notification), each with many candidate providers.  The end-to-end
QoS of a plan aggregates its components: response times add up, success
probabilities multiply.  The naive plan space is the product of the
candidate sets; per-task skyline pruning (sound for monotone aggregations)
collapses it by orders of magnitude before the Pareto filter runs.

Run:  python examples/workflow_composition.py
"""

import numpy as np

from repro.services import (
    QWS_SCHEMA,
    CompositionTask,
    generate_qws,
    skyline_compositions,
)

def main() -> None:
    rng = np.random.default_rng(4)
    dataset = generate_qws(3_000, seed=21)

    # Three attributes for plan evaluation: response time (sum), the flipped
    # availability (prob: plan succeeds iff every step does), price (sum).
    cols = [
        QWS_SCHEMA.index_of("response_time"),
        QWS_SCHEMA.index_of("availability"),
        QWS_SCHEMA.index_of("price"),
    ]
    schema = QWS_SCHEMA  # flip via the full schema, then slice the columns
    matrix = schema.to_minimization(dataset.raw)[:, cols]
    rules = ["sum", "prob", "sum"]
    bounds = [None, 100.0, None]

    # Assign random disjoint provider pools to the abstract tasks.
    pool = rng.permutation(len(dataset))
    tasks = [
        CompositionTask("flight-search", matrix[pool[0:900]], ids=pool[0:900]),
        CompositionTask("payment", matrix[pool[900:1800]], ids=pool[900:1800]),
        CompositionTask("notification", matrix[pool[1800:2700]], ids=pool[1800:2700]),
    ]

    result = skyline_compositions(tasks, rules, prob_bounds=bounds)
    print(f"raw plan space:        {result.search_space:,} combinations")
    print(f"after per-task pruning: {result.enumerated:,} enumerated")
    print(f"Pareto-optimal plans:  {len(result)}\n")

    order = np.argsort(result.qos[:, 0])  # fastest plans first
    print("fastest 5 Pareto plans (rt = total ms, fail = plan failure %, $):")
    print("   flight  payment  notify |     rt   fail%      $")
    for row in order[:5]:
        plan = result.plans[row]
        qos = result.qos[row]
        print(f"   {plan[0]:6d}  {plan[1]:7d}  {plan[2]:6d} |"
              f" {qos[0]:7.0f}  {qos[1]:5.1f}  {qos[2]:6.2f}")

    cheapest = result.plans[np.argmin(result.qos[:, 2])]
    most_reliable = result.plans[np.argmin(result.qos[:, 1])]
    print(f"\ncheapest plan:       services {cheapest.tolist()}")
    print(f"most reliable plan:  services {most_reliable.tolist()}")

if __name__ == "__main__":
    main()
