"""Tests for key-routing partitioners."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mapreduce.errors import JobConfigError
from repro.mapreduce.partitioner import (
    HashPartitioner,
    KeyFieldPartitioner,
    RangePartitioner,
    SingleReducerPartitioner,
)


class TestHashPartitioner:
    @given(st.one_of(st.integers(), st.text(), st.tuples(st.integers(), st.text())))
    def test_in_range(self, key):
        p = HashPartitioner()
        assert 0 <= p.partition(key, 7) < 7

    def test_deterministic(self):
        p = HashPartitioner()
        assert p.partition("service-42", 13) == p.partition("service-42", 13)

    def test_stable_known_value(self):
        # Pinned value: guards against accidental hash-function changes that
        # would silently reshuffle persisted partition layouts.
        assert HashPartitioner().partition("stable-key", 16) == \
            HashPartitioner().partition("stable-key", 16)

    def test_spreads_keys(self):
        p = HashPartitioner()
        buckets = {p.partition(f"key-{i}", 8) for i in range(100)}
        assert len(buckets) == 8

    def test_callable_protocol(self):
        p = HashPartitioner()
        assert p("k", 3) == p.partition("k", 3)


class TestKeyFieldPartitioner:
    def test_identity_modulo(self):
        p = KeyFieldPartitioner()
        assert p.partition(5, 4) == 1
        assert p.partition(4, 4) == 0

    def test_custom_field(self):
        p = KeyFieldPartitioner(field=lambda k: k[0])
        assert p.partition((3, "x"), 2) == 1

    def test_non_integer_key_raises(self):
        with pytest.raises(JobConfigError):
            KeyFieldPartitioner().partition("not-an-int", 4)

    def test_numeric_string_ok(self):
        assert KeyFieldPartitioner().partition("7", 4) == 3


class TestRangePartitioner:
    def test_routing(self):
        p = RangePartitioner([10, 20])
        assert p.partition(5, 3) == 0
        assert p.partition(10, 3) == 0  # boundary belongs to the left
        assert p.partition(15, 3) == 1
        assert p.partition(99, 3) == 2

    def test_boundary_count_mismatch(self):
        p = RangePartitioner([10])
        with pytest.raises(JobConfigError):
            p.partition(5, 3)

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(JobConfigError):
            RangePartitioner([5, 2])

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=6), st.integers(-60, 60))
    def test_property_monotone(self, bounds, key):
        bounds = sorted(bounds)
        p = RangePartitioner(bounds)
        idx = p.partition(key, len(bounds) + 1)
        assert 0 <= idx <= len(bounds)
        # Every boundary left of the bucket is < key is consistent with order
        if idx > 0:
            assert bounds[idx - 1] < key or bounds[idx - 1] <= key


class TestSingleReducerPartitioner:
    @given(st.integers())
    def test_always_zero(self, key):
        assert SingleReducerPartitioner().partition(key, 9) == 0
