"""Signal exits run the full serve teardown: WAL flush + events dump.

SIGTERM/SIGINT against a live ``repro serve --data-dir ...`` process
must behave like a clean shutdown — the event log lands on disk, the
WALs are flushed and closed, and a fresh process recovers every
acknowledged mutation — with the conventional 128+signum exit code.
"""

import json
import os
import signal
import sys

import pytest

from repro.serving.durability import (
    DurabilityConfig,
    DurabilityManager,
    recover_dataset,
)

from tests.serving.harness import spawn_server

DIMS = 3


@pytest.mark.parametrize(
    ("sig", "expected_code"),
    [(signal.SIGTERM, 143), (signal.SIGINT, 130)],
)
def test_signal_exit_flushes_wal_and_dumps_events(tmp_path, sig, expected_code):
    events_path = str(tmp_path / "events.jsonl")
    data_dir = str(tmp_path / "data")
    client = spawn_server(
        "--data-dir", data_dir, "--fsync", "never", "--events", events_path
    )
    try:
        loaded = client.register("sig", generate={"n": 40, "d": DIMS, "seed": 3})
        assert loaded["ok"], loaded
        inserted = client.insert("sig", [0.001] * DIMS)
        assert inserted["generation"] == 2, inserted

        os.kill(client._proc.pid, sig)
        code = client._proc.wait(timeout=30)
        assert code == expected_code, f"expected 128+{sig}, got {code}"
    finally:
        if client._proc.poll() is None:  # pragma: no cover - cleanup
            client._proc.kill()

    # The --events artifact was written on the way down.
    kinds = {
        json.loads(line)["kind"]
        for line in open(events_path, encoding="utf-8")
        if line.strip()
    }
    assert "store.generation" in kinds, kinds

    # Every acknowledged mutation is recoverable: register + bulk + insert.
    manager = DurabilityManager(DurabilityConfig(data_dir, fsync="never"))
    store, report = recover_dataset(manager, "sig")
    assert store is not None
    assert store.generation == 2, report
    assert len(store) == 41
    assert inserted["id"] in store
    manager.close()


def test_signal_handlers_are_noop_off_main_thread():
    """Embedded contexts (tests, cluster shards) call the installer from
    worker threads; it must not blow up there."""
    import threading

    from repro.cli import _install_exit_signal_handlers

    errors = []

    def target():
        try:
            _install_exit_signal_handlers()
        except Exception as exc:  # pragma: no cover - the failure case
            errors.append(exc)

    thread = threading.Thread(target=target)
    thread.start()
    thread.join(timeout=10)
    assert not errors, errors


def test_sigkill_is_still_recoverable_with_fsync_always(tmp_path):
    """The durability floor: even an un-catchable SIGKILL mid-session
    loses nothing that ``--fsync always`` acknowledged."""
    data_dir = str(tmp_path / "data")
    client = spawn_server("--data-dir", data_dir, "--fsync", "always")
    try:
        assert client.register("kill9", generate={"n": 30, "d": DIMS, "seed": 5})["ok"]
        pid_insert = client.insert("kill9", [0.002] * DIMS)
        os.kill(client._proc.pid, signal.SIGKILL)
        code = client._proc.wait(timeout=30)
        assert code == -signal.SIGKILL
    finally:
        if client._proc.poll() is None:  # pragma: no cover - cleanup
            client._proc.kill()

    manager = DurabilityManager(DurabilityConfig(data_dir, fsync="always"))
    store, report = recover_dataset(manager, "kill9")
    assert store is not None and store.generation == 2, report
    assert pid_insert["id"] in store
    manager.close()
