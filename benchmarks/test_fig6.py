"""Figure 6: MR-Angle map/reduce breakdown vs server count.

Shape assertions (matching the paper's description): total processing time
decreases as servers are added, and the improvement saturates — the tail of
the curve is much flatter than the head.
"""

from repro.bench.experiments import figure6


def test_fig6(benchmark, scale, cache):
    table = benchmark.pedantic(
        lambda: figure6(
            n=scale.large_n,
            d=scale.dims[-1],
            node_counts=scale.node_counts,
            base_cluster=scale.cluster,
            cache=cache,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(table.render())
    totals = table.column("total_s")
    assert totals[0] > totals[-1], "no speedup from adding servers"
    # Saturation: the second half of the sweep improves less than the first.
    mid = len(totals) // 2
    head_gain = totals[0] - totals[mid]
    tail_gain = totals[mid] - totals[-1]
    assert head_gain >= tail_gain, "curve should flatten (saturate)"
    # Map and reduce components both stay positive.
    assert all(v > 0 for v in table.column("map_time_s"))
    assert all(v > 0 for v in table.column("reduce_time_s"))
