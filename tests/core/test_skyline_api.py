"""Tests for the unified skyline dispatcher."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.skyline import is_skyline, skyline, skyline_numpy, skyline_points

ALGOS = ("bnl", "sfs", "dnc", "bbs", "numpy")

clouds = arrays(
    np.float64,
    st.tuples(st.integers(1, 60), st.integers(1, 4)),
    elements=st.floats(0, 20, allow_nan=False),
)


class TestDispatch:
    @pytest.mark.parametrize("algo", ALGOS)
    def test_all_algorithms_agree(self, algo):
        rng = np.random.default_rng(0)
        pts = rng.random((300, 3))
        assert np.array_equal(skyline(pts, algorithm=algo), skyline_numpy(pts))

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            skyline(np.ones((2, 2)), algorithm="quantum")  # type: ignore[arg-type]

    def test_kwargs_forwarded_to_bnl(self):
        rng = np.random.default_rng(1)
        pts = rng.random((100, 2))
        assert np.array_equal(
            skyline(pts, algorithm="bnl", window_size=3), skyline_numpy(pts)
        )

    def test_bbs_kwargs_forwarded(self):
        rng = np.random.default_rng(5)
        pts = rng.random((200, 3))
        assert np.array_equal(
            skyline(pts, algorithm="bbs", leaf_capacity=4), skyline_numpy(pts)
        )

    def test_kwargs_rejected_where_unsupported(self):
        with pytest.raises(TypeError):
            skyline(np.ones((2, 2)), algorithm="dnc", window_size=3)
        with pytest.raises(TypeError):
            skyline(np.ones((2, 2)), algorithm="numpy", score="sum")

    def test_skyline_points_returns_rows(self):
        pts = np.array([[5.0, 5.0], [1.0, 1.0]])
        assert np.array_equal(skyline_points(pts), [[1.0, 1.0]])

    @given(clouds, st.sampled_from(ALGOS))
    @settings(max_examples=60, deadline=None)
    def test_property_cross_algorithm_agreement(self, pts, algo):
        assert np.array_equal(skyline(pts, algorithm=algo), skyline_numpy(pts))


class TestIsSkyline:
    def test_accepts_correct(self):
        rng = np.random.default_rng(2)
        pts = rng.random((50, 3))
        assert is_skyline(pts, skyline_numpy(pts))

    def test_rejects_missing_point(self):
        rng = np.random.default_rng(3)
        pts = rng.random((50, 3))
        idx = skyline_numpy(pts)
        assert not is_skyline(pts, idx[:-1])

    def test_rejects_extra_point(self):
        pts = np.array([[1.0, 1.0], [2.0, 2.0]])
        assert not is_skyline(pts, np.array([0, 1]))

    def test_order_insensitive(self):
        rng = np.random.default_rng(4)
        pts = rng.random((50, 3))
        idx = skyline_numpy(pts)
        assert is_skyline(pts, idx[::-1])
