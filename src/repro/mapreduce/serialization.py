"""Record serialization for spills, the block filesystem, and size accounting.

Two codecs cover the engine's needs:

* :class:`PickleCodec` — the default; handles arbitrary Python objects
  including NumPy arrays (protocol 5 keeps large arrays zero-copy-ish).
* :class:`NumpyRowCodec` — a compact fixed-width float64 codec used by the
  skyline jobs, where every value is one point (a 1-D float vector); avoids
  pickle overhead on the hot path.

Framed streams (:func:`write_frames` / :func:`read_frames`) store a sequence
of encoded records as ``<uint32 length><payload>`` so spill files can be
re-read without a manifest.  :func:`estimate_nbytes` provides the cheap size
estimate that feeds :attr:`TaskStats.bytes_out` and the shuffle cost model.
"""

from __future__ import annotations

import io
import pickle
import struct
import sys
from typing import Any, BinaryIO, Iterable, Iterator

import numpy as np

from repro.mapreduce.errors import SerializationError

_LEN = struct.Struct("<I")
_MAX_FRAME = 1 << 31


class Codec:
    """Encode/decode a single record value to/from bytes."""

    name = "abstract"

    def encode(self, obj: Any) -> bytes:
        raise NotImplementedError

    def decode(self, payload: bytes) -> Any:
        raise NotImplementedError


class PickleCodec(Codec):
    """General-purpose codec backed by :mod:`pickle` protocol 5."""

    name = "pickle"

    def encode(self, obj: Any) -> bytes:
        try:
            return pickle.dumps(obj, protocol=5)
        except Exception as exc:  # pragma: no cover - exotic unpicklables
            raise SerializationError(f"cannot pickle {type(obj)!r}: {exc}") from exc

    def decode(self, payload: bytes) -> Any:
        try:
            return pickle.loads(payload)
        except Exception as exc:
            raise SerializationError(f"cannot unpickle frame: {exc}") from exc


class NumpyRowCodec(Codec):
    """Fixed-dimensionality float64 vector codec.

    Encodes a 1-D float array of ``dim`` entries as raw little-endian bytes.
    Decoding always returns a fresh contiguous ``float64`` array.
    """

    name = "numpy-row"

    def __init__(self, dim: int):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = dim
        self._nbytes = 8 * dim

    def encode(self, obj: Any) -> bytes:
        arr = np.asarray(obj, dtype=np.float64)
        if arr.shape != (self.dim,):
            raise SerializationError(
                f"NumpyRowCodec(dim={self.dim}) got array of shape {arr.shape}"
            )
        return arr.tobytes()

    def decode(self, payload: bytes) -> np.ndarray:
        if len(payload) != self._nbytes:
            raise SerializationError(
                f"expected {self._nbytes} bytes for dim={self.dim}, "
                f"got {len(payload)}"
            )
        return np.frombuffer(payload, dtype=np.float64).copy()


def write_frames(stream: BinaryIO, payloads: Iterable[bytes]) -> int:
    """Write length-prefixed frames; returns the number of frames written."""
    count = 0
    for payload in payloads:
        if len(payload) >= _MAX_FRAME:
            raise SerializationError(f"frame too large: {len(payload)} bytes")
        stream.write(_LEN.pack(len(payload)))
        stream.write(payload)
        count += 1
    return count


def read_frames(stream: BinaryIO) -> Iterator[bytes]:
    """Yield payloads from a framed stream until EOF.

    Raises :class:`SerializationError` on a truncated trailing frame.
    """
    while True:
        header = stream.read(_LEN.size)
        if not header:
            return
        if len(header) < _LEN.size:
            raise SerializationError("truncated frame header")
        (length,) = _LEN.unpack(header)
        payload = stream.read(length)
        if len(payload) < length:
            raise SerializationError(
                f"truncated frame payload: wanted {length}, got {len(payload)}"
            )
        yield payload


def dump_records(records: Iterable[Any], codec: Codec | None = None) -> bytes:
    """Serialize a record sequence into one framed byte string."""
    codec = codec or PickleCodec()
    buf = io.BytesIO()
    write_frames(buf, (codec.encode(r) for r in records))
    return buf.getvalue()


def load_records(blob: bytes, codec: Codec | None = None) -> list[Any]:
    """Inverse of :func:`dump_records`."""
    codec = codec or PickleCodec()
    return [codec.decode(p) for p in read_frames(io.BytesIO(blob))]


def estimate_nbytes(obj: Any) -> int:
    """Cheap serialized-size estimate used for shuffle-volume accounting.

    Exact for arrays/bytes/str; a small constant for scalars; recursive with
    per-element overhead for tuples and lists; falls back to ``sys.getsizeof``
    for anything else.  Deliberately avoids actually serializing the object.
    """
    if obj is None:
        return 1
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8", errors="replace"))
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, (int, np.integer)):
        return 8
    if isinstance(obj, (float, np.floating)):
        return 8
    if isinstance(obj, (tuple, list)):
        return 8 + sum(estimate_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return 8 + sum(
            estimate_nbytes(k) + estimate_nbytes(v) for k, v in obj.items()
        )
    return int(sys.getsizeof(obj))
