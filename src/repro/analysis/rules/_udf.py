"""Shared UDF discovery for the purity and pickle-safety rule packs.

The engine's user-defined functions are *classes* (``Mapper`` / ``Reducer``
subclasses) attached to ``Job(...)`` at construction time, so the checker
finds them two ways and unions the results:

* **call-site tracing** — every ``Job(...)`` call's ``mapper=`` /
  ``reducer=`` / ``combiner=`` argument (positional or keyword), resolved
  through the project's import graph to its defining ``class`` statement,
  wherever that module lives;
* **subclass closure** — any indexed class whose base chain reaches
  ``Mapper`` / ``Reducer`` / ``Combiner``, so exported UDFs are checked even
  when their ``Job`` call sites sit outside the linted paths (tests,
  notebooks, user code).

Call-site arguments that are lambdas or function-local classes cannot be
resolved to a module-level definition; they are surfaced to the
pickle-safety pack via :class:`UdfUse` instead of being silently dropped.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.project import Module, Project, Resolved, dotted_name

#: Class names that terminate the UDF base-class closure.
_UDF_ROOTS = {"Mapper", "Reducer", "Combiner"}

#: Job dataclass field order: name, mapper, reducer, conf, combiner.
_JOB_POSITIONAL_ROLES = {1: "mapper", 2: "reducer", 4: "combiner"}
_JOB_KEYWORD_ROLES = ("mapper", "reducer", "combiner")


@dataclass(slots=True)
class UdfUse:
    """One mapper/reducer/combiner argument at a ``Job(...)`` call site."""

    module: Module
    call: ast.Call
    role: str
    value: ast.expr
    #: Module-level class the argument resolves to (possibly cross-module).
    resolved: Optional[Resolved]
    #: Function-local definition the argument resolves to, when the call
    #: site sits inside a function whose scope defines the name.
    local_def: Optional[ast.AST]


def iter_job_calls(module: Module) -> Iterator[ast.Call]:
    """Every ``Job(...)`` construction in a module (matched by name)."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name.rsplit(".", 1)[-1] == "Job":
                yield node


def collect_udf_uses(project: Project) -> List[UdfUse]:
    """All UDF arguments at ``Job(...)`` call sites across the project."""
    uses: List[UdfUse] = []
    for module in sorted(project.modules.values(), key=lambda m: m.path):
        for call in iter_job_calls(module):
            for role, value in _udf_args(call):
                resolved = project.resolve_expr(module, value)
                local_def = None
                if resolved is None and isinstance(value, ast.Name):
                    local_def = _resolve_in_local_scopes(module, call, value.id)
                uses.append(
                    UdfUse(
                        module=module,
                        call=call,
                        role=role,
                        value=value,
                        resolved=resolved,
                        local_def=local_def,
                    )
                )
    return uses


def udf_classes(project: Project) -> Dict[Tuple[str, str], Tuple[Module, ast.ClassDef]]:
    """UDF classes to analyze, keyed by ``(module, class name)``.

    Union of call-site-resolved classes and the Mapper/Reducer subclass
    closure over the indexed modules.
    """
    found: Dict[Tuple[str, str], Tuple[Module, ast.ClassDef]] = {}

    for use in collect_udf_uses(project):
        if use.resolved is not None and isinstance(use.resolved.node, ast.ClassDef):
            key = (use.resolved.module.name, use.resolved.node.name)
            found[key] = (use.resolved.module, use.resolved.node)

    # Subclass closure: seed on literal Mapper/Reducer/Combiner bases, then
    # absorb classes whose bases resolve to an already-known UDF class.
    changed = True
    while changed:
        changed = False
        for module in project.modules.values():
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                key = (module.name, node.name)
                if key in found:
                    continue
                if _is_udf_subclass(project, module, node, found):
                    found[key] = (module, node)
                    changed = True
    return found


def _is_udf_subclass(
    project: Project,
    module: Module,
    node: ast.ClassDef,
    known: Dict[Tuple[str, str], Tuple[Module, ast.ClassDef]],
) -> bool:
    for base in node.bases:
        base_name = dotted_name(base)
        if base_name.rsplit(".", 1)[-1] in _UDF_ROOTS:
            return True
        resolved = project.resolve_expr(module, base)
        if resolved is not None and isinstance(resolved.node, ast.ClassDef):
            if (resolved.module.name, resolved.node.name) in known:
                return True
    return False


def _udf_args(call: ast.Call) -> Iterator[Tuple[str, ast.expr]]:
    for index, arg in enumerate(call.args):
        role = _JOB_POSITIONAL_ROLES.get(index)
        if role is not None:
            yield role, arg
    for keyword in call.keywords:
        if keyword.arg in _JOB_KEYWORD_ROLES:
            yield keyword.arg, keyword.value


def _resolve_in_local_scopes(
    module: Module, at: ast.AST, name: str
) -> Optional[ast.AST]:
    """Find a def/class/lambda binding of ``name`` in the function scopes
    enclosing ``at`` (innermost first)."""
    line = getattr(at, "lineno", 0)
    scopes: List[ast.AST] = []

    def collect(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if child.lineno <= line <= (child.end_lineno or child.lineno):
                    scopes.append(child)
                collect(child)
            else:
                collect(child)

    collect(module.tree)
    for scope in reversed(scopes):  # innermost first
        for stmt in ast.walk(scope):
            if (
                isinstance(stmt, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name == name
            ):
                return stmt
            if isinstance(stmt, ast.Assign) and isinstance(
                stmt.value, ast.Lambda
            ):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        return stmt.value
    return None
