"""Versioned result cache: LRU bounds, generation addressing, stats."""

import pytest

from repro.serving.cache import ResultCache


def key(gen, dataset="qws", kind="skyline", params=()):
    return (dataset, kind, params, gen)


class TestBasics:
    def test_miss_then_hit(self):
        cache = ResultCache(4)
        assert cache.get(key(1)) is None
        cache.put(key(1), [1, 2, 3])
        assert cache.get(key(1)) == [1, 2, 3]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ResultCache(0)

    def test_len_counts_entries(self):
        cache = ResultCache(4)
        cache.put(key(1), [])
        cache.put(key(2), [])
        assert len(cache) == 2


class TestLru:
    def test_eviction_drops_oldest(self):
        cache = ResultCache(2)
        cache.put(key(1), [1])
        cache.put(key(2), [2])
        cache.put(key(3), [3])
        assert cache.get(key(1)) is None
        assert cache.get(key(2)) == [2]
        assert cache.get(key(3)) == [3]

    def test_get_refreshes_recency(self):
        cache = ResultCache(2)
        cache.put(key(1), [1])
        cache.put(key(2), [2])
        cache.get(key(1))  # key(1) is now the most recent
        cache.put(key(3), [3])
        assert cache.get(key(1)) == [1]
        assert cache.get(key(2)) is None


class TestLatest:
    def test_latest_picks_newest_generation(self):
        cache = ResultCache(8)
        cache.put(key(3), [3])
        cache.put(key(7), [7])
        cache.put(key(5), [5])
        assert cache.latest("qws", "skyline", ()) == (7, [7])

    def test_latest_scopes_to_query_shape(self):
        cache = ResultCache(8)
        cache.put(key(9, kind="skyband", params=(2,)), [9])
        cache.put(key(1), [1])
        assert cache.latest("qws", "skyline", ()) == (1, [1])
        assert cache.latest("qws", "skyband", (2,)) == (9, [9])
        assert cache.latest("qws", "skyband", (3,)) is None

    def test_latest_none_when_never_cached(self):
        assert ResultCache(4).latest("qws", "skyline", ()) is None


class TestStats:
    def test_counts_hits_misses_evictions(self):
        cache = ResultCache(1)
        cache.get(key(1))
        cache.put(key(1), [1])
        cache.get(key(1))
        cache.put(key(2), [2])  # evicts key(1)
        stats = cache.stats()
        assert stats == {"entries": 1, "hits": 1, "misses": 1, "evictions": 1}
