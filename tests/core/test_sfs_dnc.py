"""Tests for the SFS and divide-and-conquer skyline algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.dnc import dnc_skyline
from repro.core.dominance import DominanceCounter
from repro.core.sfs import monotone_score, sfs_skyline
from repro.core.skyline import skyline_numpy

clouds = arrays(
    np.float64,
    st.tuples(st.integers(1, 80), st.integers(1, 5)),
    elements=st.floats(0, 50, allow_nan=False),
)


class TestMonotoneScore:
    def test_sum(self):
        pts = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert monotone_score(pts, "sum").tolist() == [3.0, 7.0]

    def test_entropy_positive_and_shifted(self):
        pts = np.array([[10.0, 20.0], [30.0, 40.0]])
        scores = monotone_score(pts, "entropy")
        assert scores[0] < scores[1]

    def test_unknown_score_rejected(self):
        with pytest.raises(ValueError):
            monotone_score(np.ones((1, 2)), "magic")  # type: ignore[arg-type]

    @given(
        a=arrays(np.float64, 4, elements=st.floats(0, 10, allow_nan=False)),
        b=arrays(np.float64, 4, elements=st.floats(0, 10, allow_nan=False)),
    )
    @settings(max_examples=60)
    def test_property_scores_respect_dominance(self, a, b):
        from repro.core.dominance import dominates

        pts = np.vstack([a, b])
        for name in ("sum", "entropy"):
            s = monotone_score(pts, name)  # type: ignore[arg-type]
            if dominates(a, b):
                # Weak inequality only: float rounding can collapse the
                # strict gap (e.g. 1.0 vs 1.0 + 1e-99); SFS handles those
                # ties with its lexicographic tiebreak.
                assert s[0] <= s[1]


class TestSFS:
    def test_matches_bruteforce(self):
        rng = np.random.default_rng(0)
        pts = rng.random((400, 4))
        assert np.array_equal(sfs_skyline(pts).indices, skyline_numpy(pts))

    def test_entropy_score_same_result(self):
        rng = np.random.default_rng(1)
        pts = rng.random((200, 3))
        assert np.array_equal(
            sfs_skyline(pts, score="entropy").indices, sfs_skyline(pts).indices
        )

    def test_custom_callable_score(self):
        rng = np.random.default_rng(2)
        pts = rng.random((100, 3))
        result = sfs_skyline(pts, score=lambda p: p.sum(axis=1))
        assert np.array_equal(result.indices, skyline_numpy(pts))

    def test_bad_score_shape_rejected(self):
        with pytest.raises(ValueError):
            sfs_skyline(np.ones((3, 2)), score=lambda p: np.zeros((3, 2)))

    def test_duplicates_all_kept(self):
        pts = np.tile([2.0, 3.0], (4, 1))
        assert sfs_skyline(pts).indices.tolist() == [0, 1, 2, 3]

    def test_tests_bounded_by_candidates_times_skyline(self):
        # SFS's window holds only skyline points, so the per-candidate cost
        # is bounded by the final skyline size.
        rng = np.random.default_rng(3)
        pts = rng.random((500, 3))
        result = sfs_skyline(pts)
        assert result.dominance_tests <= 500 * result.indices.size

    def test_float_rounding_tie_with_dominance(self):
        # Regression: sums of (1e-99, 1) and (0, 1) both round to 1.0, yet
        # the second point dominates the first; the lexicographic tiebreak
        # must order the dominator first.
        pts = np.array([[1e-99, 1.0], [0.0, 1.0]])
        assert sfs_skyline(pts).indices.tolist() == [1]

    def test_counter(self):
        counter = DominanceCounter()
        sfs_skyline(np.random.default_rng(4).random((50, 2)), counter=counter)
        assert counter.by_stage.get("sfs", 0) > 0

    @given(clouds)
    @settings(max_examples=80, deadline=None)
    def test_property_matches_bruteforce(self, pts):
        assert np.array_equal(sfs_skyline(pts).indices, skyline_numpy(pts))


class TestDNC:
    def test_matches_bruteforce(self):
        rng = np.random.default_rng(5)
        pts = rng.random((400, 4))
        assert np.array_equal(dnc_skyline(pts).indices, skyline_numpy(pts))

    def test_recursion_exercised_beyond_base_case(self):
        rng = np.random.default_rng(6)
        pts = rng.random((1000, 3))  # > base case of 64 -> real splits
        assert np.array_equal(dnc_skyline(pts).indices, skyline_numpy(pts))

    def test_anticorrelated_everything_skyline(self):
        x = np.linspace(0, 1, 300)
        pts = np.column_stack([x, 1 - x])
        assert dnc_skyline(pts).indices.size == 300

    def test_duplicates(self):
        pts = np.vstack([np.ones((100, 2)), np.zeros((3, 2))])
        assert dnc_skyline(pts).indices.tolist() == [100, 101, 102]

    def test_counter(self):
        counter = DominanceCounter()
        dnc_skyline(np.random.default_rng(7).random((200, 3)), counter=counter)
        assert counter.by_stage.get("dnc", 0) > 0

    @given(clouds)
    @settings(max_examples=80, deadline=None)
    def test_property_matches_bruteforce(self, pts):
        assert np.array_equal(dnc_skyline(pts).indices, skyline_numpy(pts))

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(65, 200), st.integers(1, 4)),
            elements=st.floats(0, 3, allow_nan=False).map(lambda x: round(x)),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_property_heavy_ties_above_base_case(self, pts):
        # Quantised coordinates create many exact ties across the split
        # boundary — the D&C lexicographic-order argument must still hold.
        assert np.array_equal(dnc_skyline(pts).indices, skyline_numpy(pts))
