"""Micro-benchmarks of the single-machine skyline algorithms.

Not a paper figure — these quantify the building blocks (BNL vs SFS vs D&C
vs the brute-force reference) across the three canonical workloads, and are
the numbers to watch when optimising the inner dominance kernels.
"""

import numpy as np
import pytest

from repro.core.bbs import bbs_skyline
from repro.core.bnl import bnl_skyline
from repro.core.dnc import dnc_skyline
from repro.core.sfs import sfs_skyline
from repro.data.generators import generate

N = 5_000
D = 5

ALGORITHMS = {
    "bnl": lambda pts: bnl_skyline(pts).indices,
    "sfs": lambda pts: sfs_skyline(pts).indices,
    "dnc": lambda pts: dnc_skyline(pts).indices,
    "bbs": lambda pts: bbs_skyline(pts).indices,
}


@pytest.mark.parametrize("workload", ["independent", "correlated", "anticorrelated"])
@pytest.mark.parametrize("algo", sorted(ALGORITHMS))
def test_algorithm_workload(benchmark, algo, workload):
    pts = generate(workload, N, D, seed=11)
    fn = ALGORITHMS[algo]
    result = benchmark(fn, pts)
    assert result.size > 0


def test_bounded_window_bnl(benchmark):
    pts = generate("independent", N, D, seed=12)
    result = benchmark(lambda: bnl_skyline(pts, window_size=64).indices)
    assert result.size > 0
