"""Versioned result cache: LRU bounds, generation addressing, stats."""

import pytest

from repro.serving.cache import ResultCache


def key(gen, dataset="qws", kind="skyline", params=()):
    return (dataset, kind, params, gen)


class TestBasics:
    def test_miss_then_hit(self):
        cache = ResultCache(4)
        assert cache.get(key(1)) is None
        cache.put(key(1), [1, 2, 3])
        assert cache.get(key(1)) == [1, 2, 3]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ResultCache(-1)

    def test_capacity_zero_disables_cache(self):
        cache = ResultCache(0)
        cache.put(("d", "skyline", (), 1), [1, 2])
        assert len(cache) == 0
        assert cache.get(("d", "skyline", (), 1)) is None
        assert cache.latest("d", "skyline", ()) is None
        stats = cache.stats()
        assert stats["entries"] == 0
        assert stats["evictions"] == 0
        assert stats["misses"] == 1

    def test_capacity_zero_invalidate_is_noop(self):
        cache = ResultCache(0)
        cache.put(("d", "skyline", (), 1), [1])
        assert cache.invalidate("d") == 0

    def test_len_counts_entries(self):
        cache = ResultCache(4)
        cache.put(key(1), [])
        cache.put(key(2), [])
        assert len(cache) == 2


class TestLru:
    def test_eviction_drops_oldest(self):
        cache = ResultCache(2)
        cache.put(key(1), [1])
        cache.put(key(2), [2])
        cache.put(key(3), [3])
        assert cache.get(key(1)) is None
        assert cache.get(key(2)) == [2]
        assert cache.get(key(3)) == [3]

    def test_get_refreshes_recency(self):
        cache = ResultCache(2)
        cache.put(key(1), [1])
        cache.put(key(2), [2])
        cache.get(key(1))  # key(1) is now the most recent
        cache.put(key(3), [3])
        assert cache.get(key(1)) == [1]
        assert cache.get(key(2)) is None


class TestLatest:
    def test_latest_picks_newest_generation(self):
        cache = ResultCache(8)
        cache.put(key(3), [3])
        cache.put(key(7), [7])
        cache.put(key(5), [5])
        assert cache.latest("qws", "skyline", ()) == (7, [7])

    def test_latest_scopes_to_query_shape(self):
        cache = ResultCache(8)
        cache.put(key(9, kind="skyband", params=(2,)), [9])
        cache.put(key(1), [1])
        assert cache.latest("qws", "skyline", ()) == (1, [1])
        assert cache.latest("qws", "skyband", (2,)) == (9, [9])
        assert cache.latest("qws", "skyband", (3,)) is None

    def test_latest_none_when_never_cached(self):
        assert ResultCache(4).latest("qws", "skyline", ()) is None


class TestInvalidate:
    def test_drops_only_the_named_dataset(self):
        cache = ResultCache(8)
        cache.put(key(1), [1])
        cache.put(key(2, kind="skyband", params=(2,)), [2])
        cache.put(key(1, dataset="other"), [3])
        assert cache.invalidate("qws") == 2
        assert cache.get(key(1)) is None
        assert cache.get(key(1, dataset="other")) == [3]

    def test_reregister_generation_restart_cannot_hit_stale(self):
        # The re-register scenario: generation counters restart, so the
        # old incarnation's entry at the same key must be gone.
        cache = ResultCache(8)
        cache.put(key(1), [10, 20])
        cache.invalidate("qws")
        assert cache.get(key(1)) is None
        assert cache.latest("qws", "skyline", ()) is None


class TestAliasing:
    def test_get_returns_a_copy(self):
        cache = ResultCache(4)
        cache.put(key(1), [1, 2, 3])
        first = cache.get(key(1))
        first.append(999)  # a caller mutating its response...
        assert cache.get(key(1)) == [1, 2, 3], "...must not corrupt the cache"

    def test_put_detaches_from_the_caller_list(self):
        cache = ResultCache(4)
        ids = [1, 2, 3]
        cache.put(key(1), ids)
        ids.append(999)
        assert cache.get(key(1)) == [1, 2, 3]

    def test_latest_returns_a_copy(self):
        cache = ResultCache(4)
        cache.put(key(5), [5, 6])
        _, ids = cache.latest("qws", "skyline", ())
        ids.clear()
        assert cache.latest("qws", "skyline", ()) == (5, [5, 6])


class TestLatestEvictionRace:
    """Regression: ``latest`` must read generation and value atomically.

    A scan that collects candidate keys and then re-reads the winning
    entry outside the lock races ``put``-driven evictions — the key it
    chose can be popped in between, turning a stale-answer fallback into
    a ``KeyError`` (or a ``None`` despite a cached generation existing).
    The stress drives heavy eviction churn against a continuous
    ``latest`` scan; any raced read raises out of the worker thread.
    """

    def test_latest_under_eviction_churn(self):
        import threading

        cache = ResultCache(8)  # tiny: every put evicts
        stop = threading.Event()
        failures = []

        def scan():
            try:
                while not stop.is_set():
                    found = cache.latest("qws", "skyline", ())
                    if found is not None:
                        generation, ids = found
                        assert ids == [generation], (generation, ids)
            except Exception as exc:  # pragma: no cover - the regression
                failures.append(exc)

        threads = [threading.Thread(target=scan) for _ in range(4)]
        for thread in threads:
            thread.start()
        for generation in range(1, 3000):
            cache.put(key(generation), [generation])
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        assert not failures, failures

    def test_latest_with_generation_vectors(self):
        # Cluster keys carry tuple generation vectors; lexicographic ">"
        # must pick the newest without coercing to int.
        cache = ResultCache(8)
        cache.put(key((1, 0, 2)), [1])
        cache.put(key((1, 3, 0)), [2])
        cache.put(key((1, 2, 9)), [3])
        assert cache.latest("qws", "skyline", ()) == ((1, 3, 0), [2])


class TestStats:
    def test_counts_hits_misses_evictions(self):
        cache = ResultCache(1)
        cache.get(key(1))
        cache.put(key(1), [1])
        cache.get(key(1))
        cache.put(key(2), [2])  # evicts key(1)
        stats = cache.stats()
        assert stats == {"entries": 1, "hits": 1, "misses": 1, "evictions": 1}
