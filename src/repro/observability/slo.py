"""Declarative SLOs with multi-window burn-rate evaluation.

An :class:`SLObjective` states what "good" means for one dimension of the
serving layer — availability (the request was answered) or latency (the
answer arrived under a threshold) — and what fraction of requests must be
good (``target``).  An :class:`SLOTracker` records every request into
time-bucketed good/total tallies on an injectable monotonic clock (the
same :class:`~repro.mapreduce.faults.MonotonicClock` surface the fault
layer uses, so tests drive it with a fake and assert exact burn numbers).

**Burn rate** over a window is ``error_rate / error_budget`` where the
budget is ``1 - target``: burning at 1.0 exhausts the budget exactly at
the SLO period's end; 14.4 exhausts a 30-day budget in ~2 days.  The
evaluator applies the standard multi-window pairing so alerts are both
fast and unflappable:

* **page** — the fast pair: burn ≥ ``PAGE_BURN`` (14.4) over **both** the
  5 m and 1 h windows.  The long window proves it's sustained, the short
  window makes the alert reset quickly once the problem stops.
* **ticket** — the slow pair: burn ≥ ``TICKET_BURN`` (1.0) over both the
  6 h and 3 d windows: a slow leak that will exhaust the budget without
  ever tripping the fast pair.

No traffic in a window means no evidence of burn: its rate is 0.0 and the
state is ``ok`` (an idle service never pages).  Everything returned by
:meth:`SLOTracker.evaluate` is JSON-safe — the ``slo`` serving verb and
``repro top`` render it directly.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

__all__ = [
    "SLObjective",
    "SLOTracker",
    "DEFAULT_WINDOWS_S",
    "PAGE_BURN",
    "TICKET_BURN",
    "default_objectives",
]

#: The evaluation windows, fast pair then slow pair.
DEFAULT_WINDOWS_S: Dict[str, float] = {
    "5m": 300.0,
    "1h": 3600.0,
    "6h": 21600.0,
    "3d": 259200.0,
}

#: Fast-pair burn threshold (Google SRE workbook: 14.4 = 2% of a 30-day
#: budget in one hour).
PAGE_BURN = 14.4
#: Slow-pair burn threshold: burning at exactly budget pace.
TICKET_BURN = 1.0

#: Burn rates are capped here so a zero-budget objective stays JSON-finite.
_BURN_CAP = 1e6


@dataclass(frozen=True, slots=True)
class SLObjective:
    """One service-level objective over the request stream.

    ``latency_threshold_s=None`` makes it an availability objective (good =
    the request was answered at all); otherwise good = answered **and**
    under the threshold.  ``target`` is the required good fraction.
    """

    name: str
    target: float
    latency_threshold_s: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ValueError(
                f"SLO {self.name!r}: target must be in (0, 1), got {self.target}"
            )
        if self.latency_threshold_s is not None and self.latency_threshold_s <= 0:
            raise ValueError(
                f"SLO {self.name!r}: latency threshold must be > 0, "
                f"got {self.latency_threshold_s}"
            )

    def is_good(self, latency_s: float, ok: bool) -> bool:
        if not ok:
            return False
        return (
            self.latency_threshold_s is None
            or latency_s <= self.latency_threshold_s
        )

    def describe(self) -> Dict[str, Any]:
        spec: Dict[str, Any] = {"name": self.name, "target": self.target}
        if self.latency_threshold_s is not None:
            spec["latency_threshold_s"] = self.latency_threshold_s
        return spec


def default_objectives(
    *,
    availability_target: float = 0.999,
    latency_threshold_s: float = 0.25,
    latency_target: float = 0.95,
) -> List[SLObjective]:
    """The serving layer's stock pair: availability + a latency objective."""
    return [
        SLObjective("availability", availability_target),
        SLObjective("latency", latency_target, latency_threshold_s),
    ]


class _Bucket:
    """Good/total tallies for one time slice, per objective."""

    __slots__ = ("start_s", "total", "good")

    def __init__(self, start_s: float, num_objectives: int):
        self.start_s = start_s
        self.total = 0
        self.good = [0] * num_objectives


class SLOTracker:
    """Rolling good/total accounting plus multi-window burn evaluation."""

    def __init__(
        self,
        objectives: List[SLObjective] | None = None,
        *,
        clock: Any = None,
        bucket_s: float = 10.0,
        windows_s: Dict[str, float] | None = None,
    ):
        if clock is None:
            from repro.mapreduce.faults import MonotonicClock

            clock = MonotonicClock()
        if bucket_s <= 0:
            raise ValueError(f"bucket_s must be > 0, got {bucket_s}")
        self.objectives = list(
            objectives if objectives is not None else default_objectives()
        )
        names = [o.name for o in self.objectives]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate objective names: {names}")
        self.clock = clock
        self.bucket_s = float(bucket_s)
        self.windows_s = dict(windows_s if windows_s is not None else DEFAULT_WINDOWS_S)
        if not self.windows_s:
            raise ValueError("at least one evaluation window is required")
        self._horizon_s = max(self.windows_s.values())
        self._lock = threading.Lock()
        self._buckets: List[_Bucket] = []

    # -- recording --------------------------------------------------------------

    def record(self, latency_s: float, *, ok: bool = True) -> None:
        """Account one finished request (``ok=False`` = failed/rejected)."""
        now = self.clock.monotonic()
        start = math.floor(now / self.bucket_s) * self.bucket_s
        with self._lock:
            if not self._buckets or self._buckets[-1].start_s < start:
                self._buckets.append(_Bucket(start, len(self.objectives)))
            bucket = self._buckets[-1]
            bucket.total += 1
            for i, objective in enumerate(self.objectives):
                if objective.is_good(latency_s, ok):
                    bucket.good[i] += 1
            self._trim(now)

    def _trim(self, now: float) -> None:
        # Callers hold self._lock.  Keep one horizon of history (plus the
        # bucket that straddles the boundary).
        cutoff = now - self._horizon_s - self.bucket_s
        drop = 0
        while drop < len(self._buckets) and self._buckets[drop].start_s < cutoff:
            drop += 1
        if drop:
            del self._buckets[:drop]

    # -- evaluation -------------------------------------------------------------

    def _window_tallies(self, now: float) -> Dict[str, List[Tuple[int, int]]]:
        """Per window name, ``(good, total)`` per objective index."""
        with self._lock:
            buckets = list(self._buckets)
        tallies = {
            name: [(0, 0)] * len(self.objectives) for name in self.windows_s
        }
        for name, span in self.windows_s.items():
            cutoff = now - span
            good = [0] * len(self.objectives)
            total = 0
            for bucket in buckets:
                # A bucket counts toward a window when any part of its
                # slice is inside it.
                if bucket.start_s + self.bucket_s > cutoff:
                    total += bucket.total
                    for i in range(len(self.objectives)):
                        good[i] += bucket.good[i]
            tallies[name] = [(good[i], total) for i in range(len(self.objectives))]
        return tallies

    def evaluate(self) -> Dict[str, Any]:
        """JSON-ready burn-rate report for every objective and window."""
        now = self.clock.monotonic()
        tallies = self._window_tallies(now)
        report: Dict[str, Any] = {"objectives": [], "state": "ok"}
        severity = {"ok": 0, "ticket": 1, "page": 2}
        for i, objective in enumerate(self.objectives):
            budget = 1.0 - objective.target
            windows: Dict[str, Any] = {}
            burns: Dict[str, float] = {}
            for name in self.windows_s:
                good, total = tallies[name][i]
                error_rate = (total - good) / total if total else 0.0
                burn = min(error_rate / budget, _BURN_CAP) if budget > 0 else (
                    _BURN_CAP if error_rate > 0 else 0.0
                )
                burns[name] = burn
                windows[name] = {
                    "total": total,
                    "good": good,
                    "error_rate": round(error_rate, 6),
                    "burn_rate": round(burn, 4),
                }
            state = "ok"
            if (
                burns.get("5m", 0.0) >= PAGE_BURN
                and burns.get("1h", 0.0) >= PAGE_BURN
            ):
                state = "page"
            elif (
                burns.get("6h", 0.0) >= TICKET_BURN
                and burns.get("3d", 0.0) >= TICKET_BURN
            ):
                state = "ticket"
            report["objectives"].append(
                {**objective.describe(), "windows": windows, "state": state}
            )
            if severity[state] > severity[report["state"]]:
                report["state"] = state
        return report
