"""Isolation for the process-wide tracer/metrics singletons."""

import pytest

from repro.observability.events import set_events
from repro.observability.metrics import set_metrics
from repro.observability.tracing import set_tracer


@pytest.fixture(autouse=True)
def _fresh_observability():
    """Each test starts from the disabled tracer and an empty registry."""
    set_tracer(None)
    set_metrics(None)
    set_events(None)
    yield
    set_tracer(None)
    set_metrics(None)
    set_events(None)
