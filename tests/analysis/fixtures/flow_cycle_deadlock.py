"""Fixture: lock acquisition cycles the flow layer must report.

Two shapes: the classic AB/BA ordering inversion across two classes, and
a non-reentrant ``threading.Lock`` re-acquired through a method call.
"""

import threading


class Accounts:
    def __init__(self, audit: "Audit"):
        self._lock = threading.Lock()
        self.audit = audit
        self.balance = 0

    def transfer(self, amount: int) -> None:
        with self._lock:
            self.balance -= amount
            self.audit.record(self)  # VIOLATION: lock-order-cycle

    def snapshot(self) -> int:
        with self._lock:
            return self.balance


class Audit:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.entries = []

    def record(self, accounts: "Accounts") -> None:
        with self._lock:
            self.entries.append(1)

    def reconcile(self, accounts: "Accounts") -> None:
        # Opposite order: Audit._lock first, then Accounts._lock — with
        # transfer() running concurrently this deadlocks.
        with self._lock:
            self.entries.append(accounts.snapshot())


class Recount:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.total = 0

    def outer(self) -> None:
        with self._lock:
            self.inner()  # VIOLATION: lock-order-cycle

    def inner(self) -> None:
        # Non-reentrant Lock taken again on the outer() path: self-deadlock.
        with self._lock:
            self.total += 1
