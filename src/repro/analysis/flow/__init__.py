"""Flow analysis: CFG, call graph, and interprocedural lock dataflow.

This package is the whole-program layer under the concurrency rule packs
(``lock-order-cycle``, ``blocking-under-lock``, ``escape-analysis``).  It
builds, per :class:`~repro.analysis.project.Project`:

* a :class:`~repro.analysis.flow.cfg.CFG` per function — basic blocks with
  ``with``-region enter/exit pseudo-events and a forward may-analysis
  driver (:func:`~repro.analysis.flow.cfg.dataflow_forward`);
* a :class:`~repro.analysis.flow.callgraph.CallGraph` — every class and
  function indexed with a best-effort type lattice (constructor
  assignments, annotations, return-annotation chaining, property getters,
  container element types) and a callback registry that tracks bound
  methods stored by constructors and invoked later;
* a :class:`~repro.analysis.flow.locks.LockAnalysis` — per-function lock
  summaries (which locks are acquired / which calls and blocking
  operations happen while they are held), closed over the call graph into
  a whole-program **lock acquisition graph** plus transitive blocking
  reachability.

Everything here is *may*-analysis and best-effort by the checker's
standing philosophy: a receiver the type lattice cannot resolve produces
no edge and no finding — the checker never guesses.

The analyses are cached per project (one build serves all three rules in
a single ``repro lint`` run): use :func:`flow_for_project`.
"""

from __future__ import annotations

from weakref import WeakKeyDictionary

from repro.analysis.flow.callgraph import CallGraph, ClassInfo, FunctionInfo
from repro.analysis.flow.cfg import CFG, dataflow_forward
from repro.analysis.flow.locks import LockAnalysis, LockId
from repro.analysis.project import Project

__all__ = [
    "CFG",
    "dataflow_forward",
    "CallGraph",
    "ClassInfo",
    "FunctionInfo",
    "LockAnalysis",
    "LockId",
    "flow_for_project",
]

_CACHE: "WeakKeyDictionary[Project, LockAnalysis]" = WeakKeyDictionary()


def flow_for_project(project: Project) -> LockAnalysis:
    """The (cached) whole-program lock analysis for one project."""
    analysis = _CACHE.get(project)
    if analysis is None:
        analysis = LockAnalysis.build(project)
        _CACHE[project] = analysis
    return analysis
