"""Hadoop-style job counters.

Counters are grouped name → integer accumulators incremented by user code
through the task context (``ctx.increment("skyline", "dominance_tests")``)
and by the framework itself (record counts, spill counts).  Each task gets a
private :class:`Counters` instance; the runner merges them into the job-level
view, which keeps counter updates race-free under multiprocessing.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Mapping, Tuple

#: Counter group used by the framework's own bookkeeping.
FRAMEWORK_GROUP = "framework"


class Counters:
    """A two-level (group, name) → int accumulator map."""

    __slots__ = ("_data",)

    def __init__(self) -> None:
        self._data: Dict[str, Dict[str, int]] = defaultdict(dict)

    def increment(self, group: str, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` in ``group`` (creating it at 0)."""
        # bool passes isinstance(int) but a True/False "amount" is always a
        # bug (e.g. `increment(g, n, mask.any())`), so reject it explicitly.
        if isinstance(amount, bool) or not isinstance(amount, int):
            raise TypeError(f"counter increment must be int, got {type(amount)!r}")
        bucket = self._data[group]
        bucket[name] = bucket.get(name, 0) + amount

    def value(self, group: str, name: str) -> int:
        """Current value of a counter; 0 if it was never incremented."""
        return self._data.get(group, {}).get(name, 0)

    def group(self, group: str) -> Mapping[str, int]:
        """Read-only snapshot of every counter in ``group``."""
        return dict(self._data.get(group, {}))

    def merge(self, other: "Counters") -> None:
        """Fold another counter set into this one (used at task completion)."""
        for grp, names in other._data.items():
            for name, val in names.items():
                self.increment(grp, name, val)

    def as_dict(self) -> Dict[str, Dict[str, int]]:
        """Deep-copy snapshot, suitable for JSON serialization."""
        return {g: dict(names) for g, names in self._data.items()}

    def __iter__(self) -> Iterator[Tuple[str, str, int]]:
        for grp, names in sorted(self._data.items()):
            for name, val in sorted(names.items()):
                yield grp, name, val

    def __len__(self) -> int:
        return sum(len(n) for n in self._data.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Counters):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{g}.{n}={v}" for g, n, v in self)
        return f"Counters({inner})"

    # -- framework convenience -------------------------------------------------

    def framework(self, name: str, amount: int = 1) -> None:
        """Increment a counter in the reserved framework group."""
        self.increment(FRAMEWORK_GROUP, name, amount)
