"""Metrics exposition: Prometheus text format, JSON, and delta snapshots.

Three complementary views of one :class:`~repro.observability.metrics.MetricsRegistry`:

* :func:`render_prometheus` — the text exposition format scrapers expect:
  ``# TYPE`` headers, sanitized names, counters suffixed ``_total``,
  histograms as cumulative ``_bucket{le="…"}`` series plus ``_sum`` /
  ``_count``.  Output is deterministically ordered (sorted by metric
  name), so two renders of the same registry state are byte-identical —
  the property the exposition-parity tests pin down.
* :func:`json_snapshot` — the registry's own snapshot, guaranteed
  JSON-strict (no ``Infinity`` tokens) and round-trippable.
* :func:`snapshot_delta` / :class:`DeltaSnapshotter` — monotonic deltas
  between two snapshots, so pollers (``repro top``, the CI smoke job)
  compute rates without scraping twice per series.  A counter that moved
  *backwards* (a registry reset between polls) clamps to a zero delta
  instead of going negative — rates never spike negative across restarts.

The serving layer surfaces these through the read-only ``metrics`` verb
(:mod:`repro.serving.protocol`); batch runs keep writing the same snapshot
into trace files via ``disable_tracing(write_metrics=True)``.
"""

from __future__ import annotations

import json
import math
import re
from typing import Any, Dict, List

from repro.observability.metrics import MetricsRegistry, get_metrics

__all__ = [
    "sanitize_metric_name",
    "render_prometheus",
    "json_snapshot",
    "snapshot_delta",
    "DeltaSnapshotter",
]

#: Characters legal in a Prometheus metric name body.
_NAME_OK = re.compile(r"[a-zA-Z0-9_:]")
_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str, *, prefix: str = "") -> str:
    """Map a dotted registry name onto the Prometheus grammar.

    ``[a-zA-Z_:][a-zA-Z0-9_:]*``: every illegal character (the registry's
    dots above all) becomes ``_``, runs collapse, and a leading digit gets
    an underscore escape.  The map is stable — equal inputs give equal
    outputs — but not injective; the parity tests assert the registry's
    name population stays collision-free.
    """
    cleaned = _NAME_BAD.sub("_", prefix + name)
    cleaned = re.sub(r"__+", "_", cleaned).strip("_") or "metric"
    if cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _fmt(value: float) -> str:
    """A float in exposition syntax (Prometheus spells infinity ``+Inf``)."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(
    registry: MetricsRegistry | None = None, *, prefix: str = "repro_"
) -> str:
    """The whole registry in the Prometheus text exposition format."""
    counters, gauges, histograms = (
        registry if registry is not None else get_metrics()
    ).export_view()
    lines: List[str] = []
    for name in sorted(counters):
        metric = sanitize_metric_name(name, prefix=prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(counters[name].value)}")
    for name in sorted(gauges):
        metric = sanitize_metric_name(name, prefix=prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(gauges[name].value)}")
    for name in sorted(histograms):
        hist = histograms[name]
        metric = sanitize_metric_name(name, prefix=prefix)
        lines.append(f"# TYPE {metric} histogram")
        for bound, cumulative in hist.cumulative_buckets():
            lines.append(f'{metric}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
        lines.append(f"{metric}_sum {_fmt(hist.total)}")
        lines.append(f"{metric}_count {hist.count}")
    return "\n".join(lines) + "\n" if lines else ""


def json_snapshot(registry: MetricsRegistry | None = None) -> Dict[str, Any]:
    """A JSON-strict registry snapshot (what ``metrics format=json`` serves).

    Round-trips through :func:`json.dumps` with ``allow_nan=False`` as a
    guarantee, not a hope: a non-finite value anywhere would raise here
    rather than emit an ``Infinity`` token a strict parser rejects.
    """
    snapshot = (registry if registry is not None else get_metrics()).snapshot()
    return json.loads(json.dumps(snapshot, allow_nan=False))


def snapshot_delta(
    previous: Dict[str, Any] | None, current: Dict[str, Any]
) -> Dict[str, Any]:
    """Monotonic difference between two registry snapshots.

    Counters and histogram ``count``/``sum`` report ``current - previous``
    clamped at zero (a shrink means the registry was reset between polls;
    a negative rate would be a lie).  Gauges are point-in-time values, so
    they pass through as-is.  With ``previous=None`` the current totals
    *are* the deltas — the first poll of a fresh series.
    """
    prev_counters = (previous or {}).get("counters", {})
    prev_hists = (previous or {}).get("histograms", {})
    counters = {
        name: max(0, value - prev_counters.get(name, 0))
        for name, value in current.get("counters", {}).items()
    }
    histograms = {}
    for name, snap in current.get("histograms", {}).items():
        prev = prev_hists.get(name, {})
        histograms[name] = {
            "count": max(0, snap["count"] - prev.get("count", 0)),
            "sum": max(0.0, snap.get("sum", 0.0) - prev.get("sum", 0.0)),
        }
    return {
        "counters": counters,
        "gauges": dict(current.get("gauges", {})),
        "histograms": histograms,
    }


class DeltaSnapshotter:
    """Stateful poller: each :meth:`delta` call diffs against the previous.

    Single-consumer by design (each poller owns one); the serving layer's
    ``stats`` verb stays stateless and leaves rate computation to clients,
    but in-process consumers (the bench suite, tests) use this directly.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self._registry = registry
        self._previous: Dict[str, Any] | None = None

    def delta(self) -> Dict[str, Any]:
        current = (
            self._registry if self._registry is not None else get_metrics()
        ).snapshot()
        result = snapshot_delta(self._previous, current)
        self._previous = current
        return result
