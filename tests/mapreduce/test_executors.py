"""Differential suite: the execution policy must never change results.

The executors refactor's core invariant is that serial, thread-pool, and
process-pool backends run the *same* orchestration (one ``Runner``), so for
any job — including every skyline method, retried tasks, and failing tasks —
outputs, counters, and failure semantics are identical across executors.

Every mapper/reducer here is module-level so the jobs stay picklable under
the process executor.
"""

import os

import numpy as np
import pytest

from repro.core.mr_skyline import run_mr_skyline
from repro.mapreduce import (
    EXECUTOR_NAMES,
    Job,
    JobConf,
    JobConfigError,
    JobFailedError,
    Mapper,
    ProcessExecutor,
    Reducer,
    Runner,
    SerialExecutor,
    ThreadExecutor,
    default_executor_name,
    make_executor,
    run_job,
)

POOL_WORKERS = 2


class TokenMapper(Mapper):
    def map(self, key, value, ctx):
        for word in value.split():
            ctx.emit(word, 1)
            ctx.increment("app", "tokens")


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


class CrashOnXMapper(Mapper):
    def map(self, key, value, ctx):
        if value == "x":
            raise RuntimeError("poisoned record")
        ctx.emit(value, 1)


class FlakyOnceMapper(Mapper):
    """Fails the task's first attempt, succeeds on retry.

    The "already attempted" state is a flag file (``params["flag_dir"]``)
    so it survives the process pool's round-trip — in-memory state would
    reset in a fresh worker.
    """

    def map(self, key, value, ctx):
        flag = os.path.join(self.params["flag_dir"], "attempted")
        if not os.path.exists(flag):
            with open(flag, "w"):
                pass
            raise RuntimeError("transient failure")
        for word in value.split():
            ctx.emit(word, 1)


WORDS = [(None, "a b a"), (None, "b b c"), (None, "c a d")]
EXPECTED = {"a": 3, "b": 3, "c": 2, "d": 1}


def _wordcount_job(**conf):
    conf.setdefault("num_reducers", 2)
    conf.setdefault("num_map_tasks", 3)
    return Job(
        name="wordcount",
        mapper=TokenMapper,
        reducer=SumReducer,
        conf=JobConf(**conf),
    )


def _run(executor, job, records, **runner_kwargs):
    with Runner(executor, num_workers=POOL_WORKERS, **runner_kwargs) as runner:
        return runner.run(job, records=records)


@pytest.fixture(scope="module")
def serial_wordcount():
    return _run("serial", _wordcount_job(), WORDS)


class TestDifferentialWordcount:
    @pytest.mark.parametrize("executor", EXECUTOR_NAMES)
    def test_outputs_and_counters_identical(self, executor, serial_wordcount):
        result = _run(executor, _wordcount_job(), WORDS)
        assert dict(result.output_pairs()) == EXPECTED
        assert result.outputs == serial_wordcount.outputs
        assert result.counters == serial_wordcount.counters
        assert result.executor == executor

    @pytest.mark.parametrize("executor", EXECUTOR_NAMES)
    def test_streaming_off_identical(self, executor, serial_wordcount):
        result = _run(executor, _wordcount_job(), WORDS, streaming=False)
        assert result.outputs == serial_wordcount.outputs
        assert result.counters == serial_wordcount.counters


class TestDifferentialSkyline:
    """All three methods × all three executors: identical skylines."""

    @pytest.fixture(scope="class")
    def points(self):
        rng = np.random.default_rng(7)
        return rng.random((600, 4))

    @pytest.fixture(scope="class")
    def baselines(self, points):
        return {
            method: run_mr_skyline(
                points, method=method, num_workers=2, executor="serial"
            )
            for method in ("dim", "grid", "angle")
        }

    @pytest.mark.parametrize("executor", EXECUTOR_NAMES)
    @pytest.mark.parametrize("method", ["dim", "grid", "angle"])
    def test_matches_serial_baseline(self, method, executor, points, baselines):
        base = baselines[method]
        result = run_mr_skyline(
            points, method=method, num_workers=2, executor=executor
        )
        assert np.array_equal(result.global_indices, base.global_indices)
        assert result.local_skylines.keys() == base.local_skylines.keys()
        for part, indices in base.local_skylines.items():
            assert np.array_equal(result.local_skylines[part], indices)
        assert result.counters == base.counters
        assert result.executor == executor

    @pytest.mark.parametrize("executor", EXECUTOR_NAMES)
    def test_pipelined_matches_sequential(self, executor, points, baselines):
        base = baselines["angle"]
        result = run_mr_skyline(
            points,
            method="angle",
            num_workers=2,
            executor=executor,
            pipelined=True,
        )
        assert np.array_equal(result.global_indices, base.global_indices)
        assert result.counters == base.counters
        assert result.pipelined


class TestDifferentialRetries:
    @pytest.mark.parametrize("executor", EXECUTOR_NAMES)
    def test_forced_retry_recovers_identically(self, executor, tmp_path):
        job = Job(
            name="flaky",
            mapper=FlakyOnceMapper,
            reducer=SumReducer,
            conf=JobConf(
                num_reducers=2,
                num_map_tasks=1,
                params={"flag_dir": str(tmp_path)},
            ),
        )
        result = _run(executor, job, WORDS, max_task_retries=2)
        assert dict(result.output_pairs()) == EXPECTED
        assert result.executor == executor

    @pytest.mark.parametrize("executor", EXECUTOR_NAMES)
    def test_exhausted_retries_raise_with_all_attempts(self, executor):
        job = Job(
            name="crash",
            mapper=CrashOnXMapper,
            reducer=SumReducer,
            conf=JobConf(num_reducers=1),
        )
        with pytest.raises(JobFailedError) as info:
            _run(executor, job, [(None, "x")], max_task_retries=2)
        assert len(info.value.failures) == 3  # 1 try + 2 retries
        assert all(
            "poisoned record" in str(f.cause) for f in info.value.failures
        )


class TestDifferentialFailures:
    @pytest.mark.parametrize("executor", EXECUTOR_NAMES)
    def test_completed_stats_survive_failure(self, executor):
        job = Job(
            name="crash",
            mapper=CrashOnXMapper,
            reducer=SumReducer,
            conf=JobConf(num_reducers=1, num_map_tasks=3),
        )
        records = [(None, "a"), (None, "b"), (None, "x")]
        with pytest.raises(JobFailedError) as info:
            _run(executor, job, records)
        assert len(info.value.failures) == 1
        assert "poisoned record" in str(info.value.failures[0].cause)
        # The two healthy tasks completed and report timings regardless of
        # which backend ran them.
        assert len(info.value.completed_stats) == 2


def _square(x):  # module-level: the process pool must pickle it
    return x * x


class TestExecutorPrimitives:
    def test_serial_is_inline_and_captures_exceptions(self):
        ex = SerialExecutor()
        assert ex.inline
        assert ex.submit(_square, 3).result() == 9
        fut = ex.submit(lambda: 1 / 0)
        assert isinstance(fut.exception(), ZeroDivisionError)

    @pytest.mark.parametrize("cls", [ThreadExecutor, ProcessExecutor])
    def test_pools_lazily_recreate_after_shutdown(self, cls):
        ex = cls(num_workers=1)
        assert not ex.inline
        assert ex.submit(_square, 4).result() == 16
        ex.shutdown()
        # A released executor must come back to life on the next submit —
        # the CLI reuses one sized instance across experiments.
        assert ex.submit(_square, 5).result() == 25
        ex.shutdown()

    @pytest.mark.parametrize("cls", [ThreadExecutor, ProcessExecutor])
    def test_pool_worker_count_validated(self, cls):
        with pytest.raises(JobConfigError):
            cls(num_workers=0)

    def test_make_executor_passthrough_and_names(self):
        ex = SerialExecutor()
        assert make_executor(ex) is ex
        assert make_executor("serial").name == "serial"
        assert make_executor(None).name == default_executor_name()
        with pytest.raises(JobConfigError):
            make_executor("bogus")

    def test_env_var_selects_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", " Threads ")
        assert default_executor_name() == "threads"
        result = run_job(_wordcount_job(), records=WORDS)
        assert result.executor == "threads"
        assert dict(result.output_pairs()) == EXPECTED

    def test_runner_reports_executor_name(self):
        with Runner("threads", num_workers=1) as runner:
            assert runner.executor_name == "threads"
            result = runner.run(_wordcount_job(), records=WORDS)
        assert result.executor == "threads"
        assert result.summary()["executor"] == "threads"
