"""Shared helpers for the contract-checker tests.

The violating fixtures mark each offending line with ``# VIOLATION:
<rule-id>``; :func:`expected_violations` recovers the ``(line, rule_id)``
pairs so tests assert exact locations without hardcoding line numbers.
"""

import re
from pathlib import Path

import pytest

FIXTURES = Path(__file__).parent / "fixtures"

_MARKER_RE = re.compile(r"#\s*VIOLATION:\s*([a-z-]+)")


def fixture_path(name: str) -> str:
    return str(FIXTURES / name)


def expected_violations(name: str) -> set:
    """``{(line, rule_id)}`` pairs declared by a fixture's markers."""
    pairs = set()
    source = (FIXTURES / name).read_text(encoding="utf-8")
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _MARKER_RE.search(line)
        if match:
            pairs.add((lineno, match.group(1)))
    return pairs


@pytest.fixture
def fixtures_dir() -> Path:
    return FIXTURES
