"""Representative skyline selection — the paper's extension line of work.

When the skyline itself is large (hundreds of services at d = 10), users
want a small set of *representative* skyline services.  The paper's
citations define the two standard notions, both implemented here:

* **Max-dominance representatives** (Lin et al., ICDE'07, the paper's
  [23]): pick the ``k`` skyline points that together dominate the most
  non-skyline points.  Greedy selection gives the classic
  ``(1 − 1/e)``-approximation because coverage is submodular.
* **Distance-based representatives** (the paper's own prior work [12],
  "similarity-based representative skyline"): pick ``k`` skyline points
  minimising the maximum distance from any skyline point to its nearest
  representative — approximated with Gonzalez's 2-approximation
  (farthest-point traversal) on min-max-normalised coordinates.

Both operate on indices into the original point set, composing directly
with :func:`repro.core.skyline.skyline` and
:func:`repro.core.mr_skyline.run_mr_skyline` results.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dominance import validate_points
from repro.core.skyline import skyline_numpy

__all__ = [
    "RepresentativeResult",
    "max_dominance_representatives",
    "distance_representatives",
]


@dataclass(slots=True)
class RepresentativeResult:
    """``k`` chosen representatives plus the quality of the choice."""

    indices: np.ndarray  # input indices of the representatives, pick order
    #: max-dominance: number of points dominated by the chosen set;
    #: distance: the covering radius (max distance to nearest rep).
    score: float

    def __len__(self) -> int:
        return int(self.indices.size)


def _resolve_skyline(
    points: np.ndarray, skyline_indices: np.ndarray | None
) -> np.ndarray:
    if skyline_indices is None:
        return skyline_numpy(points)
    return np.asarray(skyline_indices, dtype=np.intp)


def max_dominance_representatives(
    points: np.ndarray,
    k: int,
    *,
    skyline_indices: np.ndarray | None = None,
) -> RepresentativeResult:
    """Greedy max-coverage choice of ``k`` skyline representatives.

    Coverage of a set is the number of distinct points dominated by at
    least one member.  Coverage is monotone submodular, so the greedy sweep
    is a (1 − 1/e)-approximation of the optimal ``k``-set (Lin et al.).

    Returns fewer than ``k`` representatives only if the skyline itself is
    smaller than ``k``.
    """
    pts = validate_points(points)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    sky = _resolve_skyline(pts, skyline_indices)
    if sky.size == 0:
        return RepresentativeResult(indices=np.empty(0, dtype=np.intp), score=0.0)

    # Boolean coverage matrix: cover[i, j] = skyline point i dominates point j.
    sky_pts = pts[sky]
    le = (sky_pts[:, None, :] <= pts[None, :, :]).all(axis=2)
    lt = (sky_pts[:, None, :] < pts[None, :, :]).any(axis=2)
    cover = le & lt  # (|sky|, n)

    chosen: list[int] = []
    covered = np.zeros(pts.shape[0], dtype=bool)
    available = np.ones(sky.size, dtype=bool)
    for _ in range(min(k, sky.size)):
        gains = (cover & ~covered).sum(axis=1)
        gains[~available] = -1
        best = int(np.argmax(gains))
        chosen.append(int(sky[best]))
        covered |= cover[best]
        available[best] = False
    return RepresentativeResult(
        indices=np.array(chosen, dtype=np.intp), score=float(covered.sum())
    )


def distance_representatives(
    points: np.ndarray,
    k: int,
    *,
    skyline_indices: np.ndarray | None = None,
    seed_index: int | None = None,
) -> RepresentativeResult:
    """Gonzalez farthest-point choice of ``k`` skyline representatives.

    Minimises (within a factor of 2 of optimal) the maximum Euclidean
    distance, over min-max-normalised attributes, from any skyline point to
    its nearest representative — the "spread" notion of representativeness
    used in similarity-based representative skyline work.

    ``seed_index`` selects the first representative (position *within the
    skyline*, default: the point closest to the normalised origin, i.e. the
    most balanced high-quality service).
    """
    pts = validate_points(points)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    sky = _resolve_skyline(pts, skyline_indices)
    if sky.size == 0:
        return RepresentativeResult(indices=np.empty(0, dtype=np.intp), score=0.0)

    sky_pts = pts[sky]
    lo = sky_pts.min(axis=0)
    span = sky_pts.max(axis=0) - lo
    span[span == 0] = 1.0
    norm = (sky_pts - lo) / span

    if seed_index is None:
        seed = int(np.argmin((norm**2).sum(axis=1)))
    else:
        if not 0 <= seed_index < sky.size:
            raise ValueError(
                f"seed_index {seed_index} outside the skyline of {sky.size}"
            )
        seed = int(seed_index)

    chosen = [seed]
    dist = np.linalg.norm(norm - norm[seed], axis=1)
    while len(chosen) < min(k, sky.size):
        nxt = int(np.argmax(dist))
        chosen.append(nxt)
        dist = np.minimum(dist, np.linalg.norm(norm - norm[nxt], axis=1))
    return RepresentativeResult(
        indices=sky[np.array(chosen, dtype=np.intp)],
        score=float(dist.max()),
    )
