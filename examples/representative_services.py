#!/usr/bin/env python
"""Representative skyline services — shrinking a large skyline to top-k.

At d = 10 the skyline of a big registry holds hundreds of services — too
many for a user to inspect.  The paper's follow-up line of work (its refs
[12] and [23]) selects k *representatives*.  This example computes the full
skyline with the MR-Angle pipeline, then picks 5 representatives under both
notions:

* max-dominance — the 5 services that together dominate the most of the
  registry (coverage view), and
* distance-based — the 5 services spreading across the whole quality
  trade-off front (diversity view).

Run:  python examples/representative_services.py
"""

import numpy as np

from repro.core.representative import (
    distance_representatives,
    max_dominance_representatives,
)
from repro.services import QWS_SCHEMA, generate_qws, select_services

def main() -> None:
    dataset = generate_qws(10_000, seed=42)
    dims = 8
    selection = select_services(dataset, dims=dims, mode="mr-angle")
    print(f"{len(dataset):,} services -> skyline of {len(selection)} at d={dims}\n")

    matrix = dataset.qos_matrix(dims)
    names = QWS_SCHEMA.names[:4]

    def show(title, indices, score_label, score):
        print(f"{title} (score: {score_label} = {score:.2f})")
        header = "  ".join(f"{n[:12]:>12}" for n in names)
        print(f"      {header}")
        for rank, idx in enumerate(indices, start=1):
            row = "  ".join(f"{v:12.1f}" for v in dataset.raw[idx, :4])
            print(f"   #{rank} {row}")
        print()

    cov = max_dominance_representatives(
        matrix, 5, skyline_indices=selection.indices
    )
    show("max-dominance representatives", cov.indices,
         "services dominated", cov.score)

    div = distance_representatives(
        matrix, 5, skyline_indices=selection.indices
    )
    show("distance-based representatives", div.indices,
         "covering radius", div.score)

    # The coverage picks concentrate where the registry's mass is; the
    # distance picks spread across the front — quantify the difference.
    def spread(indices):
        rows = matrix[indices]
        lo = matrix[selection.indices].min(axis=0)
        span = matrix[selection.indices].max(axis=0) - lo
        span[span == 0] = 1.0
        norm = (rows - lo) / span
        return float(np.linalg.norm(norm[:, None] - norm[None, :], axis=2).max())

    print(f"pairwise spread: coverage picks {spread(cov.indices):.2f}, "
          f"diversity picks {spread(div.indices):.2f}")

if __name__ == "__main__":
    main()
