"""ASCII charts: render figure tables as terminal plots.

The paper's evaluation is communicated through line charts (Figures 5, 7)
and a stacked-bar chart (Figure 6).  These renderers turn the harness's
:class:`~repro.bench.reporting.Table` rows into the same visual shapes
without a plotting dependency — usable over SSH, in CI logs, and in this
repository's EXPERIMENTS records.

* :func:`line_chart` — multi-series scatter/line canvas with per-series
  glyphs and a legend (Figures 5 and 7: x = dimension, one series per
  method).
* :func:`stacked_bars` — horizontal two-segment bars (Figure 6: map time +
  reduce time per server count).
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["line_chart", "stacked_bars"]

_GLYPHS = "ox*+#@%&"


def line_chart(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    title: str = "",
    width: int = 64,
    height: int = 16,
    y_label: str = "",
) -> str:
    """Render one or more y-series over shared x values.

    Each series gets a distinct glyph; the legend maps glyphs to names.
    Values are linearly scaled into a ``height`` × ``width`` canvas with a
    zero-based y axis (paper charts all start at 0).
    """
    if width < 16 or height < 4:
        raise ValueError("width must be >= 16 and height >= 4")
    if not series:
        raise ValueError("need at least one series")
    xs = list(x)
    if len(xs) < 1:
        raise ValueError("need at least one x value")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(
                f"series {name!r} has {len(ys)} values for {len(xs)} x points"
            )
    if len(series) > len(_GLYPHS):
        raise ValueError(f"at most {len(_GLYPHS)} series supported")

    y_max = max(max(ys) for ys in series.values())
    if y_max <= 0:
        y_max = 1.0
    x_min, x_max = min(xs), max(xs)
    x_span = (x_max - x_min) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for glyph, (name, ys) in zip(_GLYPHS, series.items()):
        for xv, yv in zip(xs, ys):
            col = int((xv - x_min) / x_span * (width - 1))
            row = height - 1 - int(yv / y_max * (height - 1))
            canvas[row][col] = glyph

    out = []
    if title:
        out.append(title)
    label_width = max(len(f"{y_max:.0f}"), len("0")) + 1
    for i, row in enumerate(canvas):
        if i == 0:
            label = f"{y_max:.0f}"
        elif i == height - 1:
            label = "0"
        else:
            label = ""
        out.append(f"{label:>{label_width}} |{''.join(row)}|")
    out.append(f"{'':>{label_width}}  {x_min:<8g}{'':{max(width - 16, 0)}}{x_max:>8g}")
    legend = "   ".join(
        f"{glyph}={name}" for glyph, name in zip(_GLYPHS, series)
    )
    out.append(f"{'':>{label_width}}  {legend}")
    if y_label:
        out.append(f"{'':>{label_width}}  (y: {y_label})")
    return "\n".join(out) + "\n"


def stacked_bars(
    labels: Sequence[object],
    segments: Mapping[str, Sequence[float]],
    *,
    title: str = "",
    width: int = 56,
) -> str:
    """Horizontal stacked bars, one per label (the Figure-6 shape).

    ``segments`` maps segment names to per-label values; segments stack in
    mapping order using a distinct fill character each.
    """
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    if not segments:
        raise ValueError("need at least one segment")
    n = len(labels)
    for name, vals in segments.items():
        if len(vals) != n:
            raise ValueError(
                f"segment {name!r} has {len(vals)} values for {n} labels"
            )
        if any(v < 0 for v in vals):
            raise ValueError(f"segment {name!r} has negative values")
    fills = "#=+-~o"
    if len(segments) > len(fills):
        raise ValueError(f"at most {len(fills)} segments supported")

    totals = [
        sum(vals[i] for vals in segments.values()) for i in range(n)
    ]
    peak = max(totals) or 1.0
    scale = width / peak

    out = []
    if title:
        out.append(title)
    label_width = max((len(str(l)) for l in labels), default=1)
    for i, label in enumerate(labels):
        bar = ""
        for fill, vals in zip(fills, segments.values()):
            bar += fill * int(round(vals[i] * scale))
        out.append(f"{str(label):>{label_width}} |{bar:<{width}}| {totals[i]:.1f}")
    legend = "   ".join(
        f"{fill}={name}" for fill, name in zip(fills, segments)
    )
    out.append(f"{'':>{label_width}}  {legend}")
    return "\n".join(out) + "\n"
