"""PointBlock: columnar batches with stable ids, legacy round-trips."""

import dataclasses

import numpy as np
import pytest

from repro.core.blocks import PointBlock, concat_blocks


def _rows(n=6, d=3, seed=0):
    return np.random.default_rng(seed).random((n, d))


class TestConstruction:
    def test_from_rows_defaults_ids_to_range(self):
        block = PointBlock.from_rows(_rows())
        assert np.array_equal(block.ids, np.arange(6))
        assert block.ids.dtype == np.intp
        assert len(block) == 6
        assert block.dims == 3

    def test_explicit_ids_travel_with_rows(self):
        rows = _rows(4)
        block = PointBlock.from_rows(rows, ids=[9, 7, 5, 3])
        assert np.array_equal(block.ids, [9, 7, 5, 3])
        assert np.array_equal(block.rows, rows)

    def test_mismatched_id_count_rejected(self):
        with pytest.raises(ValueError, match="ids has 2 entries for 4 rows"):
            PointBlock.from_rows(_rows(4), ids=[1, 2])

    def test_nan_rows_rejected(self):
        rows = _rows(3)
        rows[1, 0] = np.nan
        with pytest.raises(ValueError):
            PointBlock.from_rows(rows)

    def test_one_dimensional_input_promoted_to_single_row(self):
        block = PointBlock.from_rows(np.array([1.0, 2.0, 3.0]))
        assert len(block) == 1 and block.dims == 3
        with pytest.raises(ValueError):
            PointBlock.from_rows(np.zeros((2, 2, 2)))

    def test_rows_coerced_contiguous_float64(self):
        rows = np.asfortranarray(_rows(5, 4).astype(np.float32))
        block = PointBlock.from_rows(rows)
        assert block.rows.dtype == np.float64
        assert block.rows.flags["C_CONTIGUOUS"]

    def test_immutable(self):
        block = PointBlock.from_rows(_rows())
        with pytest.raises(dataclasses.FrozenInstanceError):
            block.ids = np.arange(6)

    def test_empty(self):
        block = PointBlock.empty(5)
        assert len(block) == 0
        assert block.dims == 5
        with pytest.raises(ValueError):
            PointBlock.empty(0)


class TestLegacyRoundTrip:
    def test_tuple_round_trip_is_exact(self):
        rows = _rows(7, 2)
        ids = np.array([3, 1, 4, 1, 5, 9, 2])
        block = PointBlock.from_tuple((ids, rows))
        out_ids, out_rows = block.to_tuple()
        assert np.array_equal(out_ids, ids)
        assert np.array_equal(out_rows, rows)
        again = PointBlock.from_tuple(block.to_tuple())
        assert np.array_equal(again.ids, block.ids)
        assert np.array_equal(again.rows, block.rows)


class TestColumnarOps:
    def test_take_mask_keeps_ids_aligned(self):
        rows = _rows(6)
        block = PointBlock.from_rows(rows, ids=[10, 11, 12, 13, 14, 15])
        picked = block.take(np.array([True, False, True, False, False, True]))
        assert np.array_equal(picked.ids, [10, 12, 15])
        assert np.array_equal(picked.rows, rows[[0, 2, 5]])

    def test_take_index_array(self):
        block = PointBlock.from_rows(_rows(5), ids=[4, 3, 2, 1, 0])
        picked = block.take(np.array([4, 0]))
        assert np.array_equal(picked.ids, [0, 4])

    def test_take_wrong_mask_shape_rejected(self):
        block = PointBlock.from_rows(_rows(5))
        with pytest.raises(ValueError, match="mask has shape"):
            block.take(np.array([True, False]))

    def test_slice_and_chunks_cover_every_row(self):
        block = PointBlock.from_rows(_rows(10))
        mid = block.slice(3, 7)
        assert np.array_equal(mid.ids, np.arange(3, 7))
        pieces = list(block.chunks(4))
        assert [len(p) for p in pieces] == [4, 4, 2]
        assert np.array_equal(
            np.concatenate([p.ids for p in pieces]), block.ids
        )
        with pytest.raises(ValueError):
            list(block.chunks(0))

    def test_sort_by_and_ids_ascending(self):
        rows = _rows(4)
        block = PointBlock.from_rows(rows, ids=[30, 10, 20, 0])
        canonical = block.with_ids_ascending()
        assert np.array_equal(canonical.ids, [0, 10, 20, 30])
        assert np.array_equal(canonical.rows, rows[[3, 1, 2, 0]])


class TestConcat:
    def test_concat_preserves_ids_and_order(self):
        a = PointBlock.from_rows(_rows(3, 2, seed=1), ids=[0, 1, 2])
        b = PointBlock.from_rows(_rows(2, 2, seed=2), ids=[7, 8])
        merged = concat_blocks([a, b])
        assert np.array_equal(merged.ids, [0, 1, 2, 7, 8])
        assert np.array_equal(merged.rows[:3], a.rows)
        assert np.array_equal(merged.rows[3:], b.rows)

    def test_single_block_passthrough(self):
        a = PointBlock.from_rows(_rows(3))
        assert concat_blocks([a]) is a

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError, match="at least one block"):
            concat_blocks([])

    def test_dim_mismatch_rejected(self):
        a = PointBlock.from_rows(_rows(3, 2))
        b = PointBlock.from_rows(_rows(3, 4))
        with pytest.raises(ValueError, match="disagree on dimensionality"):
            concat_blocks([a, b])
