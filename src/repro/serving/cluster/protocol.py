"""JSON-lines protocol of the cluster coordinator.

Same wire format and verbs as the single-node protocol
(:mod:`repro.serving.protocol`) — a client cannot tell a coordinator from
a plain ``repro serve`` except by what the responses carry:

* ``register`` takes an optional ``"shard_fn"`` (``"hash"`` / ``"angle"``
  / ``"grid"`` / ``"dim"``; omitted = single-shard placement) and answers
  with ``"generations"`` (the vector) instead of a scalar generation;
* ``query`` responses carry ``generations``, ``degraded`` and
  ``missing_shards``;
* ``insert`` / ``remove`` answer with the new generation vector;
* ``stats`` adds the per-shard ``"shards"`` table ``repro top`` renders.

A fully-unreachable cluster is an ``{"ok": false, "status":
"unavailable"}`` response — still data, never a broken connection —
while partial loss is a successful ``degraded`` answer.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.serving.cluster.coordinator import (
    ClusterCoordinator,
    ClusterUnavailableError,
    ShardLostError,
)
from repro.serving.protocol import (
    PROTOCOL_VERSION,
    _handle_events,
    _handle_metrics,
    parse_query_spec,
)
from repro.serving.service import UnknownDatasetError

__all__ = ["handle_cluster_request"]


def _register(
    coordinator: ClusterCoordinator, request: Dict[str, Any]
) -> Dict[str, Any]:
    dataset = str(request.get("dataset", ""))
    points = request.get("points")
    shard_fn = request.get("shard_fn")
    gvec = coordinator.register(
        dataset,
        np.asarray(points, dtype=np.float64) if points is not None else None,
        shard_fn=str(shard_fn) if shard_fn is not None else None,
        scheme=str(request.get("scheme", "angle")),
        num_partitions=int(request.get("partitions", 8)),
    )
    return {
        "ok": True,
        "dataset": dataset,
        "generations": list(gvec),
        "shards": coordinator.num_shards,
    }


def _query(
    coordinator: ClusterCoordinator, request: Dict[str, Any]
) -> Dict[str, Any]:
    spec = parse_query_spec(request)
    deadline = request.get("deadline_s")
    response = coordinator.query(
        spec, deadline_s=float(deadline) if deadline is not None else None
    )
    return {"ok": True, **response.to_dict()}


def _insert(
    coordinator: ClusterCoordinator, request: Dict[str, Any]
) -> Dict[str, Any]:
    point_id, gvec = coordinator.insert(
        str(request.get("dataset", "")), request["point"]
    )
    return {"ok": True, "id": point_id, "generations": list(gvec)}


def _remove(
    coordinator: ClusterCoordinator, request: Dict[str, Any]
) -> Dict[str, Any]:
    gvec = coordinator.remove(
        str(request.get("dataset", "")), int(request["id"])
    )
    return {"ok": True, "generations": list(gvec)}


def handle_cluster_request(
    coordinator: ClusterCoordinator, request: Dict[str, Any]
) -> Dict[str, Any]:
    """Dispatch one decoded request; always returns a response object."""
    if not isinstance(request, dict):
        return {"ok": False, "status": "error", "error": "request must be an object"}
    op = request.get("op")
    try:
        if op == "register":
            return _register(coordinator, request)
        if op == "query":
            return _query(coordinator, request)
        if op == "insert":
            return _insert(coordinator, request)
        if op == "remove":
            return _remove(coordinator, request)
        if op == "stats":
            return {
                "ok": True,
                "version": PROTOCOL_VERSION,
                **coordinator.stats(),
            }
        if op == "health":
            return {"ok": True, **coordinator.health()}
        if op == "slo":
            return {"ok": True, **coordinator.slo_report()}
        if op == "events":
            return _handle_events(coordinator, request)  # type: ignore[arg-type]
        if op == "metrics":
            return _handle_metrics(coordinator, request)  # type: ignore[arg-type]
        if op == "ping":
            return {
                "ok": True,
                "pong": True,
                "version": PROTOCOL_VERSION,
                "shards": coordinator.num_shards,
            }
        if op == "shutdown":
            return {"ok": True, "bye": True}
        return {"ok": False, "status": "error", "error": f"unknown op {op!r}"}
    except (ShardLostError, ClusterUnavailableError) as exc:
        return {
            "ok": False,
            "status": "unavailable",
            "error": str(exc),
            **(
                {"shard": exc.shard}
                if isinstance(exc, ShardLostError)
                else {}
            ),
        }
    except UnknownDatasetError as exc:
        return {
            "ok": False,
            "status": "error",
            "error": f"unknown dataset {exc.args[0]!r}",
        }
    except (KeyError, TypeError, ValueError) as exc:
        return {"ok": False, "status": "error", "error": str(exc)}
