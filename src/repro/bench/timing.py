"""Timing helpers for the benchmark harness.

All measurements use the monotonic nanosecond clock
(:func:`repro.observability.tracing.now_ns`, i.e.
``time.perf_counter_ns``) — the same clock the tracer stamps spans with,
so bench timings and trace durations are directly comparable.
:func:`stopwatch` is the single start/stop primitive; :class:`Timer` and
:func:`best_of` are thin conveniences over it.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, List

from repro.observability.tracing import now_ns


@contextmanager
def stopwatch() -> Iterator[Callable[[], float]]:
    """Context manager yielding an elapsed-seconds reader.

    The reader can be called any number of times, inside or after the
    block; it always reports monotonic time since the block was entered::

        with stopwatch() as elapsed:
            work()
        seconds = elapsed()
    """
    start = now_ns()
    yield lambda: (now_ns() - start) / 1e9


@dataclass(slots=True)
class Timer:
    """Accumulates named wall-clock measurements."""

    samples: dict = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        with stopwatch() as elapsed:
            try:
                yield
            finally:
                self.samples.setdefault(name, []).append(elapsed())

    def total(self, name: str) -> float:
        return sum(self.samples.get(name, []))

    def mean(self, name: str) -> float:
        values = self.samples.get(name, [])
        return sum(values) / len(values) if values else 0.0


def best_of(fn: Callable[[], object], repeats: int = 3) -> tuple[float, object]:
    """Run ``fn`` ``repeats`` times; return (best seconds, last result).

    Best-of-N is the standard noise-rejection strategy for wall-clock
    micro-measurements (the minimum is the least-contaminated sample).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    best = float("inf")
    result: object = None
    for _ in range(repeats):
        with stopwatch() as elapsed:
            result = fn()
        best = min(best, elapsed())
    return best, result


def measurements_summary(values: List[float]) -> dict:
    """min/mean/max summary used in report footnotes."""
    if not values:
        return {"min": 0.0, "mean": 0.0, "max": 0.0, "n": 0}
    return {
        "min": min(values),
        "mean": sum(values) / len(values),
        "max": max(values),
        "n": len(values),
    }
