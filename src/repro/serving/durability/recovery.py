"""Replay snapshot + WAL tail back into a live store.

The contract: a store recovered from its on-disk state answers every
query **id-for-id identically** to the pre-crash store at the same
generation.  Three properties make that hold:

* the snapshot persists the full membership ``(ids, rows)``, the
  generation counter and the id-allocation cursor, and
  :meth:`~repro.serving.store.SkylineStore.restore_members` installs
  them verbatim;
* WAL records replay through the *normal* store mutations, so each
  replayed mutation bumps the generation by exactly one and each
  replayed insert draws the same id from the restored cursor;
* every externally-visible answer (global skyline, the four query
  evaluators) is independent of partition boundaries, so the recovered
  store fitting its partitioner on the surviving members — rather than
  the original first batch — cannot change any result.

Replay is tolerant where the WAL is (a torn tail is dropped, an unknown
record op is skipped with an event) and strict where the snapshot is
(a corrupt snapshot raises — see
:class:`~repro.serving.durability.snapshot.SnapshotError`).
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, NamedTuple

import numpy as np

from repro.observability.events import get_events
from repro.observability.metrics import get_metrics
from repro.serving.durability.manager import DatasetLog, DurabilityManager
from repro.serving.durability.snapshot import read_snapshot
from repro.serving.durability.wal import read_wal
from repro.serving.store import SkylineStore

__all__ = ["RecoveryReport", "recover_dataset", "recover_store"]


class RecoveryReport(NamedTuple):
    """What a recovery did, for events / bench / operator output."""

    dataset: str
    generation: int
    members: int
    records_replayed: int
    records_skipped: int
    snapshot_generation: int | None
    snapshot_bytes: int
    torn_tail: bool
    duration_s: float


def recover_store(
    log: DatasetLog,
    *,
    executor: Any = None,
    kernel: str | None = None,
) -> tuple[SkylineStore | None, RecoveryReport]:
    """Rebuild the store recorded under ``log``; attach the log to it.

    Returns ``(store, report)``; the store is ``None`` when the on-disk
    state contains neither a snapshot nor a register record (nothing to
    recover).  ``executor`` / ``kernel`` override the persisted config's
    executor and dominance backend — the shard-restart path passes the
    server's flags so a fleet stays homogeneous.
    """
    started = time.perf_counter()
    snapshot = read_snapshot(log.snapshot_path)
    scan = read_wal(log.wal_path)
    # The log's writer trimmed any torn tail when it opened the file, so
    # this scan reads clean — carry the open-time fact into the report.
    torn = scan.torn or log.wal.torn_on_open

    store: SkylineStore | None = None
    covered_seq = -1
    snapshot_generation: int | None = None
    snapshot_bytes = 0
    if snapshot is not None:
        covered_seq = int(snapshot.get("wal_seq", -1))
        snapshot_generation = int(snapshot["generation"])
        snapshot_bytes = os.path.getsize(log.snapshot_path)
        store = _build_store(
            log.name, snapshot.get("config", {}), executor=executor, kernel=kernel
        )
        store.restore_members(
            snapshot.get("ids", []),
            np.asarray(snapshot.get("rows", []), dtype=np.float64).reshape(
                len(snapshot.get("ids", [])), -1
            )
            if snapshot.get("ids")
            else np.empty((0, 0)),
            generation=snapshot_generation,
            next_id=int(snapshot["next_id"]),
        )

    replayed = 0
    skipped = 0
    for record in scan.records:
        if record.seq <= covered_seq:
            continue
        payload = record.payload
        op = payload.get("op")
        if op == "register":
            # A re-registration replaces the store wholesale, exactly as
            # the live path does; everything before it is superseded.
            store = _build_store(
                log.name, payload.get("config", {}), executor=executor, kernel=kernel
            )
            replayed += 1
        elif store is None:
            # Mutations before any register record have nothing to apply
            # to — possible only with a hand-damaged directory.
            skipped += 1
        elif op == "insert":
            store.insert(payload["row"])
            replayed += 1
        elif op == "remove":
            store.remove(int(payload["id"]))
            replayed += 1
        elif op == "bulk":
            rows = payload["rows"]
            store.bulk_load(
                np.asarray(rows, dtype=np.float64).reshape(len(rows), -1)
            )
            replayed += 1
        else:
            skipped += 1
            get_events().emit(
                "durability.skip_record", dataset=log.name, seq=record.seq, op=op
            )

    if store is not None:
        store.attach_durability(log)
    duration = time.perf_counter() - started
    report = RecoveryReport(
        dataset=log.name,
        generation=store.generation if store is not None else 0,
        members=len(store) if store is not None else 0,
        records_replayed=replayed,
        records_skipped=skipped,
        snapshot_generation=snapshot_generation,
        snapshot_bytes=snapshot_bytes,
        torn_tail=torn,
        duration_s=duration,
    )
    metrics = get_metrics()
    metrics.counter("wal.records_replayed").inc(replayed)
    metrics.counter("durability.recoveries").inc()
    get_events().emit(
        "durability.recover",
        dataset=log.name,
        generation=report.generation,
        members=report.members,
        records_replayed=replayed,
        records_skipped=skipped,
        snapshot_generation=snapshot_generation,
        torn_tail=torn,
        duration_s=round(duration, 6),
    )
    return store, report


def recover_dataset(
    manager: DurabilityManager,
    name: str,
    *,
    executor: Any = None,
    kernel: str | None = None,
) -> tuple[SkylineStore | None, RecoveryReport]:
    """Recover one dataset by name out of ``manager``'s data directory."""
    return recover_store(
        manager.dataset_log(name), executor=executor, kernel=kernel
    )


def _build_store(
    name: str,
    config: Dict[str, Any],
    *,
    executor: Any = None,
    kernel: str | None = None,
) -> SkylineStore:
    """A fresh, silent (no durability attached) store per persisted config."""
    return SkylineStore(
        name,
        scheme=str(config.get("scheme", "angle")),
        num_partitions=int(config.get("num_partitions", 8)),
        num_workers=int(config.get("num_workers", 2)),
        mr_bulk_threshold=int(config.get("mr_bulk_threshold", 50_000)),
        executor=executor if executor is not None else config.get("executor"),
        kernel=kernel if kernel is not None else config.get("kernel"),
    )
