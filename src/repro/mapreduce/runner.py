"""Job runners: serial (deterministic, measurable) and multiprocessing.

The :class:`SerialRunner` executes tasks one at a time and is the default —
its per-task timings are clean, which matters because those timings feed the
cluster simulator for the paper's server-count sweep.  The
:class:`MultiprocessRunner` runs map and reduce tasks in a process pool for
real speedups on multi-core machines (task payloads are pickled to workers,
so user mapper/reducer classes must be module-level).

Both runners share the task bodies in :mod:`repro.mapreduce.tasks`, support
per-task retries, and produce identical :class:`JobResult` structure.

Every run is traced through :mod:`repro.observability`: a ``job`` span
nests ``phase`` spans (map / shuffle / reduce), which nest ``task`` spans —
real nested spans under the serial runner, synthetic back-dated spans under
multiprocessing (tasks execute in workers; only their measured durations
travel back).  Spans export as they finish, so a job that dies mid-phase
still leaves a partial trace, and the raised :class:`JobFailedError`
carries the completed tasks' stats.  With the default disabled tracer all
hooks are no-ops.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Sequence, Tuple

from repro.mapreduce.errors import JobConfigError, JobFailedError, TaskError
from repro.mapreduce.counters import Counters
from repro.mapreduce.inputs import InputFormat, InputSplit, SequenceInputFormat
from repro.mapreduce.job import ChainResult, Job, JobChain, JobResult
from repro.mapreduce.serialization import estimate_nbytes
from repro.mapreduce.shuffle import Grouped, shuffle
from repro.mapreduce.tasks import run_map_task, run_reduce_task
from repro.mapreduce.types import PhaseStats, TaskKind, TaskStats
from repro.observability.metrics import get_metrics, observe_partition_skew
from repro.observability.tracing import Tracer, get_tracer

Pair = Tuple[Hashable, Any]


@dataclass(slots=True)
class _JobSpec:
    """The picklable task-side view of a job."""

    name: str
    mapper: type
    reducer: type
    combiner: type | None
    params: Dict[str, Any]
    num_reducers: int
    partitioner: Any
    spill_records: int
    sort_keys: bool

    @classmethod
    def of(cls, job: Job) -> "_JobSpec":
        return cls(
            name=job.name,
            mapper=job.mapper,
            reducer=job.reducer,
            combiner=job.combiner,
            params=dict(job.conf.params),
            num_reducers=job.conf.num_reducers,
            partitioner=job.conf.partitioner,
            spill_records=job.conf.spill_records,
            sort_keys=job.conf.sort_keys,
        )


def _execute_map_task(
    spec: _JobSpec, task_index: int, split: InputSplit
) -> Tuple[List[List[Pair]], Counters, TaskStats]:
    task_id = f"map-{task_index}"
    buffers, counters, duration, rin, rout = run_map_task(
        task_id,
        spec.mapper,
        split.records,
        spec.params,
        spec.num_reducers,
        spec.partitioner,
        spec.combiner,
        spec.spill_records,
        spec.sort_keys,
    )
    bytes_out = sum(
        estimate_nbytes(k) + estimate_nbytes(v) for buf in buffers for k, v in buf
    )
    stats = TaskStats(
        task_id=task_id,
        kind=TaskKind.MAP,
        duration_s=duration,
        records_in=rin,
        records_out=rout,
        bytes_out=bytes_out,
    )
    return buffers, counters, stats


def _execute_reduce_task(
    spec: _JobSpec, part_index: int, grouped: Grouped
) -> Tuple[List[Pair], Counters, TaskStats]:
    task_id = f"reduce-{part_index}"
    output, counters, duration, rin, rout = run_reduce_task(
        task_id, spec.reducer, grouped, spec.params
    )
    bytes_out = sum(estimate_nbytes(k) + estimate_nbytes(v) for k, v in output)
    stats = TaskStats(
        task_id=task_id,
        kind=TaskKind.REDUCE,
        duration_s=duration,
        records_in=rin,
        records_out=rout,
        bytes_out=bytes_out,
        partition=part_index,
    )
    return output, counters, stats


def _task_span_attrs(stats: TaskStats) -> Dict[str, Any]:
    """Span annotations shared by real and synthetic task spans."""
    return {
        "task_kind": str(stats.kind),
        "records_in": stats.records_in,
        "records_out": stats.records_out,
        "bytes_out": stats.bytes_out,
        "attempt": stats.attempt,
        "measured_s": round(stats.duration_s, 9),
    }


def _observe_task(stats: TaskStats) -> None:
    """Feed one finished task into the duration histograms."""
    get_metrics().histogram(f"task.{stats.kind}.duration_s").observe(
        stats.duration_s
    )


class Runner:
    """Common driver logic; subclasses provide the task execution strategy."""

    def __init__(self, max_task_retries: int = 0, tracer: Tracer | None = None):
        if max_task_retries < 0:
            raise JobConfigError(
                f"max_task_retries must be >= 0, got {max_task_retries}"
            )
        self.max_task_retries = max_task_retries
        self._tracer = tracer

    @property
    def tracer(self) -> Tracer:
        """This runner's tracer (late-bound to the process default)."""
        return self._tracer if self._tracer is not None else get_tracer()

    # -- public API -------------------------------------------------------------

    def run(
        self,
        job: Job,
        *,
        records: Sequence[Pair] | None = None,
        input_format: InputFormat | None = None,
    ) -> JobResult:
        """Execute one job over in-memory records or an input format."""
        job.validate()
        if (records is None) == (input_format is None):
            raise JobConfigError("provide exactly one of records / input_format")
        if input_format is None:
            input_format = SequenceInputFormat(records, job.conf.num_map_tasks)
        splits = input_format.splits()
        spec = _JobSpec.of(job)
        counters = Counters()
        tracer = self.tracer

        with tracer.span(
            job.name,
            kind="job",
            num_map_tasks=len(splits),
            num_reducers=job.conf.num_reducers,
        ) as job_span:
            with tracer.span("map", kind="phase", phase="map") as map_span:
                t0 = time.perf_counter_ns()
                map_results = self._run_map_phase(spec, splits)
                map_wall = (time.perf_counter_ns() - t0) / 1e9
                map_span.set_attrs(tasks=len(map_results))

            map_stats = PhaseStats(kind=TaskKind.MAP)
            map_outputs: List[List[List[Pair]]] = []
            for buffers, task_counters, stats in map_results:
                map_outputs.append(buffers)
                counters.merge(task_counters)
                map_stats.tasks.append(stats)
                _observe_task(stats)

            with tracer.span("shuffle", kind="phase", phase="shuffle") as sh_span:
                t1 = time.perf_counter_ns()
                partitions, shuffle_stats = shuffle(
                    map_outputs,
                    job.conf.num_reducers,
                    sort_keys=job.conf.sort_keys,
                    spill_dir=job.conf.spill_dir,
                    spill_threshold_records=job.conf.spill_threshold_records,
                )
                shuffle_wall = (time.perf_counter_ns() - t1) / 1e9
                sh_span.set_attrs(**shuffle_stats.as_dict())

            # Per-reduce-partition record counts: the skew the paper's
            # partitioning schemes compete on.
            observe_partition_skew(
                get_metrics(),
                [sum(len(vs) for _, vs in grouped) for grouped in partitions],
            )

            with tracer.span("reduce", kind="phase", phase="reduce") as red_span:
                t2 = time.perf_counter_ns()
                reduce_results = self._run_reduce_phase(spec, partitions)
                reduce_wall = (time.perf_counter_ns() - t2) / 1e9
                red_span.set_attrs(tasks=len(reduce_results))

            reduce_stats = PhaseStats(kind=TaskKind.REDUCE)
            outputs: List[List[Pair]] = []
            for output, task_counters, stats in reduce_results:
                outputs.append(output)
                counters.merge(task_counters)
                reduce_stats.tasks.append(stats)
                _observe_task(stats)

            job_span.set_attrs(
                map_wall_s=round(map_wall, 9),
                shuffle_wall_s=round(shuffle_wall, 9),
                reduce_wall_s=round(reduce_wall, 9),
                output_records=sum(len(p) for p in outputs),
            )

        get_metrics().absorb_counters(counters)
        return JobResult(
            job_name=job.name,
            outputs=outputs,
            counters=counters,
            map_stats=map_stats,
            reduce_stats=reduce_stats,
            shuffle_stats=shuffle_stats,
            map_wall_s=map_wall,
            shuffle_wall_s=shuffle_wall,
            reduce_wall_s=reduce_wall,
        )

    def run_chain(self, chain: JobChain, records: Sequence[Pair]) -> ChainResult:
        """Execute a job chain, feeding each job the previous job's output."""
        current: List[Pair] = list(records)
        results: List[JobResult] = []
        with self.tracer.span(chain.name, kind="chain", stages=len(chain)):
            for builder in chain.stages:
                job = builder(current)
                result = self.run(job, records=current)
                results.append(result)
                current = list(result.output_pairs())
        return ChainResult(results=results)

    # -- strategy hooks -----------------------------------------------------------

    def _run_map_phase(self, spec: _JobSpec, splits: List[InputSplit]):
        raise NotImplementedError

    def _run_reduce_phase(self, spec: _JobSpec, partitions: List[Grouped]):
        raise NotImplementedError

    def _with_retries(self, fn, spec: _JobSpec, index: int, payload):
        """Serial execution of one task with retries, each attempt traced."""
        kind = "map" if fn is _execute_map_task else "reduce"
        task_id = f"{kind}-{index}"
        tracer = self.tracer
        attempts = self.max_task_retries + 1
        failures: List[TaskError] = []
        for attempt in range(attempts):
            try:
                with tracer.span(task_id, kind="task", attempt=attempt + 1) as span:
                    result = fn(spec, index, payload)
                    _, _, stats = result
                    if attempt > 0:
                        stats.attempt = attempt + 1
                    span.set_attrs(**_task_span_attrs(stats))
                return result
            except TaskError as exc:
                # The span closed with status="error"; keep the cause too.
                failures.append(exc)
                get_metrics().counter(f"task.{kind}.failures").inc()
        raise JobFailedError(spec.name, failures)


class SerialRunner(Runner):
    """Runs every task in the driver process, one at a time."""

    def _run_serial(self, fn, spec: _JobSpec, items: list):
        results = []
        for i, item in enumerate(items):
            try:
                results.append(self._with_retries(fn, spec, i, item))
            except JobFailedError as exc:
                # Preserve the telemetry of everything that did finish.
                exc.completed_stats = [stats for _, _, stats in results]
                raise
        return results

    def _run_map_phase(self, spec: _JobSpec, splits: List[InputSplit]):
        return self._run_serial(_execute_map_task, spec, splits)

    def _run_reduce_phase(self, spec: _JobSpec, partitions: List[Grouped]):
        return self._run_serial(_execute_reduce_task, spec, partitions)


class MultiprocessRunner(Runner):
    """Runs tasks in a :class:`ProcessPoolExecutor`.

    One pool is created per phase; payloads travel by pickle.  Retries are
    re-submitted to the pool (a fresh worker may succeed where a poisoned one
    failed).

    Tasks execute in worker processes, where the driver's tracer does not
    exist, so the driver records *synthetic* task spans from each task's
    measured duration as its future completes — including error spans for
    tasks that exhaust their retries, so a failed job still produces a
    partial trace and a :class:`JobFailedError` carrying the completed
    tasks' stats.
    """

    def __init__(
        self,
        num_workers: int,
        max_task_retries: int = 0,
        tracer: Tracer | None = None,
    ):
        super().__init__(max_task_retries, tracer)
        if num_workers <= 0:
            raise JobConfigError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers

    def _run_phase(self, fn, spec: _JobSpec, items: list):
        kind = "map" if fn is _execute_map_task else "reduce"
        tracer = self.tracer
        results: list = [None] * len(items)
        with ProcessPoolExecutor(max_workers=self.num_workers) as pool:
            pending = {
                pool.submit(fn, spec, i, item): (i, item, 0)
                for i, item in enumerate(items)
            }
            failures: List[TaskError] = []
            while pending:
                finished, _ = wait(list(pending), return_when=FIRST_COMPLETED)
                for future in finished:
                    i, item, attempt = pending.pop(future)
                    try:
                        results[i] = future.result()
                        _, _, stats = results[i]
                        if attempt > 0:
                            stats.attempt = attempt + 1
                        tracer.record_span(
                            stats.task_id,
                            kind="task",
                            duration_ns=int(stats.duration_s * 1e9),
                            **_task_span_attrs(stats),
                        )
                    except TaskError as exc:
                        if attempt < self.max_task_retries:
                            retry = pool.submit(fn, spec, i, item)
                            pending[retry] = (i, item, attempt + 1)
                        else:
                            failures.append(exc)
                            self._record_failure(exc, kind, attempt + 1)
                    except Exception as exc:  # worker crashed outside user code
                        failure = TaskError(f"{kind}-{i}", exc)
                        failures.append(failure)
                        self._record_failure(failure, kind, attempt + 1)
            if failures:
                raise JobFailedError(
                    spec.name,
                    failures,
                    completed_stats=[
                        stats for r in results if r is not None for stats in (r[2],)
                    ],
                )
        return results

    def _record_failure(self, exc: TaskError, kind: str, attempts: int) -> None:
        """Trace/metric footprint of a terminally-failed worker task."""
        self.tracer.record_span(
            exc.task_id,
            kind="task",
            status="error",
            attempt=attempts,
            task_kind=kind,
            error=str(exc.cause),
        )
        get_metrics().counter(f"task.{kind}.failures").inc()

    def _run_map_phase(self, spec: _JobSpec, splits: List[InputSplit]):
        return self._run_phase(_execute_map_task, spec, splits)

    def _run_reduce_phase(self, spec: _JobSpec, partitions: List[Grouped]):
        return self._run_phase(_execute_reduce_task, spec, partitions)


def run_job(
    job: Job,
    *,
    records: Sequence[Pair] | None = None,
    input_format: InputFormat | None = None,
    runner: Runner | None = None,
) -> JobResult:
    """One-call convenience: run ``job`` with the given or default runner."""
    runner = runner or SerialRunner()
    return runner.run(job, records=records, input_format=input_format)
