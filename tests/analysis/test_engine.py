"""Engine behaviour: rule selection, baselines, parse failures, exit codes."""

import pytest

from repro.analysis import (
    BaselineError,
    all_rule_ids,
    load_baseline,
    run_lint,
    write_baseline,
)

from tests.analysis.conftest import fixture_path


class TestRuleSelection:
    def test_all_four_packs_are_registered(self):
        assert {
            "udf-purity",
            "pickle-safety",
            "lock-discipline",
            "exception-hygiene",
        } <= set(all_rule_ids())

    def test_rules_filter_runs_only_named_rules(self):
        result = run_lint(
            [fixture_path("except_swallow.py")], rule_ids=["udf-purity"]
        )
        assert result.rule_ids == ["udf-purity"]
        assert result.findings == []  # the swallows are exception-hygiene

    def test_unknown_rule_id_raises(self):
        with pytest.raises(ValueError, match="no-such-rule"):
            run_lint(
                [fixture_path("except_ok.py")], rule_ids=["no-such-rule"]
            )


class TestBaseline:
    def test_round_trip_filters_recorded_findings(self, tmp_path):
        baseline = str(tmp_path / "baseline.json")
        first = run_lint(
            [fixture_path("except_swallow.py")],
            rule_ids=["exception-hygiene"],
        )
        assert first.findings
        count = write_baseline(baseline, first.findings)
        assert count == len({f.fingerprint() for f in first.findings})

        second = run_lint(
            [fixture_path("except_swallow.py")],
            rule_ids=["exception-hygiene"],
            baseline_path=baseline,
        )
        assert second.findings == []
        assert second.baselined == len(first.findings)
        assert second.exit_code == 0

    def test_baseline_survives_line_shifts(self, tmp_path):
        """Fingerprints are line-free: prepending a comment changes nothing."""
        original = open(
            fixture_path("except_swallow.py"), encoding="utf-8"
        ).read()
        v1 = tmp_path / "mod.py"
        v1.write_text(original, encoding="utf-8")
        baseline = str(tmp_path / "baseline.json")
        first = run_lint([str(v1)], rule_ids=["exception-hygiene"])
        write_baseline(baseline, first.findings)

        v1.write_text("# shifted\n# shifted\n" + original, encoding="utf-8")
        second = run_lint(
            [str(v1)], rule_ids=["exception-hygiene"], baseline_path=baseline
        )
        assert second.findings == []
        assert second.baselined == len(first.findings)

    def test_missing_baseline_raises(self, tmp_path):
        with pytest.raises(BaselineError):
            load_baseline(str(tmp_path / "nope.json"))

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]", encoding="utf-8")
        with pytest.raises(BaselineError):
            load_baseline(str(bad))


class TestParseFailures:
    def test_unparsable_file_becomes_a_finding(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def oops(:\n", encoding="utf-8")
        result = run_lint([str(broken)])
        assert [f.rule_id for f in result.findings] == ["parse-error"]
        assert result.exit_code == 1


class TestExitCodes:
    def test_clean_run_exits_zero(self):
        result = run_lint([fixture_path("udf_pure.py")])
        assert result.exit_code == 0
        assert result.summary()["errors"] == 0

    def test_findings_exit_one(self):
        result = run_lint(
            [fixture_path("lock_unsafe.py")], rule_ids=["lock-discipline"]
        )
        assert result.exit_code == 1
        assert result.summary()["findings"] == len(result.findings)


class TestStatementAnchoring:
    """Findings on continuation lines re-anchor to the statement start."""

    _SOURCE = (
        "import threading\n"
        "import time\n"
        "\n"
        "\n"
        "class Cache:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.value = None\n"
        "\n"
        "    def refresh(self):\n"
        "        with self._lock:\n"
        "            self.value = (\n"
        "                time.sleep(1))\n"
    )
    _STMT_LINE = 12  # "self.value = (" — where a pragma can live

    def test_finding_moves_to_statement_first_line(self, tmp_path):
        mod = tmp_path / "anchored.py"
        mod.write_text(self._SOURCE, encoding="utf-8")
        result = run_lint([str(mod)], rule_ids=["blocking-under-lock"])
        assert [f.line for f in result.findings] == [self._STMT_LINE]

    def test_pragma_on_statement_first_line_suppresses(self, tmp_path):
        lines = self._SOURCE.splitlines()
        lines[self._STMT_LINE - 1] += "  # repro: allow[blocking-under-lock]"
        mod = tmp_path / "anchored.py"
        mod.write_text("\n".join(lines) + "\n", encoding="utf-8")
        result = run_lint([str(mod)], rule_ids=["blocking-under-lock"])
        assert result.findings == []
        assert result.suppressed == 1


class TestBaselineRenameStability:
    def test_fingerprints_survive_file_rename(self, tmp_path):
        source = (tmp_path / "original.py")
        source.write_text(
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        pass\n",
            encoding="utf-8",
        )
        baseline = str(tmp_path / "baseline.json")
        first = run_lint([str(source)], rule_ids=["exception-hygiene"])
        assert first.findings
        write_baseline(baseline, first.findings)

        moved_dir = tmp_path / "pkg"
        moved_dir.mkdir()
        moved = moved_dir / "renamed.py"
        moved.write_text(source.read_text(encoding="utf-8"), encoding="utf-8")
        second = run_lint(
            [str(moved)],
            rule_ids=["exception-hygiene"],
            baseline_path=baseline,
        )
        assert second.findings == []
        assert second.baselined == len(first.findings)

    def test_version_1_baseline_is_rejected(self, tmp_path):
        import json

        legacy = tmp_path / "legacy.json"
        legacy.write_text(
            json.dumps({"version": 1, "fingerprints": []}), encoding="utf-8"
        )
        with pytest.raises(BaselineError, match="version-1"):
            load_baseline(str(legacy))


class TestChangedFiles:
    @staticmethod
    def _git(repo, *args):
        import subprocess

        subprocess.run(
            ["git", *args],
            cwd=repo,
            check=True,
            capture_output=True,
            env={
                "GIT_AUTHOR_NAME": "t",
                "GIT_AUTHOR_EMAIL": "t@t",
                "GIT_COMMITTER_NAME": "t",
                "GIT_COMMITTER_EMAIL": "t@t",
                "HOME": str(repo),
                "PATH": __import__("os").environ["PATH"],
            },
        )

    def _repo(self, tmp_path):
        repo = tmp_path / "repo"
        repo.mkdir()
        self._git(repo, "init", "-q")
        (repo / "tracked.py").write_text("x = 1\n", encoding="utf-8")
        (repo / "notes.txt").write_text("n\n", encoding="utf-8")
        self._git(repo, "add", ".")
        self._git(repo, "commit", "-qm", "seed")
        return repo

    def test_diff_plus_untracked_python_only(self, tmp_path):
        from repro.analysis import changed_python_files

        repo = self._repo(tmp_path)
        (repo / "tracked.py").write_text("x = 2\n", encoding="utf-8")
        (repo / "fresh.py").write_text("y = 1\n", encoding="utf-8")
        (repo / "notes.txt").write_text("changed\n", encoding="utf-8")
        changed = changed_python_files("HEAD", cwd=str(repo))
        names = sorted(p.rsplit("/", 1)[-1] for p in changed)
        assert names == ["fresh.py", "tracked.py"]
        import os

        assert all(os.path.isabs(p) for p in changed)

    def test_clean_tree_is_empty(self, tmp_path):
        from repro.analysis import changed_python_files

        repo = self._repo(tmp_path)
        assert changed_python_files("HEAD", cwd=str(repo)) == []

    def test_bad_ref_raises_value_error(self, tmp_path):
        from repro.analysis import changed_python_files

        repo = self._repo(tmp_path)
        with pytest.raises(ValueError, match="cannot compute changed files"):
            changed_python_files("no-such-ref", cwd=str(repo))
