"""Per-dataset durability facade and the data-directory owner.

Layout under ``data_dir``::

    data_dir/
      <dataset>/             # filesystem-safe encoding of the name
        wal.log              # framed mutation records (torn-tail tolerant)
        snapshot.bin         # framed checkpoint (atomic replace)
        name                 # the original dataset name, verbatim

A :class:`DatasetLog` is what a :class:`~repro.serving.store.SkylineStore`
writes through: ``log_register`` / ``log_insert`` / ``log_remove`` /
``log_bulk`` append WAL records *before* the mutation is acknowledged,
and :meth:`DatasetLog.maybe_checkpoint` turns the log over into a
snapshot once enough mutations accumulate.  Every one of those calls
must run under the owning store's lock — the ``wal-discipline`` rule in
``repro lint`` verifies the call sites — because the WAL's sequence
numbers and the store's generation counter must advance in lock-step for
recovery to reproduce generations exactly.

The :class:`DurabilityManager` owns the directory: it hands out dataset
logs, enumerates recoverable datasets for startup recovery, and closes
every log on shutdown.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable, Dict, List, Sequence

from repro.observability.events import get_events
from repro.observability.metrics import get_metrics
from repro.serving.durability.snapshot import write_snapshot
from repro.serving.durability.wal import FSYNC_POLICIES, WriteAheadLog

__all__ = ["DatasetLog", "DurabilityConfig", "DurabilityManager"]

#: Default mutation count between checkpoints.
DEFAULT_SNAPSHOT_EVERY = 256

WAL_FILENAME = "wal.log"
SNAPSHOT_FILENAME = "snapshot.bin"
NAME_FILENAME = "name"

_SAFE_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


def encode_dataset_dir(name: str) -> str:
    """A filesystem-safe directory name for a dataset (percent-escaped)."""
    out = []
    for ch in name:
        if ch in _SAFE_CHARS and ch != "%":
            out.append(ch)
        else:
            out.append("".join(f"%{b:02x}" for b in ch.encode("utf-8")))
    encoded = "".join(out)
    # An all-escaped or empty name still needs a non-empty directory.
    return encoded or "%00"


class DurabilityConfig:
    """Validated knobs for the durability plane."""

    def __init__(
        self,
        data_dir: str,
        *,
        fsync: str = "interval",
        fsync_interval: int = 8,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
    ):
        if not data_dir:
            raise ValueError("data_dir must be a non-empty path")
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if fsync_interval < 1:
            raise ValueError(f"fsync_interval must be >= 1, got {fsync_interval}")
        if snapshot_every < 1:
            raise ValueError(f"snapshot_every must be >= 1, got {snapshot_every}")
        self.data_dir = data_dir
        self.fsync = fsync
        self.fsync_interval = fsync_interval
        self.snapshot_every = snapshot_every

    def describe(self) -> Dict[str, Any]:
        return {
            "data_dir": self.data_dir,
            "fsync": self.fsync,
            "fsync_interval": self.fsync_interval,
            "snapshot_every": self.snapshot_every,
        }


class DatasetLog:
    """WAL + snapshot pair for one dataset.

    Method names are deliberately distinctive (``log_*``, ``append_record``,
    ``checkpoint``, ``maybe_checkpoint``, ``truncate``): the
    ``wal-discipline`` lint rule recognises them at call sites and
    verifies each runs under the owning store's lock.
    """

    def __init__(self, directory: str, name: str, config: DurabilityConfig):
        self.name = name
        self.directory = directory
        self.config = config
        os.makedirs(directory, exist_ok=True)
        name_path = os.path.join(directory, NAME_FILENAME)
        if not os.path.exists(name_path):
            with open(name_path, "w", encoding="utf-8") as fh:
                fh.write(name)
        self.wal_path = os.path.join(directory, WAL_FILENAME)
        self.snapshot_path = os.path.join(directory, SNAPSHOT_FILENAME)
        self.wal = WriteAheadLog(
            self.wal_path,
            fsync=config.fsync,
            fsync_interval=config.fsync_interval,
        )
        self._since_checkpoint = 0

    # -- mutation records (call sites must hold the owning store's lock) --------

    def log_register(self, store_config: Dict[str, Any]) -> int:
        """Record a (re-)registration: fresh store, construction config."""
        return self.append_record({"op": "register", "config": store_config})

    def log_insert(self, row: Sequence[float]) -> int:
        return self.append_record({"op": "insert", "row": [float(v) for v in row]})

    def log_remove(self, point_id: int) -> int:
        return self.append_record({"op": "remove", "id": int(point_id)})

    def log_bulk(self, rows: Sequence[Sequence[float]]) -> int:
        return self.append_record(
            {"op": "bulk", "rows": [[float(v) for v in row] for row in rows]}
        )

    def append_record(self, payload: Dict[str, Any]) -> int:
        seq = self.wal.append_record(payload)
        self._since_checkpoint += 1
        return seq

    # -- checkpointing ----------------------------------------------------------

    def maybe_checkpoint(self, state_fn: Callable[[], Dict[str, Any]]) -> bool:
        """Checkpoint if ``snapshot_every`` mutations accumulated since the
        last one; returns whether a snapshot was written.

        Takes a zero-arg callable rather than the state itself: building
        the snapshot payload copies the whole membership, which would be
        wasted work on the (vastly more common) no-checkpoint path.
        """
        if self._since_checkpoint < self.config.snapshot_every:
            return False
        self.checkpoint(state_fn())
        return True

    def checkpoint(self, state: Dict[str, Any]) -> int:
        """Persist ``state`` as the new snapshot, then truncate the WAL.

        Ordering is the whole point: the WAL frames are only dropped
        *after* the snapshot replace has been fsynced, so a crash at any
        instant leaves either (old snapshot + full WAL) or (new snapshot
        + empty WAL) — both recoverable.  The snapshot stamps
        ``wal_seq`` = last assigned sequence number, so replay after a
        pre-truncate crash skips frames the snapshot already covers.
        """
        payload = {**state, "wal_seq": self.wal.next_seq - 1}
        size = write_snapshot(self.snapshot_path, payload)
        self.wal.truncate()
        self._since_checkpoint = 0
        metrics = get_metrics()
        metrics.counter("wal.checkpoints").inc()
        metrics.gauge("durability.snapshot_bytes").set(size)
        get_events().emit(
            "durability.checkpoint",
            dataset=self.name,
            generation=state.get("generation"),
            members=len(state.get("ids", [])),
            snapshot_bytes=size,
            wal_seq=payload["wal_seq"],
        )
        return size

    # -- lifecycle --------------------------------------------------------------

    def sync(self) -> None:
        self.wal.sync()

    def close(self) -> None:
        self.wal.close()


class DurabilityManager:
    """Owns one data directory; hands out per-dataset logs."""

    def __init__(self, config: DurabilityConfig):
        self.config = config
        os.makedirs(config.data_dir, exist_ok=True)
        self._lock = threading.Lock()
        self._logs: Dict[str, DatasetLog] = {}

    def dataset_log(self, name: str) -> DatasetLog:
        """The (cached) log for ``name``, creating its directory on first use."""
        with self._lock:
            log = self._logs.get(name)
            if log is None:
                directory = os.path.join(self.config.data_dir, encode_dataset_dir(name))
                log = DatasetLog(directory, name, self.config)
                self._logs[name] = log
            return log

    def dataset_names(self) -> List[str]:
        """Every dataset with on-disk state, by recorded (verbatim) name."""
        names = []
        try:
            entries = sorted(os.listdir(self.config.data_dir))
        except FileNotFoundError:
            return []
        for entry in entries:
            directory = os.path.join(self.config.data_dir, entry)
            if not os.path.isdir(directory):
                continue
            has_state = os.path.exists(
                os.path.join(directory, WAL_FILENAME)
            ) or os.path.exists(os.path.join(directory, SNAPSHOT_FILENAME))
            if not has_state:
                continue
            name_path = os.path.join(directory, NAME_FILENAME)
            try:
                names.append(open(name_path, encoding="utf-8").read())
            except FileNotFoundError:
                names.append(entry)
        return names

    def sync(self) -> None:
        """Flush every open WAL (the signal-exit path calls this)."""
        with self._lock:
            logs = list(self._logs.values())
        for log in logs:
            log.sync()

    def close(self) -> None:
        with self._lock:
            logs = list(self._logs.values())
            self._logs.clear()
        for log in logs:
            log.close()
