"""Additional runner coverage: multiprocessing edge cases and chains."""

import numpy as np
import pytest

from repro.mapreduce import (
    Job,
    JobChain,
    JobConf,
    Mapper,
    MultiprocessRunner,
    Reducer,
    SerialRunner,
    run_job,
)
from repro.mapreduce.fs import BlockFileSystem
from repro.mapreduce.inputs import TextInputFormat


class TokenMapper(Mapper):
    def map(self, key, value, ctx):
        for word in value.split():
            ctx.emit(word, 1)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


WORDS = [(None, f"w{i % 7} w{i % 3} w{i % 11}") for i in range(60)]


class CountParityMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(value % 2, 1)


class BlockMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(int(value.sum()) % 2, value)


class StackReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, float(np.vstack(list(values)).sum()))


class TestMultiprocessMore:
    def test_with_combiner(self):
        job = Job(
            name="wc",
            mapper=TokenMapper,
            reducer=SumReducer,
            combiner=SumReducer,
            conf=JobConf(num_reducers=3, num_map_tasks=4),
        )
        serial = SerialRunner().run(job, records=WORDS)
        mp = MultiprocessRunner(num_workers=3).run(job, records=WORDS)
        assert dict(mp.output_pairs()) == dict(serial.output_pairs())

    def test_more_workers_than_tasks(self):
        job = Job(
            name="wc",
            mapper=TokenMapper,
            reducer=SumReducer,
            conf=JobConf(num_reducers=1, num_map_tasks=1),
        )
        result = MultiprocessRunner(num_workers=8).run(job, records=WORDS)
        assert sum(result.output_values()) == 180

    def test_chain(self):
        # Mapper/reducer classes must be module-level for the process pool.
        stages = [
            lambda records: Job(
                name="wc",
                mapper=TokenMapper,
                reducer=SumReducer,
                conf=JobConf(num_reducers=2, num_map_tasks=2),
            ),
            lambda records: Job(
                name="parity",
                mapper=CountParityMapper,
                reducer=SumReducer,
                conf=JobConf(num_reducers=1),
            ),
        ]
        serial = SerialRunner().run_chain(JobChain("c", stages), WORDS)
        mp = MultiprocessRunner(num_workers=2).run_chain(JobChain("c", stages), WORDS)
        assert dict(mp.final.output_pairs()) == dict(serial.final.output_pairs())

    def test_file_input(self):
        fs = BlockFileSystem(block_size=64)
        fs.write_text("/in.txt", "\n".join(v for _, v in WORDS))
        job = Job(
            name="wc",
            mapper=TokenMapper,
            reducer=SumReducer,
            conf=JobConf(num_reducers=2),
        )
        serial = run_job(job, input_format=TextInputFormat(fs, "/in.txt"))
        mp = MultiprocessRunner(num_workers=2).run(
            job, input_format=TextInputFormat(fs, "/in.txt")
        )
        assert dict(mp.output_pairs()) == dict(serial.output_pairs())

    def test_numpy_blocks_cross_process(self):
        records = [
            (i, np.full((4, 3), float(i))) for i in range(10)
        ]
        job = Job(
            name="blocks",
            mapper=BlockMapper,
            reducer=StackReducer,
            conf=JobConf(num_reducers=2, num_map_tasks=3),
        )
        serial = run_job(job, records=records)
        mp = MultiprocessRunner(num_workers=2).run(job, records=records)
        assert dict(mp.output_pairs()) == dict(serial.output_pairs())


class TestStatsUnderMultiprocessing:
    def test_task_stats_complete(self):
        job = Job(
            name="wc",
            mapper=TokenMapper,
            reducer=SumReducer,
            conf=JobConf(num_reducers=3, num_map_tasks=5),
        )
        result = MultiprocessRunner(num_workers=2).run(job, records=WORDS)
        assert len(result.map_stats) == 5
        assert len(result.reduce_stats) == 3
        assert result.map_stats.records_in == len(WORDS)
        assert result.counters.value("framework", "map_input_records") == len(WORDS)
