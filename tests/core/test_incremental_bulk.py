"""Batch seeding and bulk mutation of IncrementalSkyline, plus the
remove-invalidation regression the serving layer depends on."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.incremental import IncrementalSkyline
from repro.core.mr_skyline import run_mr_skyline
from repro.core.partitioning import AngularPartitioner, make_partitioner
from repro.core.skyline import skyline_numpy


def _fitted_partitioner(partitions=4, d=2, scale=10.0):
    seed = np.vstack([np.full(d, 0.01), np.full(d, scale)])
    return AngularPartitioner(partitions, bins="equal-width").fit(seed)


def _points(n=200, d=3, seed=0):
    return np.random.default_rng(seed).random((n, d)) + 0.01


class TestFromBatch:
    def test_seeded_from_mr_result_matches_from_scratch(self):
        pts = _points()
        partitioner = make_partitioner("angle", 6)
        result = run_mr_skyline(pts, partitioner=partitioner, num_workers=2)
        sky = IncrementalSkyline.from_batch(
            partitioner, pts, result.partition_ids, result.local_skylines
        )
        assert len(sky) == 200
        assert sky.global_skyline() == skyline_numpy(pts).tolist()

    def test_seeded_structure_stays_mutable(self):
        pts = _points(100)
        partitioner = make_partitioner("angle", 4)
        result = run_mr_skyline(pts, partitioner=partitioner, num_workers=2)
        sky = IncrementalSkyline.from_batch(
            partitioner, pts, result.partition_ids, result.local_skylines
        )
        new_id = sky.insert(np.full(3, 0.001))
        assert new_id == 100  # ids continue after the batch
        assert sky.global_skyline() == [new_id]
        sky.remove(new_id)
        assert sky.global_skyline() == skyline_numpy(pts).tolist()

    def test_partition_ids_shape_validated(self):
        pts = _points(10, 2)
        partitioner = _fitted_partitioner()
        with pytest.raises(ValueError, match="partition_ids"):
            IncrementalSkyline.from_batch(
                partitioner, pts, np.zeros(9, dtype=int), {}
            )

    def test_unfitted_partitioner_rejected(self):
        pts = _points(10, 2)
        with pytest.raises(ValueError, match="fitted"):
            IncrementalSkyline.from_batch(
                AngularPartitioner(4), pts, np.zeros(10, dtype=int), {}
            )

    def test_stray_local_skyline_ids_rejected(self):
        pts = _points(10, 2)
        partitioner = _fitted_partitioner()
        assigned = partitioner.assign(pts)
        empty_pid = int(max(assigned)) + 1  # a partition with no members
        bogus = {empty_pid: np.array([0])}
        with pytest.raises(ValueError, match="non-member"):
            IncrementalSkyline.from_batch(partitioner, pts, assigned, bogus)


class TestBulkLoad:
    def test_matches_repeated_insert(self):
        pts = _points(150, 3, seed=4)
        serial = IncrementalSkyline(_fitted_partitioner(d=3))
        batched = IncrementalSkyline(_fitted_partitioner(d=3))
        for row in pts:
            serial.insert(row)
        ids = batched.bulk_load(pts)
        assert ids == list(range(150))
        assert batched.global_skyline() == serial.global_skyline()

    def test_bulk_onto_existing_members(self):
        first, second = _points(80, 2, seed=1)[:, :2], _points(80, 2, seed=2)[:, :2]
        sky = IncrementalSkyline(_fitted_partitioner())
        sky.bulk_load(first)
        sky.bulk_load(second)
        both = np.vstack([first, second])
        assert sky.global_skyline() == skyline_numpy(both).tolist()

    def test_empty_batch_is_a_no_op(self):
        sky = IncrementalSkyline(_fitted_partitioner())
        assert sky.bulk_load(np.empty((0, 2))) == []
        assert len(sky) == 0


class TestRemoveInvalidation:
    """Removing a member must invalidate the lazy global cache — even a
    member that was never on its partition's local skyline.

    The old skip was provably answer-preserving (dominance transitivity),
    but the serving layer treats the cached array as derived from the
    current membership; these tests pin the stronger invariant.
    """

    def test_cache_dropped_for_non_skyline_member(self):
        sky = IncrementalSkyline(_fitted_partitioner())
        keeper = sky.insert([1.0, 1.0])
        victim = sky.insert([2.0, 2.0])  # dominated: member, never skyline
        assert sky.global_skyline() == [keeper]
        assert sky._global_cache is not None  # lazy merge is now cached
        sky.remove(victim)
        assert sky._global_cache is None, (
            "remove() must invalidate the cache unconditionally"
        )
        assert sky.global_skyline() == [keeper]

    def test_answers_stay_correct_across_non_skyline_removals(self):
        rng = np.random.default_rng(11)
        pts = rng.random((120, 3)) + 0.01
        sky = IncrementalSkyline(_fitted_partitioner(d=3), initial_points=pts)
        model = {i: pts[i] for i in range(120)}
        for _ in range(60):
            current = set(sky.global_skyline())
            off_skyline = [i for i in model if i not in current]
            pool = off_skyline if (off_skyline and rng.random() < 0.7) else list(model)
            victim = int(pool[rng.integers(len(pool))])
            sky.remove(victim)
            del model[victim]
            ids = sorted(model)
            expected = (
                sorted(ids[j] for j in skyline_numpy(np.vstack(
                    [model[i] for i in ids]
                )))
                if ids else []
            )
            assert sky.global_skyline() == expected


coords2 = st.tuples(
    st.floats(0.01, 10.0, allow_nan=False),
    st.floats(0.01, 10.0, allow_nan=False),
)


@settings(max_examples=30, deadline=None)
@given(
    batches=st.lists(
        st.lists(coords2, min_size=0, max_size=12), min_size=1, max_size=4
    )
)
def test_bulk_load_property_matches_bruteforce(batches):
    sky = IncrementalSkyline(_fitted_partitioner())
    model = []
    for batch in batches:
        sky.bulk_load(np.array(batch, dtype=float).reshape(len(batch), 2))
        model.extend(batch)
        if not model:
            assert sky.global_skyline() == []
            continue
        rows = np.array(model, dtype=float)
        assert sky.global_skyline() == sorted(
            int(i) for i in skyline_numpy(rows)
        )
