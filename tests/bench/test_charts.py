"""Tests for the ASCII chart renderers."""

import pytest

from repro.bench.charts import line_chart, stacked_bars


class TestLineChart:
    def test_basic_structure(self):
        out = line_chart(
            [2, 4, 6],
            {"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]},
            title="demo",
            width=32,
            height=8,
        )
        lines = out.splitlines()
        assert lines[0] == "demo"
        rows = [l for l in lines if "|" in l]
        assert len(rows) == 8
        assert "o=a" in out and "x=b" in out

    def test_glyphs_plotted(self):
        out = line_chart([0, 1], {"s": [0.0, 10.0]}, width=20, height=6)
        assert out.count("o") >= 2 + 1  # two points + legend

    def test_max_point_on_top_row(self):
        out = line_chart([0, 1, 2], {"s": [1.0, 5.0, 10.0]}, width=20, height=5)
        rows = [l for l in out.splitlines() if "|" in l]
        assert "o" in rows[0]  # y max
        assert "10" in rows[0]

    def test_zero_series_ok(self):
        out = line_chart([0, 1], {"flat": [0.0, 0.0]}, width=20, height=5)
        rows = [l for l in out.splitlines() if "|" in l]
        assert "o" in rows[-1]  # plotted on the zero row

    def test_y_label(self):
        out = line_chart([0], {"s": [1.0]}, y_label="seconds")
        assert "(y: seconds)" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart([0], {}, width=20)
        with pytest.raises(ValueError):
            line_chart([], {"s": []})
        with pytest.raises(ValueError):
            line_chart([0, 1], {"s": [1.0]})
        with pytest.raises(ValueError):
            line_chart([0], {"s": [1.0]}, width=4)

    def test_too_many_series(self):
        series = {f"s{i}": [1.0] for i in range(9)}
        with pytest.raises(ValueError, match="at most"):
            line_chart([0], series)


class TestStackedBars:
    def test_basic_structure(self):
        out = stacked_bars(
            [4, 8],
            {"map": [2.0, 1.0], "reduce": [6.0, 3.0]},
            title="fig6",
            width=20,
        )
        lines = out.splitlines()
        assert lines[0] == "fig6"
        assert "#" in out and "=" in out
        assert "#=map" in out and "==reduce" in out

    def test_totals_annotated(self):
        out = stacked_bars([1], {"a": [3.0], "b": [4.0]}, width=14)
        assert "7.0" in out

    def test_longest_bar_fills_width(self):
        out = stacked_bars([1, 2], {"a": [10.0, 5.0]}, width=20)
        rows = [l for l in out.splitlines() if "|" in l]
        first_bar = rows[0].split("|")[1]
        assert first_bar.count("#") == 20

    def test_segment_proportions(self):
        out = stacked_bars([1], {"a": [5.0], "b": [5.0]}, width=20)
        bar = out.splitlines()[0].split("|")[1]
        assert bar.count("#") == bar.count("=") == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            stacked_bars([1], {}, width=20)
        with pytest.raises(ValueError):
            stacked_bars([1], {"a": [1.0, 2.0]})
        with pytest.raises(ValueError):
            stacked_bars([1], {"a": [-1.0]})
        with pytest.raises(ValueError):
            stacked_bars([1], {"a": [1.0]}, width=4)


class TestCliChartFlag:
    def test_fig5_chart_appended(self, capsys):
        from repro.cli import main

        assert main(["fig5a", "--quick", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "o=MR-Dim" in out

    def test_fig6_chart_appended(self, capsys):
        from repro.cli import main

        assert main(["fig6", "--quick", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "#=map" in out

    def test_theory_has_no_chart(self, capsys):
        from repro.cli import main

        assert main(["theory", "--quick", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "o=" not in out
