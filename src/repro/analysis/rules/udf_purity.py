"""udf-purity: map/combine/reduce callables must be deterministic and
side-effect-free.

The executor refactor made three backends (serial / threads / processes) and
two shuffle modes (streaming / batch) interchangeable **only if** user map,
combine, and reduce code is a pure function of its inputs: a UDF that reads
a clock, draws randomness, performs I/O, or mutates process-global state
produces different results per backend (combiners may run a different
number of times per spill schedule; process workers see *copies* of
globals), silently breaking the differential parity the test suite asserts.

Flagged inside UDF class bodies (see ``rules/_udf.py`` for how UDF classes
are discovered):

* calls into nondeterminism: ``random.*``, ``np.random.*``, ``time.*``
  clocks/sleep, ``datetime.now``-family, ``uuid.uuid1/uuid4``,
  ``os.urandom``, ``os.getpid``;
* I/O: ``open``/``print``/``input``, ``subprocess.*``, mutating ``os.*``
  filesystem calls, ``sys.stdout``/``sys.stderr`` writes;
* ``global`` / ``nonlocal`` statements, and mutation of module-level
  objects (``STATE.append(...)``, ``CACHE[k] = v``, ...);
* calls reaching process-global observability state (``get_metrics`` /
  ``get_tracer`` / ``set_metrics`` / ``enable_tracing``): process workers
  mutate a *copy* of the registry that never reaches the driver.

Suppress a deliberate exception with ``# repro: allow[udf-purity]`` — e.g.
best-effort metrics in a reducer — and say why in the comment.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.base import Rule, register
from repro.analysis.findings import Finding
from repro.analysis.project import Module, Project, dotted_name
from repro.analysis.rules._udf import udf_classes

#: Exact dotted-call denylist -> reason fragment.
_BANNED_CALLS = {
    "time.time": "reads the wall clock",
    "time.time_ns": "reads the wall clock",
    "time.monotonic": "reads a clock",
    "time.monotonic_ns": "reads a clock",
    "time.perf_counter": "reads a clock",
    "time.perf_counter_ns": "reads a clock",
    "time.process_time": "reads a clock",
    "time.process_time_ns": "reads a clock",
    "time.sleep": "sleeps (timing side effect)",
    "datetime.now": "reads the wall clock",
    "datetime.utcnow": "reads the wall clock",
    "datetime.today": "reads the wall clock",
    "datetime.datetime.now": "reads the wall clock",
    "datetime.datetime.utcnow": "reads the wall clock",
    "datetime.date.today": "reads the wall clock",
    "date.today": "reads the wall clock",
    "uuid.uuid1": "is nondeterministic",
    "uuid.uuid4": "is nondeterministic",
    "os.urandom": "is nondeterministic",
    "os.getpid": "differs per worker process",
    "open": "performs file I/O",
    "print": "writes to stdout",
    "input": "reads stdin",
    "os.remove": "mutates the filesystem",
    "os.unlink": "mutates the filesystem",
    "os.rename": "mutates the filesystem",
    "os.makedirs": "mutates the filesystem",
    "os.mkdir": "mutates the filesystem",
    "os.rmdir": "mutates the filesystem",
    "os.system": "spawns a process",
    "os.popen": "spawns a process",
    "sys.stdout.write": "writes to stdout",
    "sys.stderr.write": "writes to stderr",
}

#: Any call rooted at one of these modules is banned outright.
_BANNED_ROOTS = {"random": "draws randomness", "subprocess": "spawns a process"}

#: ``np.random.*`` / ``numpy.random.*``.
_NUMPY_ALIASES = {"np", "numpy"}

#: Calls that reach the process-global observability singletons.
_GLOBAL_STATE_CALLS = {"get_metrics", "get_tracer", "set_metrics", "enable_tracing"}

#: Container methods that mutate their receiver in place.
_MUTATORS = {
    "append",
    "add",
    "update",
    "extend",
    "insert",
    "remove",
    "discard",
    "clear",
    "pop",
    "popitem",
    "setdefault",
}


@register
class UdfPurityRule(Rule):
    """UDFs must not read clocks/randomness, do I/O, or mutate global state."""

    id = "udf-purity"

    def check(self, project: Project) -> Iterator[Finding]:
        for (_, _), (module, classdef) in sorted(
            udf_classes(project).items(), key=lambda kv: (kv[1][0].path, kv[1][1].lineno)
        ):
            yield from self._check_class(module, classdef)

    def _check_class(
        self, module: Module, classdef: ast.ClassDef
    ) -> Iterator[Finding]:
        module_globals = {
            name
            for name, binding in module.bindings.items()
            if binding.kind == "def"
        }
        for method in classdef.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            where = f"{classdef.name}.{method.name}"
            for node in ast.walk(method):
                yield from self._check_node(
                    module, node, where, module_globals
                )

    def _check_node(
        self,
        module: Module,
        node: ast.AST,
        where: str,
        module_globals: Set[str],
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            kind = "global" if isinstance(node, ast.Global) else "nonlocal"
            names = ", ".join(node.names)
            yield self.finding(
                module,
                node,
                f"UDF {where} declares `{kind} {names}`: map/combine/reduce "
                "callables must not mutate enclosing state (breaks "
                "executor and streaming/batch parity)",
            )
            return
        if isinstance(node, ast.Call):
            yield from self._check_call(module, node, where, module_globals)
            return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                root = _subscript_root(target)
                if root is not None and root in module_globals:
                    yield self.finding(
                        module,
                        node,
                        f"UDF {where} writes module-level {root!r}: UDF "
                        "state must live on the task instance (globals "
                        "diverge across process workers)",
                    )

    def _check_call(
        self,
        module: Module,
        call: ast.Call,
        where: str,
        module_globals: Set[str],
    ) -> Iterator[Finding]:
        name = dotted_name(call.func)
        if not name:
            return
        parts = name.split(".")
        reason = _BANNED_CALLS.get(name)
        if reason is None and parts[0] in _BANNED_ROOTS:
            reason = _BANNED_ROOTS[parts[0]]
        if (
            reason is None
            and len(parts) >= 2
            and parts[0] in _NUMPY_ALIASES
            and parts[1] == "random"
        ):
            reason = "draws randomness"
        if reason is not None:
            yield self.finding(
                module,
                call,
                f"UDF {where} calls {name}() which {reason}: map/combine/"
                "reduce callables must be deterministic and side-effect-free",
            )
            return
        if parts[-1] in _GLOBAL_STATE_CALLS:
            yield self.finding(
                module,
                call,
                f"UDF {where} calls {name}() reaching process-global "
                "observability state: under the process executor workers "
                "mutate a copy the driver never sees",
            )
            return
        # STATE.append(...) on a module-level object.
        if (
            len(parts) >= 2
            and parts[-1] in _MUTATORS
            and parts[0] in module_globals
        ):
            yield self.finding(
                module,
                call,
                f"UDF {where} mutates module-level {parts[0]!r} via "
                f".{parts[-1]}(): UDF state must live on the task instance",
            )


def _subscript_root(target: ast.AST) -> str | None:
    """Root name of ``NAME[...]...`` assignment targets; None otherwise."""
    node: ast.AST = target
    seen_subscript = False
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        seen_subscript = seen_subscript or isinstance(node, ast.Subscript)
        node = node.value
    if seen_subscript and isinstance(node, ast.Name):
        return node.id
    return None
