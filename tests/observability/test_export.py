"""Exposition-format parity: sanitization, ordering, deltas, JSON safety."""

import json
import math

import pytest

from repro.observability.export import (
    DeltaSnapshotter,
    json_snapshot,
    render_prometheus,
    sanitize_metric_name,
    snapshot_delta,
)
from repro.observability.metrics import MetricsRegistry


def _loaded_registry():
    reg = MetricsRegistry()
    reg.counter("serve.requests").inc(7)
    reg.counter("task.map.retries").inc(2)
    reg.gauge("partition.skew.qws.max_min_ratio").set(3.5)
    hist = reg.histogram("serve.latency_s", (0.01, 0.1, 1.0))
    for value in (0.005, 0.05, 0.5, 5.0):
        hist.observe(value)
    return reg


class TestSanitize:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("serve.cache.hits") == "serve_cache_hits"

    def test_prefix_applied_before_sanitizing(self):
        name = sanitize_metric_name("serve.latency_s", prefix="repro_")
        assert name == "repro_serve_latency_s"

    def test_illegal_characters_collapse(self):
        assert sanitize_metric_name("a b!!c--d") == "a_b_c_d"

    def test_leading_digit_escaped(self):
        assert sanitize_metric_name("5xx.count")[0] == "_"

    def test_empty_name_falls_back(self):
        assert sanitize_metric_name("...") == "metric"

    def test_registry_names_stay_collision_free(self):
        # Every metric name the engine/serving layers emit must stay
        # distinct after sanitization — the exposition would silently
        # merge series otherwise.
        names = [
            "serve.requests", "serve.cache.hits", "serve.cache.misses",
            "serve.latency_s", "task.map.retries", "task.reduce.retries",
            "partition.max_min_ratio", "partition.skew.qws.max_min_ratio",
            "framework.map_records", "executor.suspect_workers",
        ]
        sanitized = [sanitize_metric_name(n) for n in names]
        assert len(set(sanitized)) == len(names)


class TestPrometheus:
    def test_counter_gauge_histogram_series(self):
        text = render_prometheus(_loaded_registry())
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_serve_requests_total 7" in text
        assert "repro_partition_skew_qws_max_min_ratio 3.5" in text
        assert '# TYPE repro_serve_latency_s histogram' in text

    def test_histogram_buckets_cumulative_and_terminated(self):
        text = render_prometheus(_loaded_registry())
        lines = [line for line in text.splitlines() if "_bucket" in line]
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert lines[-1].startswith('repro_serve_latency_s_bucket{le="+Inf"}')
        assert counts[-1] == 4  # +Inf bucket equals total count
        assert "repro_serve_latency_s_sum" in text
        assert "repro_serve_latency_s_count 4" in text

    def test_output_is_deterministic(self):
        reg = _loaded_registry()
        assert render_prometheus(reg) == render_prometheus(reg)

    def test_output_sorted_by_name_within_type(self):
        reg = MetricsRegistry()
        reg.counter("zz").inc()
        reg.counter("aa").inc()
        text = render_prometheus(reg)
        assert text.index("repro_aa_total") < text.index("repro_zz_total")

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestJsonSnapshot:
    def test_round_trips_strict_json(self):
        snap = json_snapshot(_loaded_registry())
        text = json.dumps(snap, allow_nan=False)  # would raise on Infinity
        assert json.loads(text) == snap

    def test_empty_histogram_is_json_safe(self):
        reg = MetricsRegistry()
        reg.histogram("h", (1.0,))
        snap = json_snapshot(reg)["histograms"]["h"]
        assert snap["min"] == snap["max"] == 0.0
        assert snap["sum"] == 0.0 and snap["count"] == 0

    def test_infinite_observation_is_json_safe(self):
        reg = MetricsRegistry()
        reg.histogram("h", (1.0,)).observe(math.inf)
        snap = json_snapshot(reg)["histograms"]["h"]
        for key in ("sum", "mean", "min", "max", "p50", "p90", "p99"):
            assert math.isfinite(snap[key]), key

    def test_histogram_sum_is_raw_total(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", (1.0, 10.0))
        hist.observe(0.5)
        hist.observe(2.5)
        snap = reg.snapshot()["histograms"]["h"]
        assert snap["sum"] == pytest.approx(3.0)
        assert snap["mean"] == pytest.approx(1.5)


class TestDelta:
    def test_first_delta_equals_totals(self):
        reg = _loaded_registry()
        delta = snapshot_delta(None, reg.snapshot())
        assert delta["counters"]["serve.requests"] == 7
        assert delta["histograms"]["serve.latency_s"]["count"] == 4

    def test_counter_monotonicity_across_polls(self):
        reg = _loaded_registry()
        poller = DeltaSnapshotter(reg)
        poller.delta()  # baseline
        reg.counter("serve.requests").inc(3)
        reg.histogram("serve.latency_s").observe(0.02)
        delta = poller.delta()
        assert delta["counters"]["serve.requests"] == 3
        assert delta["counters"]["task.map.retries"] == 0
        assert delta["histograms"]["serve.latency_s"]["count"] == 1
        assert delta["histograms"]["serve.latency_s"]["sum"] == pytest.approx(0.02)

    def test_reset_clamps_to_zero_not_negative(self):
        reg = _loaded_registry()
        poller = DeltaSnapshotter(reg)
        poller.delta()
        reg.reset()
        reg.counter("serve.requests").inc(1)
        delta = poller.delta()
        assert delta["counters"]["serve.requests"] == 0  # shrank: clamped

    def test_gauges_pass_through_as_values(self):
        reg = _loaded_registry()
        prev = reg.snapshot()
        reg.gauge("partition.skew.qws.max_min_ratio").set(9.0)
        delta = snapshot_delta(prev, reg.snapshot())
        assert delta["gauges"]["partition.skew.qws.max_min_ratio"] == 9.0
