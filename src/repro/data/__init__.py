"""Synthetic data generation and persistence.

* :mod:`repro.data.generators` — the Börzsönyi benchmark workloads + clustered
* :mod:`repro.data.distributions` — copula/marginal sampling machinery
* :mod:`repro.data.io` — CSV / NPZ dataset round-trips
"""

from repro.data.distributions import (
    empirical_quantile,
    gaussian_copula_uniforms,
    nearest_correlation,
    sample_with_marginals,
    truncated_normal,
)
from repro.data.generators import anticorrelated, correlated, generate, independent
from repro.data.io import load_csv, load_npz, save_csv, save_npz

__all__ = [
    "anticorrelated",
    "correlated",
    "empirical_quantile",
    "gaussian_copula_uniforms",
    "generate",
    "independent",
    "load_csv",
    "load_npz",
    "nearest_correlation",
    "sample_with_marginals",
    "save_csv",
    "save_npz",
    "truncated_normal",
]
