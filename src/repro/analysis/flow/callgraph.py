"""Whole-program call graph with a best-effort type lattice.

Resolution strategies, in the order the lock rules need them:

* ``self.m(...)`` — method lookup through the class hierarchy (bases
  resolved through the import graph, cycle-safe, bounded depth);
* ``name(...)`` / ``mod.name(...)`` — the project resolver; a resolved
  ``class`` call targets its ``__init__``;
* ``expr.m(...)`` — the receiver's type is inferred from constructor
  assignments (``x = ClassName(...)``), parameter / attribute / variable
  annotations (``Dict[str, Store]`` container *value* types included),
  return annotations of resolved callees (so ``get_metrics().gauge(n)``
  chains), and transparent wrappers (``sorted`` / ``list`` / ``tuple`` /
  ``reversed``);
* property *reads* on typed receivers resolve to the getter, and
  ``len(x)`` / ``x in y`` resolve to ``__len__`` / ``__contains__`` —
  lock-holding dunders are exactly how the serving store publishes its
  size;
* **callbacks**: a bound method passed as an argument is tracked to the
  parameter it binds, through one-level parameter pass-through, into
  ``self.attr = param`` stores — so ``registry.watch(p, t, self._on_x)``
  makes ``ThresholdWatch.observe``'s ``self.callback(...)`` resolve to
  ``_on_x``.  Deferred callbacks are how the observability plane wires
  itself together; without this the lock graph would miss its real edges.

Anything unresolvable resolves to nothing: no guess, no edge, no finding.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.project import Module, Project, dotted_name

__all__ = ["CallGraph", "ClassInfo", "FunctionInfo", "ResolvedCall", "TypeRef"]

#: Class-hierarchy walks are bounded (cycle-safe belt and braces).
_MAX_MRO = 12

#: Calls that return their first argument's element type unchanged.
_TRANSPARENT_WRAPPERS = {"sorted", "list", "tuple", "reversed", "iter"}

#: Container generics whose subscript carries an element type at index -1
#: (``Dict[K, V]`` iteration yields keys, but ``.items()``/values() and the
#: common ``for _, v in x.items()`` unpack want the *value* type).
_CONTAINER_GENERICS = {
    "list",
    "List",
    "set",
    "Set",
    "frozenset",
    "FrozenSet",
    "tuple",
    "Tuple",
    "Sequence",
    "Iterable",
    "Iterator",
    "Deque",
    "deque",
    "dict",
    "Dict",
    "Mapping",
    "MutableMapping",
}

#: Thread/executor hand-off points: a callable argument here runs on
#: another thread — locks held at the call site are NOT held there, and
#: mutable state reachable from the callable has escaped this thread.
ASYNC_SINK_ATTRS = {"submit", "start_new_thread", "run_in_executor"}
ASYNC_SINK_NAMES = {"Thread", "Timer", "start_new_thread"}


@dataclass(frozen=True)
class TypeRef:
    """A resolved type: a project class, optionally a container of one."""

    cls: Optional[str] = None  # class qualname ("module.Class")
    elem: Optional["TypeRef"] = None  # element/value type for containers

    @property
    def is_container(self) -> bool:
        return self.elem is not None


@dataclass
class FunctionInfo:
    """One indexed function or method."""

    qualname: str
    module: Module
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_info: Optional["ClassInfo"] = None
    #: Parameter names, positional order (no self).
    params: List[str] = field(default_factory=list)
    #: Parameters invoked directly in the body (``param(...)``).
    called_params: Set[str] = field(default_factory=set)
    #: Concrete callbacks known to flow into each parameter.
    param_callbacks: Dict[str, Set[str]] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class ClassInfo:
    """One indexed class with its lint-relevant side tables."""

    qualname: str
    module: Module
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    base_qualnames: List[str] = field(default_factory=list)
    properties: Set[str] = field(default_factory=set)
    #: ``self.X`` attribute → inferred TypeRef.
    attr_types: Dict[str, TypeRef] = field(default_factory=dict)
    #: lock-holding attribute → "lock" | "rlock" | "unknown".
    lock_attrs: Dict[str, str] = field(default_factory=dict)
    #: ``__init__`` parameter name → ``self.attr`` it is stored into.
    stored_params: Dict[str, str] = field(default_factory=dict)
    #: attribute → callbacks known to be stored there (whole-program).
    callback_attrs: Dict[str, Set[str]] = field(default_factory=dict)


@dataclass
class ResolvedCall:
    """One call site with everything the lock analysis needs."""

    node: ast.AST
    callees: Tuple[FunctionInfo, ...]
    #: Dotted name of an *external* callee ("time.sleep"), "" if unknown.
    external: str = ""
    #: True when the call hands callables to another thread (Thread/submit).
    async_sink: bool = False
    #: Callables escaping through an async sink (bound methods/functions).
    escaping: Tuple[FunctionInfo, ...] = ()


class CallGraph:
    """Class/function index plus call resolution over one project."""

    def __init__(self, project: Project):
        self.project = project
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: module-level lock bindings: (module, name) → "lock"|"rlock"
        self.module_locks: Dict[Tuple[str, str], str] = {}
        #: In-progress (fn, name) local inferences — the recursion guard
        #: must survive re-entry through resolve_call, so it lives here.
        self._busy: Set[Tuple[str, str]] = set()
        self._call_cache: Dict[Tuple[str, int], ResolvedCall] = {}
        self._local_cache: Dict[Tuple[str, str], Optional[TypeRef]] = {}
        self._mro_cache: Dict[str, List[ClassInfo]] = {}

    # -- construction -------------------------------------------------------------

    @classmethod
    def build(cls, project: Project) -> "CallGraph":
        graph = cls(project)
        for module in sorted(project.modules.values(), key=lambda m: m.name):
            graph._index_module(module)
        # Attribute tables resolve annotations against the *full* class
        # index — a second pass, or ``Dict[str, SkylineStore]`` in a module
        # indexed before its import target silently loses its element type.
        for qualname in sorted(graph.classes):
            graph._index_class_attrs(graph.classes[qualname])
        graph._propagate_callbacks()
        return graph

    def _index_module(self, module: Module) -> None:
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._index_function(module, stmt, None)
                self.functions[info.qualname] = info
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(module, stmt)
            elif isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
                kind = _lock_call_kind(stmt.value)
                if kind is not None:
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            self.module_locks[(module.name, target.id)] = kind

    def _index_class(self, module: Module, node: ast.ClassDef) -> None:
        info = ClassInfo(
            qualname=f"{module.name}.{node.name}", module=module, node=node
        )
        self.classes[info.qualname] = info
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._index_function(module, stmt, info)
                info.methods[stmt.name] = fn
                self.functions[fn.qualname] = fn
                if any(
                    isinstance(dec, ast.Name) and dec.id == "property"
                    or isinstance(dec, ast.Attribute) and dec.attr in ("setter", "getter")
                    for dec in stmt.decorator_list
                ):
                    info.properties.add(stmt.name)

    def _index_function(
        self,
        module: Module,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_info: Optional[ClassInfo],
    ) -> FunctionInfo:
        owner = class_info.qualname if class_info else module.name
        info = FunctionInfo(
            qualname=f"{owner}.{node.name}",
            module=module,
            node=node,
            class_info=class_info,
        )
        args = node.args
        names = [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]
        if class_info is not None and names and names[0] in ("self", "cls"):
            names = names[1:]
        info.params = names
        for inner in ast.walk(node):
            if (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Name)
                and inner.func.id in names
            ):
                info.called_params.add(inner.func.id)
        return info

    def _index_class_attrs(self, info: ClassInfo) -> None:
        """Record ``self.X`` types, lock attributes, and param stores."""
        for method in info.methods.values():
            in_init = method.name in ("__init__", "__new__", "__post_init__")
            for stmt in ast.walk(method.node):
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                annotation: Optional[ast.expr] = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    target, value, annotation = stmt.target, stmt.value, stmt.annotation
                if (
                    target is None
                    or not isinstance(target, ast.Attribute)
                    or not isinstance(target.value, ast.Name)
                    or target.value.id != "self"
                ):
                    continue
                attr = target.attr
                if isinstance(value, ast.Call):
                    kind = _lock_call_kind(value)
                    if kind is not None:
                        info.lock_attrs[attr] = kind
                if attr == "_lock" and attr not in info.lock_attrs:
                    info.lock_attrs.setdefault(attr, "unknown")
                if annotation is not None and attr not in info.attr_types:
                    ref = self._annotation_type(info.module, annotation)
                    if ref is not None:
                        info.attr_types[attr] = ref
                if attr not in info.attr_types and isinstance(value, ast.Call):
                    ref = self._constructed_type(info.module, value)
                    if ref is not None:
                        info.attr_types[attr] = ref
                if (
                    in_init
                    and isinstance(value, ast.Name)
                    and value.id in method.params
                ):
                    info.stored_params[value.id] = attr
                    # ``self.x = x`` with an annotated parameter types the
                    # attribute too (the dependency-injection idiom).
                    if attr not in info.attr_types:
                        ref = self._param_annotation_type(method, value.id)
                        if ref is not None:
                            info.attr_types[attr] = ref

    def _param_annotation_type(
        self, method: FunctionInfo, param: str
    ) -> Optional[TypeRef]:
        args = method.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if arg.arg == param and arg.annotation is not None:
                return self._annotation_type(method.module, arg.annotation)
        return None

    # -- hierarchy ----------------------------------------------------------------

    def resolve_class(self, module: Module, name_node: ast.expr) -> Optional[ClassInfo]:
        resolved = self.project.resolve_expr(module, name_node)
        if resolved is None or not isinstance(resolved.node, ast.ClassDef):
            return None
        return self.classes.get(resolved.qualname)

    def mro(self, info: ClassInfo) -> List[ClassInfo]:
        """The class plus its resolvable bases, nearest first (cycle-safe)."""
        cached = self._mro_cache.get(info.qualname)
        if cached is not None:
            return cached
        chain: List[ClassInfo] = []
        seen: Set[str] = set()
        frontier = [info]
        while frontier and len(chain) < _MAX_MRO:
            current = frontier.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            chain.append(current)
            for base in current.node.bases:
                base_info = self.resolve_class(current.module, base)
                if base_info is not None:
                    frontier.append(base_info)
        self._mro_cache[info.qualname] = chain
        return chain

    def lookup_method(self, info: ClassInfo, name: str) -> Optional[FunctionInfo]:
        for cls in self.mro(info):
            method = cls.methods.get(name)
            if method is not None:
                return method
        return None

    def lookup_lock_attr(self, info: ClassInfo, attr: str) -> Optional[str]:
        """Lock kind for ``self.attr`` through the hierarchy, else None."""
        for cls in self.mro(info):
            kind = cls.lock_attrs.get(attr)
            if kind is not None:
                return kind
        return None

    # -- type inference -----------------------------------------------------------

    def _annotation_type(
        self, module: Module, ann: ast.expr
    ) -> Optional[TypeRef]:
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(ann, (ast.Name, ast.Attribute)):
            info = self.resolve_class(module, ann)
            return TypeRef(cls=info.qualname) if info else None
        if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
            # X | None — prefer whichever side resolves.
            return self._annotation_type(module, ann.left) or self._annotation_type(
                module, ann.right
            )
        if isinstance(ann, ast.Subscript):
            head = dotted_name(ann.value).rsplit(".", 1)[-1]
            inner = ann.slice
            parts = list(inner.elts) if isinstance(inner, ast.Tuple) else [inner]
            if head in ("Optional", "Union"):
                for part in parts:
                    ref = self._annotation_type(module, part)
                    if ref is not None:
                        return ref
                return None
            if head in _CONTAINER_GENERICS and parts:
                elem = self._annotation_type(module, parts[-1])
                return TypeRef(elem=elem) if elem is not None else None
        return None

    def _constructed_type(self, module: Module, call: ast.Call) -> Optional[TypeRef]:
        info = self.resolve_class(module, call.func)
        return TypeRef(cls=info.qualname) if info else None

    def infer_type(self, fn: FunctionInfo, expr: ast.expr) -> Optional[TypeRef]:
        return self._infer(fn, expr)

    def _infer(self, fn: FunctionInfo, expr: ast.expr) -> Optional[TypeRef]:
        if isinstance(expr, ast.Name):
            return self._infer_local(fn, expr.id)
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) and expr.value.id == "self":
                if fn.class_info is not None:
                    for cls in self.mro(fn.class_info):
                        ref = cls.attr_types.get(expr.attr)
                        if ref is not None:
                            return ref
                    getter = self._property_getter(fn.class_info, expr.attr)
                    if getter is not None:
                        return self._return_type(getter)
                return None
            receiver = self._infer(fn, expr.value)
            if receiver is not None and receiver.cls is not None:
                cls_info = self.classes.get(receiver.cls)
                if cls_info is not None:
                    getter = self._property_getter(cls_info, expr.attr)
                    if getter is not None:
                        return self._return_type(getter)
                    ref = cls_info.attr_types.get(expr.attr)
                    if ref is not None:
                        return ref
            return None
        if isinstance(expr, ast.Call):
            func = expr.func
            if (
                isinstance(func, ast.Name)
                and func.id in _TRANSPARENT_WRAPPERS
                and expr.args
            ):
                return self._infer(fn, expr.args[0])
            if isinstance(func, ast.Attribute) and func.attr in ("items", "values"):
                receiver = self._infer(fn, func.value)
                if receiver is not None and receiver.is_container:
                    return receiver  # container of the same value type
            callees = self.resolve_call(fn, expr).callees
            for callee in callees:
                if callee.name == "__init__" and callee.class_info is not None:
                    return TypeRef(cls=callee.class_info.qualname)
                ref = self._return_type(callee)
                if ref is not None:
                    return ref
            ctor = None
            if isinstance(func, (ast.Name, ast.Attribute)):
                ctor = self.resolve_class(fn.module, func)
            return TypeRef(cls=ctor.qualname) if ctor else None
        if isinstance(expr, ast.Subscript):
            receiver = self._infer(fn, expr.value)
            if receiver is not None and receiver.is_container:
                return receiver.elem
            return None
        if isinstance(expr, ast.Starred):
            return self._infer(fn, expr.value)
        return None

    def _infer_local(self, fn: FunctionInfo, name: str) -> Optional[TypeRef]:
        key = (fn.qualname, name)
        if key in self._local_cache:
            return self._local_cache[key]
        if key in self._busy:
            return None
        self._busy.add(key)
        try:
            ref = self._infer_local_uncached(fn, name)
            # A None computed under an in-progress outer inference may be a
            # recursion cut, not a real miss — only cache it at top level.
            if ref is not None or len(self._busy) == 1:
                self._local_cache[key] = ref
            return ref
        finally:
            self._busy.discard(key)

    def _infer_local_uncached(self, fn: FunctionInfo, name: str) -> Optional[TypeRef]:
        if True:
            args = fn.node.args
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
                if arg.arg == name and arg.annotation is not None:
                    return self._annotation_type(fn.module, arg.annotation)
            for stmt in ast.walk(fn.node):
                if isinstance(stmt, ast.AnnAssign):
                    if (
                        isinstance(stmt.target, ast.Name)
                        and stmt.target.id == name
                    ):
                        return self._annotation_type(fn.module, stmt.annotation)
                elif isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name) and target.id == name:
                            ref = self._infer(fn, stmt.value)
                            if ref is not None:
                                return ref
                elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                    ref = self._target_elem_type(fn, stmt.target, stmt.iter, name)
                    if ref is not None:
                        return ref
                elif isinstance(
                    stmt, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
                ):
                    for gen in stmt.generators:
                        ref = self._target_elem_type(fn, gen.target, gen.iter, name)
                        if ref is not None:
                            return ref
                elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                    for item in stmt.items:
                        if (
                            isinstance(item.optional_vars, ast.Name)
                            and item.optional_vars.id == name
                        ):
                            return self._infer(fn, item.context_expr)
            binding = self.project.resolve_name(fn.module, name)
            if binding is not None and isinstance(
                binding.node, ast.Assign
            ) and isinstance(binding.node.value, ast.Call):
                info = self.resolve_class(binding.module, binding.node.value.func)
                if info is not None:
                    return TypeRef(cls=info.qualname)
            return None

    def _target_elem_type(
        self, fn: FunctionInfo, target: ast.expr, iterable: ast.expr, name: str
    ) -> Optional[TypeRef]:
        """``for x in xs`` / ``for k, v in d.items()`` element types (loop
        statements and comprehension generators alike)."""
        iter_ref = self._infer(fn, iterable)
        if iter_ref is None or not iter_ref.is_container:
            return None
        if isinstance(target, ast.Name) and target.id == name:
            return iter_ref.elem
        if isinstance(target, ast.Tuple) and target.elts:
            last = target.elts[-1]
            # ``for key, value in mapping.items()``: the value slot carries
            # the container's element type (keys are out of scope here).
            if isinstance(last, ast.Name) and last.id == name:
                return iter_ref.elem
        return None

    def _return_type(self, fn: FunctionInfo) -> Optional[TypeRef]:
        if fn.node.returns is None:
            return None
        return self._annotation_type(fn.module, fn.node.returns)

    def _property_getter(
        self, info: ClassInfo, attr: str
    ) -> Optional[FunctionInfo]:
        for cls in self.mro(info):
            if attr in cls.properties:
                return cls.methods.get(attr)
        return None

    # -- call resolution ----------------------------------------------------------

    def resolve_call(self, fn: FunctionInfo, call: ast.Call) -> ResolvedCall:
        key = (fn.qualname, id(call))
        cached = self._call_cache.get(key)
        if cached is not None:
            return cached
        resolved = self._resolve_call(fn, call)
        self._call_cache[key] = resolved
        return resolved

    def _resolve_call(self, fn: FunctionInfo, call: ast.Call) -> ResolvedCall:
        func = call.func
        callees: List[FunctionInfo] = []
        external = ""
        async_sink = False
        escaping: List[FunctionInfo] = []

        if isinstance(func, ast.Name):
            if func.id in ASYNC_SINK_NAMES:
                async_sink = True
            resolved = self.project.resolve_name(fn.module, func.id)
            if resolved is not None:
                if isinstance(
                    resolved.node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    callees.append(self.functions[resolved.qualname])
                elif isinstance(resolved.node, ast.ClassDef):
                    cls_info = self.classes.get(resolved.qualname)
                    if cls_info is not None:
                        init = self.lookup_method(cls_info, "__init__")
                        if init is not None:
                            callees.append(init)
            else:
                external = self._external_name(fn.module, func)
            if func.id == "len" and len(call.args) == 1:
                callees.extend(self._dunder(fn, call.args[0], "__len__"))
        elif isinstance(func, ast.Attribute):
            if func.attr in ASYNC_SINK_ATTRS:
                async_sink = True
            if dotted_name(func).rsplit(".", 1)[-1] in ASYNC_SINK_NAMES:
                async_sink = True
            callees.extend(self._resolve_method(fn, func))
            if not callees:
                external = self._external_name(fn.module, func)

        if async_sink:
            escaping = self._escaping_callables(fn, call)
        return ResolvedCall(
            node=call,
            callees=tuple(callees),
            external=external,
            async_sink=async_sink,
            escaping=tuple(escaping),
        )

    def _resolve_method(
        self, fn: FunctionInfo, func: ast.Attribute
    ) -> List[FunctionInfo]:
        receiver = func.value
        if isinstance(receiver, ast.Name) and receiver.id == "self":
            if fn.class_info is None:
                return []
            stored = self._stored_callbacks(fn.class_info, func.attr)
            if stored:
                return stored
            method = self.lookup_method(fn.class_info, func.attr)
            return [method] if method is not None else []
        # ClassName.method(...) — an unbound call through the class object.
        if isinstance(receiver, (ast.Name, ast.Attribute)):
            cls_info = self.resolve_class(fn.module, receiver)
            if cls_info is not None:
                method = self.lookup_method(cls_info, func.attr)
                if method is not None:
                    return [method]
        ref = self.infer_type(fn, receiver)
        if ref is not None and ref.cls is not None:
            cls_info = self.classes.get(ref.cls)
            if cls_info is not None:
                stored = self._stored_callbacks(cls_info, func.attr)
                if stored:
                    return stored
                method = self.lookup_method(cls_info, func.attr)
                if method is not None:
                    return [method]
        return []

    def _stored_callbacks(
        self, info: ClassInfo, attr: str
    ) -> List[FunctionInfo]:
        names: Set[str] = set()
        for cls in self.mro(info):
            names |= cls.callback_attrs.get(attr, set())
        return [self.functions[n] for n in sorted(names) if n in self.functions]

    def _dunder(
        self, fn: FunctionInfo, receiver: ast.expr, name: str
    ) -> List[FunctionInfo]:
        ref = self.infer_type(fn, receiver)
        if ref is None or ref.cls is None:
            return []
        cls_info = self.classes.get(ref.cls)
        if cls_info is None:
            return []
        method = self.lookup_method(cls_info, name)
        return [method] if method is not None else []

    def property_reads(
        self, fn: FunctionInfo, root: ast.AST
    ) -> Iterator[Tuple[ast.Attribute, FunctionInfo]]:
        """Attribute loads under ``root`` that resolve to property getters."""
        for node in ast.walk(root):
            if not isinstance(node, ast.Attribute) or not isinstance(
                node.ctx, ast.Load
            ):
                continue
            receiver_ref: Optional[TypeRef] = None
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                if fn.class_info is not None:
                    receiver_ref = TypeRef(cls=fn.class_info.qualname)
            else:
                receiver_ref = self.infer_type(fn, node.value)
            if receiver_ref is None or receiver_ref.cls is None:
                continue
            cls_info = self.classes.get(receiver_ref.cls)
            if cls_info is None:
                continue
            getter = self._property_getter(cls_info, node.attr)
            if getter is not None:
                yield node, getter

    def contains_checks(
        self, fn: FunctionInfo, root: ast.AST
    ) -> Iterator[Tuple[ast.Compare, FunctionInfo]]:
        """``x in y`` where y's type defines ``__contains__``."""
        for node in ast.walk(root):
            if not isinstance(node, ast.Compare):
                continue
            for op, comparator in zip(node.ops, node.comparators):
                if isinstance(op, (ast.In, ast.NotIn)):
                    for method in self._dunder(fn, comparator, "__contains__"):
                        yield node, method

    def _external_name(self, module: Module, func: ast.expr) -> str:
        """Dotted name of an out-of-project callee ("time.sleep"), best-effort."""
        dotted = dotted_name(func)
        if not dotted:
            return ""
        root, _, rest = dotted.partition(".")
        binding = module.bindings.get(root)
        if binding is None or binding.kind != "import":
            return dotted
        base = binding.module
        if binding.orig_name:
            base = f"{binding.module}.{binding.orig_name}"
        return f"{base}.{rest}" if rest else base

    def _escaping_callables(
        self, fn: FunctionInfo, call: ast.Call
    ) -> List[FunctionInfo]:
        """Bound methods / project functions handed to a thread sink."""
        out: List[FunctionInfo] = []
        candidates: List[ast.expr] = list(call.args)
        candidates.extend(kw.value for kw in call.keywords if kw.arg is not None)
        for arg in candidates:
            target = self._callable_ref(fn, arg)
            if target is not None:
                out.append(target)
        return out

    def _callable_ref(
        self, fn: FunctionInfo, expr: ast.expr
    ) -> Optional[FunctionInfo]:
        """A function/bound-method reference (not a call) — else None."""
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) and expr.value.id == "self":
                if fn.class_info is not None:
                    return self.lookup_method(fn.class_info, expr.attr)
                return None
            ref = self.infer_type(fn, expr.value)
            if ref is not None and ref.cls is not None:
                cls_info = self.classes.get(ref.cls)
                if cls_info is not None:
                    return self.lookup_method(cls_info, expr.attr)
            return None
        if isinstance(expr, ast.Name):
            resolved = self.project.resolve_name(fn.module, expr.id)
            if resolved is not None and isinstance(
                resolved.node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                return self.functions.get(resolved.qualname)
            # A locally-defined closure: indexed under the enclosing scope?
            # Local defs are not in the module index; resolve within fn.
            for stmt in ast.walk(fn.node):
                if (
                    isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and stmt is not fn.node
                    and stmt.name == expr.id
                ):
                    return FunctionInfo(
                        qualname=f"{fn.qualname}.<local>.{stmt.name}",
                        module=fn.module,
                        node=stmt,
                        class_info=fn.class_info,
                    )
        return None

    # -- callback propagation -----------------------------------------------------

    def _propagate_callbacks(self) -> None:
        """Flow concrete callables through parameters into attribute stores.

        Seeds: every call site passing a bound method / resolved function
        as an argument.  Propagation: (a) one function's parameter passed
        as an argument to another call re-seeds the callee's parameter;
        (b) ``self.X = param`` in ``__init__`` lands the callbacks in the
        class's ``callback_attrs``, where :meth:`_resolve_method` picks
        them up for ``self.X(...)`` sites.  Iterated to a (bounded)
        fixpoint — the chains in this codebase are two hops deep.
        """
        pending: List[Tuple[FunctionInfo, str, str]] = []  # (fn, param, callback)

        def seed(callee: FunctionInfo, param: str, callback: FunctionInfo) -> None:
            bucket = callee.param_callbacks.setdefault(param, set())
            if callback.qualname not in bucket:
                bucket.add(callback.qualname)
                pending.append((callee, param, callback.qualname))

        for fn in list(self.functions.values()):
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                resolved = self.resolve_call(fn, node)
                if resolved.async_sink:
                    continue  # another thread: not a synchronous invoke
                for callee in resolved.callees:
                    for param, arg in _bind_args(callee, node):
                        target = self._callable_ref(fn, arg)
                        if target is not None:
                            seed(callee, param, target)

        passes = 0
        while pending and passes < 10_000:
            passes += 1
            callee, param, callback_name = pending.pop()
            callback = self.functions.get(callback_name)
            if callback is None:
                continue
            # (b) stored into self.attr by a constructor.
            if (
                callee.name == "__init__"
                and callee.class_info is not None
                and param in callee.class_info.stored_params
            ):
                attr = callee.class_info.stored_params[param]
                bucket = callee.class_info.callback_attrs.setdefault(attr, set())
                if callback_name not in bucket:
                    bucket.add(callback_name)
                    # A cached `self.attr(...)` miss predates this
                    # registration — drop the memos (rare: once per stored
                    # callback, not per call).
                    self._call_cache.clear()
                    self._local_cache.clear()
            # (a) passed through to further calls.
            for node in ast.walk(callee.node):
                if not isinstance(node, ast.Call):
                    continue
                resolved = self.resolve_call(callee, node)
                if resolved.async_sink:
                    continue
                for inner in resolved.callees:
                    for inner_param, arg in _bind_args(inner, node):
                        if isinstance(arg, ast.Name) and arg.id == param:
                            seed(inner, inner_param, callback)

    def invoked_callbacks(
        self, fn: FunctionInfo, call: ast.Call, resolved: ResolvedCall
    ) -> List[FunctionInfo]:
        """Callbacks a synchronous callee may invoke on this call's args.

        Only parameters the callee *calls directly* count — storing a
        callback (the ``Gauge.__init__`` pattern) defers its invocation to
        the method that calls the attribute, which :meth:`_resolve_method`
        handles separately with the *stored* callbacks.
        """
        if resolved.async_sink:
            return []
        out: List[FunctionInfo] = []
        for callee in resolved.callees:
            if not callee.called_params:
                continue
            for param, arg in _bind_args(callee, call):
                if param in callee.called_params:
                    target = self._callable_ref(fn, arg)
                    if target is not None:
                        out.append(target)
        return out


def _bind_args(
    callee: FunctionInfo, call: ast.Call
) -> Iterator[Tuple[str, ast.expr]]:
    """Best-effort (parameter name, argument expr) binding for one call."""
    params: Sequence[str] = callee.params
    for index, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            break
        if index < len(params):
            yield params[index], arg
    for kw in call.keywords:
        if kw.arg is not None and kw.arg in params:
            yield kw.arg, kw.value


def _lock_call_kind(call: ast.Call) -> Optional[str]:
    """"lock"/"rlock" when the call constructs a threading lock."""
    tail = dotted_name(call.func).rsplit(".", 1)[-1]
    if tail == "Lock":
        return "lock"
    if tail == "RLock":
        return "rlock"
    return None
