"""Tests for the QoS schema and orientation normalisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.services.qos import Polarity, QoSAttribute, QoSSchema


def _schema():
    return QoSSchema(
        [
            QoSAttribute("response_time", "ms", Polarity.LOWER_IS_BETTER),
            QoSAttribute("availability", "%", Polarity.HIGHER_IS_BETTER, 100.0),
            QoSAttribute("throughput", "req/s", Polarity.HIGHER_IS_BETTER),
        ]
    )


class TestAttribute:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            QoSAttribute("", "ms", Polarity.LOWER_IS_BETTER)

    def test_nonpositive_bound_rejected(self):
        with pytest.raises(ValueError):
            QoSAttribute("x", "%", Polarity.HIGHER_IS_BETTER, 0.0)

    def test_frozen(self):
        attr = QoSAttribute("x", "ms", Polarity.LOWER_IS_BETTER)
        with pytest.raises(AttributeError):
            attr.name = "y"  # type: ignore[misc]


class TestSchema:
    def test_basic_properties(self):
        s = _schema()
        assert len(s) == 3
        assert s.names == ["response_time", "availability", "throughput"]
        assert s.index_of("availability") == 1

    def test_unknown_attribute(self):
        with pytest.raises(KeyError):
            _schema().index_of("nope")

    def test_duplicate_names_rejected(self):
        a = QoSAttribute("x", "ms", Polarity.LOWER_IS_BETTER)
        with pytest.raises(ValueError):
            QoSSchema([a, a])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            QoSSchema([])

    def test_subset(self):
        sub = _schema().subset(2)
        assert sub.names == ["response_time", "availability"]

    def test_subset_bounds(self):
        with pytest.raises(ValueError):
            _schema().subset(0)
        with pytest.raises(ValueError):
            _schema().subset(4)


class TestToMinimization:
    def test_min_attribute_unchanged(self):
        raw = np.array([[100.0, 90.0, 5.0]])
        out = _schema().to_minimization(raw)
        assert out[0, 0] == 100.0

    def test_max_attribute_flipped_with_bound(self):
        raw = np.array([[100.0, 90.0, 5.0]])
        out = _schema().to_minimization(raw)
        assert out[0, 1] == pytest.approx(10.0)  # 100 - 90

    def test_max_attribute_without_bound_uses_observed_max(self):
        raw = np.array([[0.0, 0.0, 5.0], [0.0, 0.0, 20.0]])
        out = _schema().to_minimization(raw)
        assert out[:, 2].tolist() == [15.0, 0.0]

    def test_values_above_bound_rejected(self):
        raw = np.array([[1.0, 150.0, 1.0]])
        with pytest.raises(ValueError, match="exceed"):
            _schema().to_minimization(raw)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            _schema().to_minimization(np.array([[-1.0, 1.0, 1.0]]))

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            _schema().to_minimization(np.array([[np.nan, 1.0, 1.0]]))

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            _schema().to_minimization(np.ones((2, 2)))

    def test_output_nonnegative(self):
        rng = np.random.default_rng(0)
        raw = np.column_stack(
            [rng.random(50) * 1000, rng.random(50) * 100, rng.random(50) * 10]
        )
        out = _schema().to_minimization(raw)
        assert (out >= 0).all()

    @given(
        values=st.lists(
            st.tuples(
                st.floats(0, 1000, allow_nan=False).map(lambda v: round(v, 6)),
                st.floats(0, 100, allow_nan=False).map(lambda v: round(v, 6)),
                st.floats(0, 50, allow_nan=False).map(lambda v: round(v, 6)),
            ),
            min_size=2,
            max_size=30,
        )
    )
    @settings(max_examples=50)
    def test_property_dominance_preserved(self, values):
        """Flipping orientation preserves the 'better' relation: service A
        better than B in raw terms ⇔ A dominates B after normalisation.

        Values are rounded to measurement granularity (1e-6): the flip
        ``bound − v`` cannot represent sub-epsilon differences near the
        bound (e.g. 100 − 1e-146 == 100.0), which is fine for real QoS
        measurements but would fail this property on adversarial floats.
        """
        raw = np.array(values)
        out = _schema().to_minimization(raw)
        a, b = raw[0], raw[1]
        better_raw = (
            a[0] <= b[0] and a[1] >= b[1] and a[2] >= b[2]
        ) and (a[0] < b[0] or a[1] > b[1] or a[2] > b[2])
        from repro.core.dominance import dominates

        assert dominates(out[0], out[1]) == better_raw
