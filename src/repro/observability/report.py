"""Trace-file analysis: per-phase breakdowns and a text span tree.

This is the read side of the tracer: ``repro trace <file>`` loads a
JSON-lines trace, validates it, and renders

* a **summary** — span counts, per-phase (map/shuffle/reduce) totals and
  shares, and the partition-skew gauges from the trace's metrics
  snapshot, and
* a **tree** — a flamegraph-style indented listing of every span with
  duration, self-time share, and status.

The same :func:`summarize_spans` feeds the bench harness, which attaches
per-phase breakdowns to benchmark records.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, TextIO

from repro.observability.tracing import (
    Span,
    metrics_of,
    read_trace,
    spans_of,
)

__all__ = [
    "TraceError",
    "load_trace",
    "summarize_spans",
    "render_tree",
    "render_summary",
]

#: Phase names the engine emits, in pipeline order.
PHASES = ("map", "shuffle", "reduce")


class TraceError(ValueError):
    """The trace file is empty, malformed, or missing required spans."""


def load_trace(source: str | TextIO) -> tuple[List[Span], Dict[str, Any] | None]:
    """Read and validate a trace file → (spans, metrics snapshot or None).

    Raises :class:`TraceError` if the file has no span records or any
    record fails schema validation — the CI smoke step depends on this.
    """
    try:
        records = read_trace(source)
    except (OSError, ValueError) as exc:
        raise TraceError(str(exc)) from exc
    spans = spans_of(records)
    if not spans:
        raise TraceError("trace contains no span records")
    return spans, metrics_of(records)


def _phase_of(span: Span) -> str | None:
    if span.kind != "phase":
        return None
    phase = span.attrs.get("phase", span.name)
    return phase if phase in PHASES else None


def summarize_spans(spans: Sequence[Span]) -> Dict[str, Any]:
    """Aggregate a span set into the per-phase breakdown dict.

    Keys: ``spans`` (count), ``jobs`` (job-span count), ``tasks``,
    ``errors``, ``wall_s`` (sum of root spans), ``phase_s`` (map /
    shuffle / reduce seconds), ``phase_share`` (fractions of the phase
    total), ``task_p50_s`` / ``task_max_s``.
    """
    phase_s = {p: 0.0 for p in PHASES}
    jobs = tasks = errors = 0
    roots = 0.0
    task_durations: List[float] = []
    for span in spans:
        if span.status == "error":
            errors += 1
        if span.parent_id is None:
            roots += span.duration_s
        if span.kind == "job":
            jobs += 1
        elif span.kind == "task":
            tasks += 1
            task_durations.append(span.duration_s)
        phase = _phase_of(span)
        if phase is not None:
            phase_s[phase] += span.duration_s
    phase_total = sum(phase_s.values())
    phase_share = {
        p: (phase_s[p] / phase_total if phase_total > 0 else 0.0) for p in PHASES
    }
    task_durations.sort()
    return {
        "spans": len(spans),
        "jobs": jobs,
        "tasks": tasks,
        "errors": errors,
        "wall_s": roots,
        "phase_s": {p: round(v, 6) for p, v in phase_s.items()},
        "phase_share": {p: round(v, 4) for p, v in phase_share.items()},
        "task_p50_s": (
            round(task_durations[len(task_durations) // 2], 6)
            if task_durations
            else 0.0
        ),
        "task_max_s": round(task_durations[-1], 6) if task_durations else 0.0,
    }


def _children_index(spans: Sequence[Span]) -> Dict[str | None, List[Span]]:
    index: Dict[str | None, List[Span]] = {}
    ids = {s.span_id for s in spans}
    for span in spans:
        # Orphans (parent not in file, e.g. a truncated trace) root the tree.
        parent = span.parent_id if span.parent_id in ids else None
        index.setdefault(parent, []).append(span)
    for children in index.values():
        children.sort(key=lambda s: (s.start_ns, s.span_id))
    return index


def render_tree(
    spans: Sequence[Span],
    *,
    max_tasks_per_phase: int = 8,
) -> str:
    """Flamegraph-style indented text tree of the span hierarchy.

    Phases with many tasks are elided to the ``max_tasks_per_phase``
    longest (the straggler end is what one reads a trace for), with an
    explicit ``… k more`` line so nothing is silently dropped.
    """
    index = _children_index(spans)
    total = sum(s.duration_s for s in index.get(None, ())) or 1e-12
    lines: List[str] = []

    def emit(span: Span, depth: int) -> None:
        share = span.duration_s / total
        marker = "  " * depth
        flag = "  [ERROR]" if span.status == "error" else ""
        extra = ""
        if span.kind == "phase":
            n = span.attrs.get("tasks")
            if n is not None:
                extra = f"  ({n} tasks)"
        lines.append(
            f"{marker}{span.kind}:{span.name:<28s}"
            f"{span.duration_s:>12.6f}s  {share:>5.1%}{extra}{flag}"
        )
        children = index.get(span.span_id, [])
        task_children = [c for c in children if c.kind == "task"]
        other_children = [c for c in children if c.kind != "task"]
        if len(task_children) > max_tasks_per_phase:
            shown = sorted(
                task_children, key=lambda s: s.duration_s, reverse=True
            )[:max_tasks_per_phase]
            hidden = len(task_children) - len(shown)
            for child in shown:
                emit(child, depth + 1)
            lines.append(
                "  " * (depth + 1)
                + f"… {hidden} more tasks "
                f"({sum(c.duration_s for c in task_children):.6f}s phase-task total)"
            )
        else:
            for child in task_children:
                emit(child, depth + 1)
        for child in other_children:
            emit(child, depth + 1)

    for root in index.get(None, []):
        emit(root, 0)
    return "\n".join(lines)


def render_summary(
    spans: Sequence[Span], snapshot: Dict[str, Any] | None = None
) -> str:
    """Human-readable header block for ``repro trace``."""
    summary = summarize_spans(spans)
    lines = [
        f"spans: {summary['spans']}  jobs: {summary['jobs']}  "
        f"tasks: {summary['tasks']}  errors: {summary['errors']}",
        f"wall (root spans): {summary['wall_s']:.6f}s",
        "per-phase breakdown:",
    ]
    for phase in PHASES:
        lines.append(
            f"  {phase:<8s}{summary['phase_s'][phase]:>12.6f}s"
            f"  {summary['phase_share'][phase]:>6.1%}"
        )
    lines.append(
        f"task durations: p50 {summary['task_p50_s']:.6f}s, "
        f"max {summary['task_max_s']:.6f}s"
    )
    if snapshot:
        gauges = snapshot.get("gauges", {})
        skew = {k: v for k, v in gauges.items() if k.startswith("partition.")}
        if skew:
            lines.append("partition skew:")
            for name, value in sorted(skew.items()):
                lines.append(f"  {name:<28s}{value:>12.3f}")
    return "\n".join(lines)
