"""Sampling utilities shared by the synthetic data generators.

Provides the Gaussian-copula machinery behind the QWS-like generator
(:mod:`repro.services.qws`): sample correlated uniforms from a target
correlation matrix, then push them through arbitrary marginal quantile
functions.  Also small helpers (truncated normal, empirical quantile
resampling) used by both the QWS generator and the paper's dataset
extension procedure.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = [
    "gaussian_copula_uniforms",
    "nearest_correlation",
    "sample_with_marginals",
    "truncated_normal",
    "empirical_quantile",
]


def nearest_correlation(matrix: np.ndarray, *, eps: float = 1e-8) -> np.ndarray:
    """Project a symmetric matrix onto the valid correlation matrices.

    Clips negative eigenvalues (Higham-style one-shot projection) and
    rescales the diagonal to 1 — sufficient for hand-authored correlation
    targets that may be slightly non-PSD.
    """
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValueError(f"need a square matrix, got shape {m.shape}")
    sym = (m + m.T) / 2.0
    vals, vecs = np.linalg.eigh(sym)
    vals = np.clip(vals, eps, None)
    fixed = (vecs * vals) @ vecs.T
    scale = np.sqrt(np.diag(fixed))
    fixed = fixed / np.outer(scale, scale)
    np.fill_diagonal(fixed, 1.0)
    return fixed


def gaussian_copula_uniforms(
    n: int, correlation: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``(n, d)`` uniforms whose rank-correlation follows ``correlation``.

    Standard Gaussian copula: draw correlated normals via the Cholesky
    factor of the (projected) correlation matrix, then map through Φ.
    """
    corr = nearest_correlation(correlation)
    chol = np.linalg.cholesky(corr)
    z = rng.standard_normal((n, corr.shape[0])) @ chol.T
    # Φ(z) via the error function; SciPy-free so the data layer only needs numpy.
    from math import sqrt

    return 0.5 * (1.0 + _erf(z / sqrt(2.0)))


def _erf(x: np.ndarray) -> np.ndarray:
    """Vectorised error function (Abramowitz–Stegun 7.1.26, |ε| ≤ 1.5e-7).

    Accurate far beyond what quantile mapping of synthetic data requires.
    """
    sign = np.sign(x)
    ax = np.abs(x)
    t = 1.0 / (1.0 + 0.3275911 * ax)
    poly = t * (
        0.254829592
        + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429)))
    )
    return sign * (1.0 - poly * np.exp(-ax * ax))


def sample_with_marginals(
    n: int,
    quantile_fns: Sequence[Callable[[np.ndarray], np.ndarray]],
    correlation: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Copula sampling: correlated uniforms → per-column quantile functions."""
    u = gaussian_copula_uniforms(n, correlation, rng)
    # Guard against u exactly 0/1 (erf saturation), where ppf-style marginals
    # would return infinities or create atoms at the support bounds.
    u = np.clip(u, 1e-12, 1.0 - 1e-12)
    if u.shape[1] != len(quantile_fns):
        raise ValueError(
            f"{len(quantile_fns)} marginals for {u.shape[1]} copula columns"
        )
    cols = [fn(u[:, j]) for j, fn in enumerate(quantile_fns)]
    return np.column_stack(cols)


def truncated_normal(
    u: np.ndarray, mean: float, std: float, lo: float, hi: float
) -> np.ndarray:
    """Quantile function of a clipped normal (clip, not renormalised —
    mass piles at the bounds, which matches percentage-like QoS data where
    many services sit at exactly 100 %)."""
    z = np.sqrt(2.0) * _erfinv(2.0 * np.asarray(u) - 1.0)
    return np.clip(mean + std * z, lo, hi)


def _erfinv(y: np.ndarray) -> np.ndarray:
    """Vectorised inverse error function (Winitzki's approximation + one
    Newton step; plenty for sampling)."""
    y = np.clip(np.asarray(y, dtype=np.float64), -1 + 1e-12, 1 - 1e-12)
    a = 0.147
    ln = np.log(1.0 - y * y)
    term = 2.0 / (np.pi * a) + ln / 2.0
    x = np.sign(y) * np.sqrt(np.sqrt(term * term - ln / a) - term)
    # One Newton refinement: f(x) = erf(x) - y
    fx = _erf(x) - y
    dfx = 2.0 / np.sqrt(np.pi) * np.exp(-x * x)
    return x - fx / dfx


def empirical_quantile(sample: np.ndarray) -> Callable[[np.ndarray], np.ndarray]:
    """Quantile function of an empirical sample (linear interpolation).

    This is the engine of the paper's dataset extension: "randomly
    generating QoS values … following the distribution of the QWS dataset".
    """
    sorted_sample = np.sort(np.asarray(sample, dtype=np.float64))
    if sorted_sample.size == 0:
        raise ValueError("empty sample")
    probs = (np.arange(sorted_sample.size) + 0.5) / sorted_sample.size

    def quantile(u: np.ndarray) -> np.ndarray:
        return np.interp(np.asarray(u), probs, sorted_sample)

    return quantile
