"""Incremental (dynamic) skyline maintenance — the §II motivation.

"Given a new service which is added into UDDI, traditional approach has to
compute the global skyline again.  With the MapReduce approach, the new
service is first mapped into a group and added into the local skyline
computation.  Then all local skylines are integrated into the global skyline
at the Reduce stage."

:class:`IncrementalSkyline` keeps, per data-space partition, the full member
list and the current local skyline.  Inserting a service touches only its
partition's local skyline (one window comparison); removing a service
recomputes only the affected partition.  The global skyline is a lazy BNL
merge of the local skylines, recomputed only after mutations — exactly the
Reduce step of the MapReduce pipeline.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.core.bnl import bnl_skyline
from repro.core.dominance import validate_points
from repro.core.kernels import DominanceKernel, get_kernel
from repro.core.partitioning.base import SpacePartitioner

__all__ = ["IncrementalSkyline"]


class IncrementalSkyline:
    """Dynamic skyline over a partitioned service space.

    Parameters
    ----------
    partitioner:
        A :class:`SpacePartitioner`; fitted here on ``initial_points`` if it
        is not fitted yet.  Later insertions reuse the fitted extents (out-
        of-range points clamp into boundary partitions, as in the static
        pipeline).
    initial_points:
        Optional ``(n, d)`` seed data.
    kernel:
        Dominance backend used for every maintenance comparison (insert
        checks, partition recomputes, the lazy global merge); ``None``
        resolves the process default at construction time.

    Every point receives a stable integer id (its insertion order); removed
    ids are never reused.
    """

    def __init__(
        self,
        partitioner: SpacePartitioner,
        initial_points: np.ndarray | None = None,
        *,
        kernel: str | DominanceKernel | None = None,
        next_id: int = 0,
    ) -> None:
        if next_id < 0:
            raise ValueError(f"next_id must be >= 0, got {next_id}")
        self._partitioner = partitioner
        self._kernel = get_kernel(kernel)
        self._rows: Dict[int, np.ndarray] = {}
        self._partition_of: Dict[int, int] = {}
        self._members: Dict[int, List[int]] = {}
        self._local_sky: Dict[int, List[int]] = {}
        # Starts above 0 when a recovery restores the id-allocation
        # cursor of a structure whose membership had emptied out.
        self._next_id = next_id
        self._global_cache: np.ndarray | None = None

        if initial_points is not None:
            pts = np.asarray(initial_points, dtype=np.float64)
            if not getattr(partitioner, "_fitted", False):
                partitioner.fit(pts)
            for row in pts:
                self.insert(row)
        elif not getattr(partitioner, "_fitted", False):
            raise ValueError(
                "partitioner must be fitted when no initial points are given"
            )

    @classmethod
    def from_batch(
        cls,
        partitioner: SpacePartitioner,
        points: np.ndarray,
        partition_ids: np.ndarray,
        local_skylines: Mapping[int, np.ndarray],
        *,
        kernel: str | DominanceKernel | None = None,
    ) -> "IncrementalSkyline":
        """Seed from an already-computed batch result (e.g. ``run_mr_skyline``).

        ``partition_ids[i]`` is the partition of ``points[i]`` under the
        *fitted* ``partitioner``; ``local_skylines`` maps partition id to
        the ascending point indices of its local skyline.  Point ``i``
        receives id ``i``, matching the batch result's index space, so a
        serving layer can bulk-load a large dataset through the MapReduce
        pipeline instead of ``n`` serial inserts.
        """
        pts = validate_points(points)
        ids = np.asarray(partition_ids)
        if ids.shape != (pts.shape[0],):
            raise ValueError(
                f"partition_ids has shape {ids.shape}, expected ({pts.shape[0]},)"
            )
        if not getattr(partitioner, "_fitted", False):
            raise ValueError("partitioner must be fitted for from_batch")
        self = cls.__new__(cls)
        self._partitioner = partitioner
        self._kernel = get_kernel(kernel)
        self._rows = {i: pts[i] for i in range(pts.shape[0])}
        self._partition_of = {i: int(p) for i, p in enumerate(ids)}
        self._members = {}
        for i, pid in self._partition_of.items():
            self._members.setdefault(pid, []).append(i)
        self._local_sky = {
            int(pid): [int(i) for i in sky]
            for pid, sky in local_skylines.items()
            if len(sky)
        }
        for pid, sky in self._local_sky.items():
            member_set = set(self._members.get(pid, []))
            stray = [i for i in sky if i not in member_set]
            if stray:
                raise ValueError(
                    f"local skyline of partition {pid} references non-member "
                    f"ids {stray[:5]}"
                )
        self._next_id = pts.shape[0]
        self._global_cache = None
        return self

    @classmethod
    def from_members(
        cls,
        partitioner: SpacePartitioner,
        ids: Sequence[int],
        rows: np.ndarray,
        *,
        next_id: int,
        kernel: str | DominanceKernel | None = None,
    ) -> "IncrementalSkyline":
        """Rebuild from an explicit ``(ids, rows)`` membership — recovery.

        The durability snapshot persists exactly what :meth:`members`
        returns plus the id-allocation cursor; this inverts it.  Ids are
        honoured verbatim (they are *not* renumbered) and ``next_id``
        restores the allocation cursor, so inserts after recovery assign
        the same ids the pre-crash structure would have — the id-for-id
        recovery contract.  The partitioner is fitted here on the
        surviving members when not already fitted; partition boundaries
        may therefore differ from the pre-crash structure's (which fitted
        on its *first* batch), which is sound because every external
        answer — the global skyline and the query evaluators — is
        partition-independent.
        """
        pts = validate_points(rows)
        id_list = [int(i) for i in ids]
        if len(id_list) != pts.shape[0]:
            raise ValueError(
                f"got {len(id_list)} ids for {pts.shape[0]} rows"
            )
        if len(set(id_list)) != len(id_list):
            raise ValueError("member ids must be unique")
        if id_list and next_id <= max(id_list):
            raise ValueError(
                f"next_id {next_id} would re-issue live id {max(id_list)}"
            )
        if next_id < 0:
            raise ValueError(f"next_id must be >= 0, got {next_id}")
        if not getattr(partitioner, "_fitted", False):
            if pts.shape[0] == 0:
                raise ValueError(
                    "partitioner must be fitted to restore an empty membership"
                )
            partitioner.fit(pts)
        self = cls.__new__(cls)
        self._partitioner = partitioner
        self._kernel = get_kernel(kernel)
        self._rows = {pid: pts[i] for i, pid in enumerate(id_list)}
        assigned = partitioner.assign(pts) if pts.shape[0] else np.empty(0, dtype=np.intp)
        self._partition_of = {
            pid: int(part) for pid, part in zip(id_list, assigned)
        }
        self._members = {}
        for pid in id_list:
            self._members.setdefault(self._partition_of[pid], []).append(pid)
        self._local_sky = {}
        for part, members in self._members.items():
            member_rows = np.vstack([self._rows[i] for i in members])
            result = bnl_skyline(member_rows, kernel=self._kernel)
            self._local_sky[part] = [members[j] for j in result.indices]
        self._next_id = next_id
        self._global_cache = None
        return self

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, point_id: int) -> bool:
        return point_id in self._rows

    @property
    def num_partitions(self) -> int:
        return self._partitioner.num_partitions

    @property
    def kernel_name(self) -> str:
        """Name of the dominance backend this structure was built with."""
        return self._kernel.name

    @property
    def next_id(self) -> int:
        """The id the next insert will assign — persisted by snapshots so
        a recovered structure keeps allocating the same ids."""
        return self._next_id

    def point(self, point_id: int) -> np.ndarray:
        return self._rows[point_id].copy()

    def local_skyline(self, partition_id: int) -> List[int]:
        """Current local skyline ids of one partition (sorted)."""
        return sorted(self._local_sky.get(partition_id, []))

    def partition_sizes(self) -> List[int]:
        """Member count per partition id (0 … num_partitions-1).

        The live load-balance picture of the partitioner's boundaries:
        the serving layer turns this into ``partition.skew.<dataset>.*``
        gauges after every mutation, which the skew-threshold watches
        (and eventually the re-balancer) consume.
        """
        return [
            len(self._members.get(pid, []))
            for pid in range(self._partitioner.num_partitions)
        ]

    def global_skyline(self) -> List[int]:
        """Ids of the current global skyline (sorted ascending)."""
        if self._global_cache is None:
            ids: List[int] = [
                pid for sky in self._local_sky.values() for pid in sky
            ]
            if not ids:
                self._global_cache = np.empty(0, dtype=np.intp)
            else:
                rows = np.vstack([self._rows[i] for i in ids])
                result = bnl_skyline(rows, kernel=self._kernel)
                self._global_cache = np.array(
                    sorted(ids[j] for j in result.indices), dtype=np.intp
                )
        return [int(i) for i in self._global_cache]

    def global_skyline_points(self) -> np.ndarray:
        ids = self.global_skyline()
        if not ids:
            d = next(iter(self._rows.values())).shape[0] if self._rows else 0
            return np.empty((0, d))
        return np.vstack([self._rows[i] for i in ids])

    def members(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(ids, rows)`` of every current member, ids ascending.

        The row matrix is a copy: callers may compute over it outside any
        lock guarding this structure without seeing later mutations.
        """
        if not self._rows:
            return np.empty(0, dtype=np.intp), np.empty((0, 0))
        ids = np.array(sorted(self._rows), dtype=np.intp)
        rows = np.vstack([self._rows[int(i)] for i in ids])
        return ids, rows

    # -- mutations ---------------------------------------------------------------

    def insert(self, point: np.ndarray) -> int:
        """Add a service; returns its id.  Only its partition is touched."""
        row = np.asarray(point, dtype=np.float64).reshape(-1)
        pid = int(self._partitioner.assign(row.reshape(1, -1))[0])
        point_id = self._next_id
        self._next_id += 1
        self._rows[point_id] = row
        self._partition_of[point_id] = pid
        self._members.setdefault(pid, []).append(point_id)

        sky = self._local_sky.setdefault(pid, [])
        if sky:
            sky_rows = np.vstack([self._rows[i] for i in sky])
            if self._kernel.any_dominates(sky_rows, row):
                return point_id  # dominated locally: member, not skyline
            evict = self._kernel.dominated_in(sky_rows, row)
            if evict.any():
                self._local_sky[pid] = [
                    i for i, dead in zip(sky, evict) if not dead
                ]
        self._local_sky[pid].append(point_id)
        self._global_cache = None
        return point_id

    def bulk_load(self, points: np.ndarray) -> List[int]:
        """Insert a batch of services at once; returns their ids.

        Equivalent to repeated :meth:`insert` but vectorised: each affected
        partition recomputes its local skyline once, over its previous
        local skyline plus the arrivals (sound because a point dominated
        before the insertions stays dominated afterwards).
        """
        pts = validate_points(points)
        if pts.shape[0] == 0:
            return []
        assigned = self._partitioner.assign(pts)
        new_ids: List[int] = []
        touched: Dict[int, List[int]] = {}
        for row, pid in zip(pts, assigned):
            point_id = self._next_id
            self._next_id += 1
            self._rows[point_id] = np.array(row, dtype=np.float64)
            self._partition_of[point_id] = int(pid)
            self._members.setdefault(int(pid), []).append(point_id)
            touched.setdefault(int(pid), []).append(point_id)
            new_ids.append(point_id)
        for pid, arrivals in touched.items():
            candidates = self._local_sky.get(pid, []) + arrivals
            rows = np.vstack([self._rows[i] for i in candidates])
            result = bnl_skyline(rows, kernel=self._kernel)
            self._local_sky[pid] = [candidates[j] for j in result.indices]
        self._global_cache = None
        return new_ids

    def remove(self, point_id: int) -> None:
        """Drop a service; recomputes only its partition's local skyline
        (and only when the removed point was on it)."""
        if point_id not in self._rows:
            raise KeyError(f"unknown point id {point_id}")
        pid = self._partition_of.pop(point_id)
        self._members[pid].remove(point_id)
        del self._rows[point_id]

        sky = self._local_sky.get(pid, [])
        if point_id in sky:
            # Points the victim dominated may resurface: recompute from members.
            members = self._members[pid]
            if members:
                rows = np.vstack([self._rows[i] for i in members])
                result = bnl_skyline(rows, kernel=self._kernel)
                self._local_sky[pid] = [members[j] for j in result.indices]
            else:
                self._local_sky[pid] = []
        # Invalidate the lazy global cache unconditionally — also for
        # non-skyline members.  The set of global-skyline *ids* is provably
        # unchanged in that case (the victim is dominated by a local-skyline
        # point, transitively by a global one), but downstream consumers —
        # the serving layer's versioned result cache in particular — treat
        # a cached array as "derived from the current membership", and
        # keeping it alive across *any* remove ties correctness to a
        # subtle transitivity argument instead of an invariant.
        self._global_cache = None
