"""lock-order-cycle: inconsistent lock acquisition order across the program.

Two locks taken in opposite orders on two code paths deadlock the moment
two threads interleave those paths — and with the serving plane calling
through metrics callbacks into stores and caches, the paths span modules
no single-file rule can see.  This rule asks the flow layer
(:mod:`repro.analysis.flow`) for the whole-program lock acquisition graph
— an edge ``A → B`` wherever B is acquired (possibly through a chain of
calls, property getters, dunders, and registered callbacks) while A is
held — and reports every strongly-connected component as one finding,
anchored at the earliest witness acquisition with the full call chain in
the message.

A non-reentrant ``threading.Lock`` re-acquired while already held is the
degenerate single-lock cycle (guaranteed self-deadlock) and is reported
the same way; re-acquiring an ``RLock`` is reentrant and exempt.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.base import Rule, register
from repro.analysis.findings import Finding
from repro.analysis.flow import flow_for_project
from repro.analysis.flow.locks import EdgeWitness, LockCycle
from repro.analysis.project import Project


@register
class LockOrderCycleRule(Rule):
    """Lock acquisition cycles across call / callback chains deadlock."""

    id = "lock-order-cycle"

    def check(self, project: Project) -> Iterator[Finding]:
        analysis = flow_for_project(project)
        for cycle in analysis.cycles():
            witness = _anchor(cycle)
            if witness is None:
                continue
            yield self.finding(witness.module, witness.node, _message(cycle, witness))


def _anchor(cycle: LockCycle) -> EdgeWitness | None:
    """Earliest witness edge (path, line) — the finding's stable anchor."""
    best: EdgeWitness | None = None
    for edge in cycle.edges:
        key = (edge.module.path, getattr(edge.node, "lineno", 0))
        if best is None or key < (best.module.path, getattr(best.node, "lineno", 0)):
            best = edge
    return best


def _message(cycle: LockCycle, witness: EdgeWitness) -> str:
    labels = [lock.label() for lock in cycle.locks]
    via = " -> ".join(witness.chain)
    if len(cycle.locks) == 1:
        return (
            f"non-reentrant lock {labels[0]} may be re-acquired while "
            f"already held (self-deadlock); witness path: {via}"
        )
    ring = " -> ".join([*labels, labels[0]])
    return (
        f"potential deadlock: locks acquired in conflicting orders "
        f"forming cycle {ring}; witness path for "
        f"{witness.src.label()} -> {witness.dst.label()}: {via}"
    )
