"""Clean fixture: every shared-state write sits under ``with self._lock``."""

import threading


class Buffer:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []
        self.count = 0

    def push(self, item):
        with self._lock:
            self._items.append(item)
            self.count += 1

    def drain(self):
        with self._lock:
            items = self._items
            self._items = []
            self.count = 0
        return items
