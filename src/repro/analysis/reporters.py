"""Lint output renderers: human text, machine JSON, and SARIF.

The JSON document is the CI artifact format: a versioned envelope with one
record per finding (including its baseline fingerprint) plus the run
summary, so a workflow can both gate on ``exit_code`` and diff reports
across commits.  The SARIF 2.1.0 document is for code-scanning UIs
(GitHub's ``upload-sarif`` action and friends): full rule metadata in the
tool descriptor, and the baseline fingerprint exposed through
``partialFingerprints`` so the platform can track a finding across
commits the same way ``--baseline`` does.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List

from repro.analysis.engine import PARSE_RULE_ID, LintResult
from repro.analysis.findings import Finding
from repro.analysis.suppressions import PRAGMA_RULE_ID

JSON_VERSION = 1
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Descriptions for the engine's synthetic rule ids (no Rule class).
_SYNTHETIC_RULES = {
    PRAGMA_RULE_ID: "Suppression pragma is malformed or names an unknown rule.",
    PARSE_RULE_ID: "File could not be parsed; nothing in it was checked.",
}


def render_text(result: LintResult, *, root: str | None = None) -> str:
    """GCC-style ``path:line:col: severity rule: message`` lines + summary."""
    lines: List[str] = []
    for finding in result.findings:
        path = _display_path(finding.path, root)
        where = f" [{finding.symbol}]" if finding.symbol else ""
        lines.append(
            f"{path}:{finding.line}:{finding.col}: "
            f"{finding.severity.value} {finding.rule_id}: "
            f"{finding.message}{where}"
        )
    summary = result.summary()
    lines.append(
        f"{summary['findings']} finding(s) "
        f"({summary['errors']} error(s)) in {summary['files']} file(s); "
        f"{summary['suppressed']} suppressed, "
        f"{summary['baselined']} baselined"
    )
    return "\n".join(lines)


def render_json(result: LintResult, *, root: str | None = None) -> str:
    """Versioned JSON envelope: findings + summary."""
    payload = {
        "version": JSON_VERSION,
        "findings": [
            {**f.as_dict(), "path": _display_path(f.path, root)}
            for f in result.findings
        ],
        "summary": result.summary(),
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def render_sarif(result: LintResult, *, root: str | None = None) -> str:
    """SARIF 2.1.0 document: one run, full rule metadata, fingerprints."""
    from repro import __version__
    from repro.analysis.base import all_rules

    descriptions = dict(_SYNTHETIC_RULES)
    severities: Dict[str, str] = {}
    for rule in all_rules():
        descriptions[rule.id] = type(rule).description()
        severities[rule.id] = rule.severity.value
    # Every id the run was configured with, plus any synthetic id that
    # actually produced a finding, in one stable order.
    rule_ids = sorted(
        set(result.rule_ids) | {f.rule_id for f in result.findings}
    )
    rule_index = {rule_id: index for index, rule_id in enumerate(rule_ids)}
    driver: Dict[str, Any] = {
        "name": "repro-lint",
        "version": __version__,
        "informationUri": "docs/static_analysis.md",
        "rules": [
            {
                "id": rule_id,
                "shortDescription": {
                    "text": descriptions.get(rule_id, rule_id)
                },
                "defaultConfiguration": {
                    "level": severities.get(rule_id, "error"),
                },
            }
            for rule_id in rule_ids
        ],
    }
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {"driver": driver},
                "results": [
                    _sarif_result(f, rule_index, root)
                    for f in result.findings
                ],
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def _sarif_result(
    finding: Finding, rule_index: Dict[str, int], root: str | None
) -> Dict[str, Any]:
    uri = _display_path(finding.path, root).replace(os.sep, "/")
    return {
        "ruleId": finding.rule_id,
        "ruleIndex": rule_index[finding.rule_id],
        "level": finding.severity.value,
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": uri},
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                },
                "logicalLocations": (
                    [{"fullyQualifiedName": finding.symbol}]
                    if finding.symbol
                    else []
                ),
            }
        ],
        "partialFingerprints": {
            "reproFingerprint/v2": finding.fingerprint(),
        },
    }


def _display_path(path: str, root: str | None) -> str:
    if root:
        try:
            rel = os.path.relpath(path, root)
        except ValueError:  # different drive (Windows)
            return path
        if not rel.startswith(".."):
            return rel
    return path
