"""pickle-safety: everything crossing the process-pool boundary must pickle.

The process executor ships each task as ``(JobSpec, index, payload)`` via
:mod:`pickle`; the spec carries the mapper/reducer/combiner *classes*, the
partitioner, and the params dict.  A lambda, a class defined inside a
function, or a nested function in any of those slots imports fine, passes
serial and thread runs — and then dies at submission time the first time
someone sets ``REPRO_EXECUTOR=processes``.  This pack catches those shapes
statically at the ``Job(...)`` / ``JobConf(...)`` construction site.

Flagged:

* a ``lambda`` passed as ``mapper=`` / ``reducer=`` / ``combiner=``;
* a UDF argument resolving to a class or function defined inside a
  function body (pickle serializes classes by module-level qualname);
* ``JobConf(partitioner=lambda ...)`` and ``lambda``/nested-function
  values inside ``JobConf(params={...})`` (params travel to every task);
* a ``lambda`` or locally-defined function submitted straight to an
  executor (``ex.submit(lambda: ...)``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Rule, register
from repro.analysis.findings import Finding
from repro.analysis.project import Module, Project, dotted_name, enclosing_symbol
from repro.analysis.rules._udf import collect_udf_uses


@register
class PickleSafetyRule(Rule):
    """No lambdas, local classes, or nested functions on process-pool paths."""

    id = "pickle-safety"

    def check(self, project: Project) -> Iterator[Finding]:
        yield from self._check_udf_uses(project)
        for module in sorted(project.modules.values(), key=lambda m: m.path):
            yield from self._check_module_calls(module)

    # -- Job(...) UDF slots -------------------------------------------------------

    def _check_udf_uses(self, project: Project) -> Iterator[Finding]:
        for use in collect_udf_uses(project):
            if isinstance(use.value, ast.Lambda):
                yield self.finding(
                    use.module,
                    use.value,
                    f"lambda passed as {use.role}= is not picklable: the "
                    "process executor ships UDF classes by module-level "
                    "qualname",
                )
                continue
            if use.local_def is not None:
                kind = (
                    "class"
                    if isinstance(use.local_def, ast.ClassDef)
                    else "function"
                )
                name = getattr(use.local_def, "name", "<lambda>")
                yield self.finding(
                    use.module,
                    use.value,
                    f"{use.role}= resolves to {kind} {name!r} defined inside "
                    f"a function: local {kind}es cannot be pickled to "
                    "process-pool workers (pickle serializes by "
                    "module-level qualname)",
                )

    # -- JobConf / submit call sites ---------------------------------------------

    def _check_module_calls(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func)
            tail = callee.rsplit(".", 1)[-1] if callee else ""
            if tail == "JobConf":
                yield from self._check_jobconf(module, node)
            elif isinstance(node.func, ast.Attribute) and node.func.attr == "submit":
                yield from self._check_submit(module, node)

    def _check_jobconf(self, module: Module, call: ast.Call) -> Iterator[Finding]:
        for keyword in call.keywords:
            if keyword.arg == "partitioner" and isinstance(
                keyword.value, ast.Lambda
            ):
                yield self.finding(
                    module,
                    keyword.value,
                    "JobConf(partitioner=lambda ...) is not picklable: use a "
                    "module-level Partitioner subclass",
                )
            if keyword.arg == "params" and isinstance(keyword.value, ast.Dict):
                for key, value in zip(keyword.value.keys, keyword.value.values):
                    if isinstance(value, ast.Lambda):
                        label = _dict_key_label(key)
                        yield self.finding(
                            module,
                            value,
                            f"lambda in JobConf params[{label}] is not "
                            "picklable: params travel to every task via the "
                            "JobSpec",
                        )

    def _check_submit(self, module: Module, call: ast.Call) -> Iterator[Finding]:
        for arg in call.args:
            if isinstance(arg, ast.Lambda):
                symbol = enclosing_symbol(module.tree, call)
                where = f" in {symbol}" if symbol else ""
                yield self.finding(
                    module,
                    arg,
                    f"lambda submitted to an executor{where} is not "
                    "picklable by the process backend; submit a module-level "
                    "function",
                )


def _dict_key_label(key: ast.expr | None) -> str:
    if isinstance(key, ast.Constant):
        return repr(key.value)
    return "..."
