"""Tests for mapper/reducer execution and the map-side combiner."""

import pytest

from repro.mapreduce.counters import Counters
from repro.mapreduce.errors import TaskError
from repro.mapreduce.tasks import (
    IdentityMapper,
    IdentityReducer,
    MapContext,
    Mapper,
    ReduceContext,
    Reducer,
    run_map_task,
    run_reduce_task,
)


class TokenMapper(Mapper):
    def map(self, key, value, ctx):
        for word in value.split():
            ctx.emit(word, 1)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


class FailingMapper(Mapper):
    def map(self, key, value, ctx):
        raise RuntimeError("boom")


class ParamEchoMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(key, self.params["tag"])


def _hash_partition(key, n):
    return hash(key) % n


class TestRunMapTask:
    def test_basic_emit_and_partition(self):
        buffers, counters, duration, rin, rout = run_map_task(
            "map-0",
            TokenMapper,
            [(None, "a b"), (None, "b c")],
            {},
            2,
            lambda k, n: 0 if k < "b" else 1,
            None,
            0,
        )
        assert rin == 2 and rout == 4
        assert sorted(buffers[0]) == [("a", 1)]
        assert sorted(buffers[1]) == [("b", 1), ("b", 1), ("c", 1)]
        assert duration >= 0
        assert counters.value("framework", "map_input_records") == 2

    def test_params_reach_mapper(self):
        buffers, *_ = run_map_task(
            "map-0",
            ParamEchoMapper,
            [("k", None)],
            {"tag": "hello"},
            1,
            _hash_partition,
            None,
            0,
        )
        assert buffers[0] == [("k", "hello")]

    def test_user_error_wrapped(self):
        with pytest.raises(TaskError) as info:
            run_map_task(
                "map-3",
                FailingMapper,
                [(None, "x")],
                {},
                1,
                _hash_partition,
                None,
                0,
            )
        assert info.value.task_id == "map-3"
        assert isinstance(info.value.cause, RuntimeError)

    def test_bad_partition_index_rejected(self):
        with pytest.raises(TaskError):
            run_map_task(
                "map-0",
                IdentityMapper,
                [("k", 1)],
                {},
                2,
                lambda k, n: 5,
                None,
                0,
            )

    def test_identity_mapper(self):
        buffers, *_ = run_map_task(
            "map-0",
            IdentityMapper,
            [("k", "v")],
            {},
            1,
            _hash_partition,
            None,
            0,
        )
        assert buffers[0] == [("k", "v")]


class TestCombiner:
    def test_final_combine_shrinks_output(self):
        buffers, counters, _, _, rout = run_map_task(
            "map-0",
            TokenMapper,
            [(None, "a a a b")],
            {},
            1,
            _hash_partition,
            SumReducer,
            0,
        )
        assert sorted(buffers[0]) == [("a", 3), ("b", 1)]
        assert rout == 2  # post-combine record count
        assert counters.value("framework", "combiner_invocations") == 1

    def test_spill_threshold_triggers_multiple_combines(self):
        buffers, counters, *_ = run_map_task(
            "map-0",
            TokenMapper,
            [(None, "a a"), (None, "a a"), (None, "a a")],
            {},
            1,
            _hash_partition,
            SumReducer,
            2,
        )
        assert buffers[0] == [("a", 6)]
        assert counters.value("framework", "combiner_invocations") >= 2

    def test_combiner_result_matches_no_combiner_after_reduce(self):
        records = [(None, "x y x"), (None, "y y z")]
        for combiner in (None, SumReducer):
            buffers, *_ = run_map_task(
                "m", TokenMapper, records, {}, 1, _hash_partition, combiner, 0
            )
            grouped = {}
            for k, v in buffers[0]:
                grouped.setdefault(k, []).append(v)
            out, *_ = run_reduce_task(
                "r", SumReducer, sorted(grouped.items()), {}
            )
            assert dict(out) == {"x": 2, "y": 3, "z": 1}


class TestRunReduceTask:
    def test_basic(self):
        out, counters, duration, rin, rout = run_reduce_task(
            "reduce-0",
            SumReducer,
            [("a", [1, 2]), ("b", [3])],
            {},
        )
        assert out == [("a", 3), ("b", 3)]
        assert rin == 3 and rout == 2
        assert counters.value("framework", "reduce_input_records") == 3

    def test_empty_input(self):
        out, _, _, rin, rout = run_reduce_task("reduce-0", SumReducer, [], {})
        assert out == [] and rin == 0 and rout == 0

    def test_identity_reducer(self):
        out, *_ = run_reduce_task(
            "r", IdentityReducer, [("k", [1, 2])], {}
        )
        assert out == [("k", 1), ("k", 2)]

    def test_user_error_wrapped(self):
        class Bad(Reducer):
            def reduce(self, key, values, ctx):
                raise ValueError("nope")

        with pytest.raises(TaskError) as info:
            run_reduce_task("reduce-7", Bad, [("k", [1])], {})
        assert info.value.task_id == "reduce-7"


class TestContexts:
    def test_map_context_counts(self):
        ctx = MapContext({}, Counters(), 2, _hash_partition)
        ctx.emit("a", 1)
        ctx.emit("b", 2)
        assert ctx.records_out == 2

    def test_map_context_rejects_zero_partitions(self):
        with pytest.raises(ValueError):
            MapContext({}, Counters(), 0, _hash_partition)

    def test_reduce_context_collects(self):
        ctx = ReduceContext({"p": 1}, Counters())
        ctx.emit("k", "v")
        ctx.increment("g", "n", 2)
        assert ctx.output == [("k", "v")]
        assert ctx.counters.value("g", "n") == 2
