"""Tests for the cluster spec and the deterministic timing simulation."""

import pytest

from repro.mapreduce import Job, JobConf, Mapper, Reducer, run_job
from repro.mapreduce.cluster import ClusterSpec
from repro.mapreduce.simulation import (
    SimulatedJob,
    simulate_job,
    simulate_pipeline,
    server_sweep,
)


class TokenMapper(Mapper):
    def map(self, key, value, ctx):
        for word in value.split():
            ctx.emit(word, 1)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


@pytest.fixture(scope="module")
def measured_job():
    job = Job(
        name="wc",
        mapper=TokenMapper,
        reducer=SumReducer,
        conf=JobConf(num_reducers=4, num_map_tasks=6),
    )
    records = [(None, f"w{i % 5} w{i % 3}") for i in range(200)]
    return run_job(job, records=records)


class TestClusterSpec:
    def test_slots(self):
        c = ClusterSpec(num_nodes=4, map_slots_per_node=2, reduce_slots_per_node=3)
        assert c.map_slots == 8
        assert c.reduce_slots == 12

    def test_aggregate_bandwidth_scales_with_nodes(self):
        small = ClusterSpec(num_nodes=2, network_mbps_per_node=10)
        big = ClusterSpec(num_nodes=8, network_mbps_per_node=10)
        assert big.aggregate_shuffle_bytes_per_s == 4 * small.aggregate_shuffle_bytes_per_s

    def test_scaled_copy(self):
        base = ClusterSpec(num_nodes=4, speed_factor=2.0)
        bigger = base.scaled(num_nodes=16)
        assert bigger.num_nodes == 16
        assert bigger.speed_factor == 2.0
        assert base.num_nodes == 4  # frozen original untouched

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 0},
            {"num_nodes": 2, "map_slots_per_node": 0},
            {"num_nodes": 2, "task_launch_s": -1},
            {"num_nodes": 2, "speed_factor": -0.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ClusterSpec(**kwargs)


class TestSimulateJob:
    def test_phase_structure(self, measured_job):
        cluster = ClusterSpec(num_nodes=2, task_launch_s=0.1, job_overhead_s=1.0)
        sim = simulate_job(measured_job, cluster)
        assert isinstance(sim, SimulatedJob)
        assert sim.map_time_s >= cluster.job_overhead_s
        assert sim.reduce_time_s > 0
        assert sim.total_s == pytest.approx(sim.map_time_s + sim.reduce_time_s)

    def test_speed_factor_scales_compute_not_overhead(self, measured_job):
        base = ClusterSpec(num_nodes=2, task_launch_s=0.0, job_overhead_s=0.0)
        slow = base.scaled(speed_factor=10.0)
        fast_sim = simulate_job(measured_job, base)
        slow_sim = simulate_job(measured_job, slow)
        assert slow_sim.map_makespan_s == pytest.approx(
            10 * fast_sim.map_makespan_s, rel=1e-6
        )

    def test_more_nodes_never_slower(self, measured_job):
        base = ClusterSpec(num_nodes=1)
        times = [
            simulate_job(measured_job, base.scaled(num_nodes=n)).total_s
            for n in (1, 2, 4, 8)
        ]
        for a, b in zip(times, times[1:]):
            assert b <= a + 1e-9

    def test_shuffle_time_positive_when_bytes_flow(self, measured_job):
        sim = simulate_job(measured_job, ClusterSpec(num_nodes=2))
        assert measured_job.shuffle_stats.bytes > 0
        assert sim.shuffle_s >= ClusterSpec(num_nodes=2).shuffle_latency_s

    def test_shuffle_time_zero_without_bytes(self, measured_job):
        from dataclasses import replace

        empty = replace(measured_job, shuffle_stats=type(measured_job.shuffle_stats)())
        sim = simulate_job(empty, ClusterSpec(num_nodes=2))
        assert sim.shuffle_s == 0.0

    def test_launch_overhead_counted_per_task(self, measured_job):
        quiet = ClusterSpec(num_nodes=1, task_launch_s=0.0, job_overhead_s=0.0)
        noisy = quiet.scaled(task_launch_s=1.0)
        sim_q = simulate_job(measured_job, quiet)
        sim_n = simulate_job(measured_job, noisy)
        num_map = len(measured_job.map_stats)
        # Single node, two map slots: overheads serialize over slots.
        expected_extra = num_map / quiet.map_slots_per_node * 1.0
        assert sim_n.map_makespan_s - sim_q.map_makespan_s == pytest.approx(
            expected_extra, rel=0.2
        )


class TestPipelineAndSweep:
    def test_pipeline_sums_jobs(self, measured_job):
        cluster = ClusterSpec(num_nodes=2)
        single = simulate_job(measured_job, cluster)
        pipe = simulate_pipeline([measured_job, measured_job], cluster)
        assert pipe.total_s == pytest.approx(2 * single.total_s)
        assert pipe.map_time_s == pytest.approx(2 * single.map_time_s)

    def test_server_sweep_shapes(self, measured_job):
        base = ClusterSpec(num_nodes=1)
        sweep = server_sweep([measured_job], [1, 2, 4], base)
        assert [p.jobs[0].num_nodes for p in sweep] == [1, 2, 4]
        totals = [p.total_s for p in sweep]
        assert totals == sorted(totals, reverse=True)
