"""Runner-level fault tolerance: retries, timeouts, speculation, degradation.

Each test injects faults through a :class:`FaultPlan` and asserts the runner
recovers to the *same* wordcount answer a fault-free run produces — plus the
framework counters that prove the recovery path actually ran.  The mocked
clock makes backoff spacing assertable without real sleeps.

Everything here is module-level so jobs stay picklable under the process
executor (same convention as test_executors.py).
"""

import pickle

import pytest

from repro.mapreduce import (
    EXECUTOR_NAMES,
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedFault,
    Job,
    JobConf,
    JobConfigError,
    JobFailedError,
    Mapper,
    PartitionLostError,
    Reducer,
    RetryPolicy,
    Runner,
    TaskTimeoutError,
)

POOL_WORKERS = 2


class TokenMapper(Mapper):
    def map(self, key, value, ctx):
        for word in value.split():
            ctx.emit(word, 1)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


WORDS = [(None, "a b a"), (None, "b b c"), (None, "c a d")]
EXPECTED = {"a": 3, "b": 3, "c": 2, "d": 1}


def _wordcount_job(**conf):
    conf.setdefault("num_reducers", 2)
    conf.setdefault("num_map_tasks", 3)
    return Job(
        name="wordcount",
        mapper=TokenMapper,
        reducer=SumReducer,
        conf=JobConf(**conf),
    )


def _run(executor, plan, policy=None, clock=None, records=WORDS):
    with Runner(
        executor,
        num_workers=POOL_WORKERS,
        retry_policy=policy,
        fault_plan=plan,
        clock=clock,
    ) as runner:
        return runner.run(_wordcount_job(), records=records)


def _framework(result, name):
    return result.counters.value("framework", name)


class FakeClock:
    """Monotonic clock whose sleeps advance time instantly (and are logged)."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def monotonic(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += max(0.0, seconds)


class TestRetryBackoffSpacing:
    def test_retries_sleep_exactly_the_policy_backoffs(self):
        plan = FaultPlan(
            rules=(FaultRule(fault="crash", kind="map", index=0, times=2),)
        )
        policy = RetryPolicy(
            max_retries=3, backoff_base_s=1.0, backoff_factor=2.0, jitter=0.0
        )
        clock = FakeClock()
        result = _run("serial", plan, policy, clock)
        assert dict(result.output_pairs()) == EXPECTED
        # Attempt 2 waits base, attempt 3 waits base*factor — no jitter.
        assert clock.sleeps == [1.0, 2.0]
        assert _framework(result, "task_retries") == 2

    def test_jittered_spacing_matches_the_seeded_policy_exactly(self):
        plan = FaultPlan(
            rules=(FaultRule(fault="crash", kind="map", index=0, times=2),)
        )
        policy = RetryPolicy(
            max_retries=3, backoff_base_s=1.0, jitter=0.5, seed=7
        )
        clock = FakeClock()
        result = _run("serial", plan, policy, clock)
        assert dict(result.output_pairs()) == EXPECTED
        expected = [policy.backoff_s("map-0", 2), policy.backoff_s("map-0", 3)]
        assert clock.sleeps == expected
        # Jitter moved the delays off the pre-jitter curve but kept them
        # inside the +/-50% band.
        for attempt, slept in zip((2, 3), clock.sleeps):
            base = policy.pre_jitter_backoff_s(attempt)
            assert base * 0.5 <= slept <= base * 1.5
            assert slept != base

    def test_zero_backoff_never_sleeps(self):
        plan = FaultPlan(
            rules=(FaultRule(fault="crash", kind="map", index=1, times=1),)
        )
        clock = FakeClock()
        result = _run("serial", plan, RetryPolicy(max_retries=1), clock)
        assert dict(result.output_pairs()) == EXPECTED
        # The retry is resubmitted in the same loop pass — no sleep at all.
        assert clock.sleeps == []


class TestTimeouts:
    @pytest.mark.parametrize("executor", EXECUTOR_NAMES)
    def test_cooperative_hang_times_out_and_retries_everywhere(self, executor):
        """A hang that meets the deadline costs exactly one timeout + retry
        on every executor — inline included, where no watchdog exists."""
        plan = FaultPlan(
            rules=(
                FaultRule(fault="hang", kind="map", index=0, hang_s=5.0, times=1),
            )
        )
        policy = RetryPolicy(max_retries=1, task_timeout_s=0.2)
        result = _run(executor, plan, policy)
        assert dict(result.output_pairs()) == EXPECTED
        assert not result.partial
        assert _framework(result, "task_timeouts") == 1
        assert _framework(result, "task_retries") == 1

    def test_noncooperative_hang_is_abandoned_by_the_watchdog(self):
        """A task that sleeps through its deadline is abandoned driver-side;
        the retry completes while the hung thread is still asleep."""
        plan = FaultPlan(
            rules=(
                FaultRule(
                    fault="hang", kind="map", index=0,
                    hang_s=0.5, cooperative=False, times=1,
                ),
            )
        )
        policy = RetryPolicy(max_retries=1, task_timeout_s=0.1)
        result = _run("threads", plan, policy)
        assert dict(result.output_pairs()) == EXPECTED
        assert _framework(result, "task_timeouts") == 1
        assert _framework(result, "task_retries") == 1

    def test_task_timeout_error_pickles_losslessly(self):
        """TaskError.__reduce__ replays (task_id, cause); the timeout
        subclass carries (task_id, timeout_s) instead and must override it,
        or the process pool mangles every timeout it transports."""
        original = TaskTimeoutError("map-3", 0.25)
        clone = pickle.loads(pickle.dumps(original))
        assert isinstance(clone, TaskTimeoutError)
        assert clone.task_id == "map-3"
        assert clone.timeout_s == 0.25
        assert str(clone) == str(original)

    def test_hung_map_cannot_wedge_streaming_finalize(self):
        """StreamingShuffle.finalize blocks until every map task's buffers
        arrive; a hung map must be timed out and retried so the gate opens.
        (With no timeout this configuration would deadlock the job.)"""
        plan = FaultPlan(
            rules=(
                FaultRule(fault="hang", kind="map", index=1, hang_s=10.0, times=1),
            )
        )
        policy = RetryPolicy(max_retries=2, task_timeout_s=0.2)
        result = _run("threads", plan, policy)
        assert dict(result.output_pairs()) == EXPECTED
        assert _framework(result, "task_timeouts") == 1


class TestSpeculation:
    def test_straggler_gets_a_backup_and_the_answer_is_unchanged(self):
        plan = FaultPlan(
            rules=(
                FaultRule(fault="slow", kind="map", index=2, slow_s=0.5, times=1),
            )
        )
        policy = RetryPolicy(
            speculation=True,
            speculation_factor=1.5,
            speculation_min_completed=2,
            speculation_poll_s=0.01,
        )
        result = _run("threads", plan, policy)
        assert dict(result.output_pairs()) == EXPECTED
        assert not result.partial
        assert _framework(result, "speculative_attempts") == 1
        # The clean backup won; no retries were spent on the straggler.
        assert _framework(result, "task_retries") == 0


class TestDegradedMode:
    def test_poisoned_reduce_degrades_to_a_partial_result(self):
        plan = FaultPlan(
            rules=(FaultRule(fault="poison", kind="reduce", index=0),)
        )
        policy = RetryPolicy(max_retries=1, on_lost="degrade")
        result = _run("serial", plan, policy)
        assert result.partial
        assert result.lost_partitions == ["reduce-0"]
        assert _framework(result, "tasks_lost") == 1
        # Exhausting the budget still costs its retries first.
        assert _framework(result, "task_retries") == 1
        # The surviving partition's counts are exact, not approximate.
        survived = dict(result.output_pairs())
        assert survived
        assert all(EXPECTED[word] == n for word, n in survived.items())
        with pytest.raises(PartitionLostError) as info:
            result.require_complete()
        assert "reduce-0" in str(info.value)

    def test_poisoned_map_degrades_without_wedging_the_shuffle(self):
        """A lost map commits empty buffers so the streaming shuffle's
        completeness gate still opens; the answer undercounts, only ever in
        the lost split's direction."""
        plan = FaultPlan(rules=(FaultRule(fault="poison", kind="map", index=0),))
        policy = RetryPolicy(max_retries=1, on_lost="degrade")
        result = _run("serial", plan, policy)
        assert result.partial
        assert result.lost_partitions == ["map-0"]
        survived = dict(result.output_pairs())
        assert all(n <= EXPECTED[word] for word, n in survived.items())
        # Split 0 is "a b a": those two words lost counts, the others kept
        # theirs.
        assert survived["c"] == EXPECTED["c"]
        assert survived["d"] == EXPECTED["d"]
        assert survived["a"] == EXPECTED["a"] - 2
        assert survived["b"] == EXPECTED["b"] - 1

    def test_default_on_lost_fail_raises_with_every_attempt(self):
        plan = FaultPlan(
            rules=(FaultRule(fault="poison", kind="reduce", index=0),)
        )
        with pytest.raises(JobFailedError) as info:
            _run("serial", plan, RetryPolicy(max_retries=2))
        assert len(info.value.failures) == 3  # 1 try + 2 retries
        assert all(
            isinstance(f.cause, InjectedFault) for f in info.value.failures
        )

    @pytest.mark.parametrize("executor", EXECUTOR_NAMES)
    def test_degraded_result_is_identical_across_executors(self, executor):
        plan = FaultPlan(rules=(FaultRule(fault="poison", kind="map", index=0),))
        policy = RetryPolicy(max_retries=0, on_lost="degrade")
        baseline = _run("serial", plan, policy)
        result = _run(executor, plan, policy)
        assert result.partial and result.lost_partitions == ["map-0"]
        assert result.outputs == baseline.outputs


class TestPolicyAndPlanResolution:
    def test_plan_embedded_policy_is_adopted(self):
        plan = FaultPlan(
            rules=(FaultRule(fault="crash", kind="map", times=1),),
            policy=RetryPolicy(max_retries=2),
        )
        # No explicit retry_policy: the plan's own budget rescues its own
        # faults (one crash per map task).
        result = _run("serial", plan)
        assert dict(result.output_pairs()) == EXPECTED
        assert _framework(result, "task_retries") == 3

    def test_explicit_policy_overrides_the_plan_policy(self):
        plan = FaultPlan(
            rules=(FaultRule(fault="crash", kind="map", times=1),),
            policy=RetryPolicy(max_retries=2),
        )
        with pytest.raises(JobFailedError):
            _run("serial", plan, RetryPolicy(max_retries=0))

    def test_plan_replays_identically_on_every_run(self):
        plan = FaultPlan(
            seed=13,
            rules=(
                FaultRule(
                    fault="crash", kind="map", probability=0.5, times=None
                ),
            ),
        )
        policy = RetryPolicy(max_retries=4)
        first = _run("serial", plan, policy)
        second = _run("serial", plan, policy)
        assert first.outputs == second.outputs
        assert _framework(first, "task_retries") == _framework(
            second, "task_retries"
        )

    def test_injector_instance_accumulates_across_runs(self):
        """Passing an injector (not a plan) reuses its budgets and event
        log: the second run sees the crash-once rule already spent."""
        injector = FaultInjector(
            FaultPlan(rules=(FaultRule(fault="crash", kind="map", index=0),))
        )
        policy = RetryPolicy(max_retries=1)
        first = _run("serial", injector, policy)
        second = _run("serial", injector, policy)
        assert _framework(first, "task_retries") == 1
        assert _framework(second, "task_retries") == 0
        assert [(e.task_id, e.attempt) for e in injector.events] == [("map-0", 1)]

    def test_invalid_retry_policy_is_a_config_error(self):
        with pytest.raises(JobConfigError, match="max_retries"):
            Runner("serial", retry_policy=RetryPolicy(max_retries=-1))
