"""Process-pool executor: real parallelism, pickled payloads."""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Callable

from repro.mapreduce.errors import JobConfigError
from repro.mapreduce.executors.base import Executor

__all__ = ["ProcessExecutor"]


class ProcessExecutor(Executor):
    """Runs tasks in a lazily-created :class:`ProcessPoolExecutor`.

    The closest analogue to Hadoop's task slots: every task body and its
    payload travel to a worker process by pickle, so user mapper/reducer
    classes must be module-level.  The pool is created on first submit and
    *reused across phases and chained jobs* until :meth:`shutdown` — the
    old per-phase pools paid worker spin-up four times per two-job chain.

    Worker processes cannot reach the driver's tracer or metrics registry;
    tasks report their measured durations back and the runner records them
    as synthetic spans (histograms observed inside task code stay in the
    worker and are lost — use the serial executor for measurement runs).

    Timeouts: a queued task can still be cancelled (base ``cancel``), but a
    task already running in a worker process cannot be interrupted without
    killing the pool — the runner abandons the future instead and the
    worker stays suspect (``executor.suspect_workers``) until the body
    returns.
    """

    name = "processes"

    def __init__(self, num_workers: int | None = None):
        if num_workers is not None and num_workers <= 0:
            raise JobConfigError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers or (os.cpu_count() or 1)
        self._pool: ProcessPoolExecutor | None = None

    def submit(self, fn: Callable[..., Any], /, *args: Any) -> Future:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.num_workers)
        return self._pool.submit(fn, *args)

    def shutdown(self, wait: bool = True) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=wait)
            self._pool = None
