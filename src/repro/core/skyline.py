"""Unified single-machine skyline API.

``skyline(points, algorithm=...)`` dispatches to one of the library's
implementations and always returns ascending input indices, so algorithms
are interchangeable and cross-checkable:

* ``"bnl"`` — block-nested-loops (the paper's choice), :mod:`repro.core.bnl`
* ``"sfs"`` — sort-filter-skyline, :mod:`repro.core.sfs`
* ``"dnc"`` — divide-and-conquer, :mod:`repro.core.dnc`
* ``"bbs"`` — branch-and-bound over an R-tree, :mod:`repro.core.bbs`
* ``"numpy"`` — brute-force vectorised reference (complement of
  :func:`repro.core.dominance.dominated_mask`)

For distributed execution see :mod:`repro.core.mr_skyline`.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.core.bbs import bbs_skyline
from repro.core.bnl import bnl_skyline
from repro.core.dnc import dnc_skyline
from repro.core.dominance import DominanceCounter, dominated_mask, validate_points
from repro.core.sfs import sfs_skyline

__all__ = ["Algorithm", "skyline", "skyline_points", "skyline_numpy", "is_skyline"]

Algorithm = Literal["bnl", "sfs", "dnc", "bbs", "numpy"]

_ALGORITHMS = ("bnl", "sfs", "dnc", "bbs", "numpy")


def skyline_numpy(
    points: np.ndarray, *, counter: DominanceCounter | None = None
) -> np.ndarray:
    """Brute-force reference: indices of points dominated by nobody."""
    pts = validate_points(points)
    # The oracle the parity suite checks kernels *against* — it must stay
    # kernel-independent.  # repro: allow[kernel-seam]
    mask = ~dominated_mask(pts, counter=counter)
    return np.flatnonzero(mask).astype(np.intp)


def skyline(
    points: np.ndarray,
    *,
    algorithm: Algorithm = "bnl",
    counter: DominanceCounter | None = None,
    **kwargs,
) -> np.ndarray:
    """Ascending input indices of the skyline of ``points``.

    Extra keyword arguments are forwarded to the chosen algorithm (e.g.
    ``window_size`` for BNL, ``score`` for SFS, ``kernel`` for either —
    the :mod:`repro.core.kernels` backend selector).
    """
    if algorithm == "bnl":
        return bnl_skyline(points, counter=counter, **kwargs).indices
    if algorithm == "sfs":
        return sfs_skyline(points, counter=counter, **kwargs).indices
    if algorithm == "dnc":
        if kwargs:
            raise TypeError(f"dnc takes no extra options, got {sorted(kwargs)}")
        return dnc_skyline(points, counter=counter).indices
    if algorithm == "bbs":
        return bbs_skyline(points, counter=counter, **kwargs).indices
    if algorithm == "numpy":
        if kwargs:
            raise TypeError(f"numpy takes no extra options, got {sorted(kwargs)}")
        return skyline_numpy(points, counter=counter)
    raise ValueError(f"unknown algorithm {algorithm!r}; choose from {_ALGORITHMS}")


def skyline_points(
    points: np.ndarray, *, algorithm: Algorithm = "bnl", **kwargs
) -> np.ndarray:
    """The skyline rows themselves (convenience wrapper)."""
    pts = validate_points(points)
    return pts[skyline(pts, algorithm=algorithm, **kwargs)]


def is_skyline(points: np.ndarray, candidate_indices: np.ndarray) -> bool:
    """Check that ``candidate_indices`` is exactly the skyline of ``points``.

    Used by tests and by the examples to validate distributed results
    against the single-machine reference.
    """
    expected = skyline_numpy(points)
    got = np.sort(np.asarray(candidate_indices, dtype=np.intp))
    return bool(expected.shape == got.shape and np.all(expected == got))
