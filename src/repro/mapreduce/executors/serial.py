"""Serial executor: tasks run inline, in submission order, in the driver."""

from __future__ import annotations

from concurrent.futures import Future
from typing import Any, Callable

from repro.mapreduce.executors.base import Executor

__all__ = ["SerialExecutor"]


class SerialExecutor(Executor):
    """Runs every task during :meth:`submit`, in the calling thread.

    This is the default and the *measurement* executor: tasks execute one
    at a time with nothing else on the interpreter, so their
    ``perf_counter_ns`` durations are clean inputs for the cluster
    simulator, and the runner can trace real (non-synthetic) nested task
    spans.  The returned future is already resolved — a task's exception
    is captured, not raised, so the runner's drain loop handles serial
    failures exactly like pool failures.
    """

    name = "serial"
    inline = True

    def submit(self, fn: Callable[..., Any], /, *args: Any) -> Future:
        future: Future = Future()
        try:
            future.set_result(fn(*args))
        # Not a swallow: the exception is transported through the future
        # and re-raised by the runner's drain loop, mirroring how a pool
        # executor surfaces worker failures.
        except BaseException as exc:  # repro: allow[exception-hygiene]
            future.set_exception(exc)
        return future

    def cancel(self, future: Future) -> bool:
        """Serial futures resolve during submit — nothing left to cancel."""
        return False
