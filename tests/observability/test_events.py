"""Tests for the bounded structured event log."""

import json

import pytest

from repro.observability.events import (
    DEFAULT_CAPACITY,
    EventLog,
    get_events,
    set_events,
)


class _Ticker:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        self.now += 1.0
        return self.now


class TestEmitTail:
    def test_sequence_numbers_are_monotonic(self):
        log = EventLog(capacity=8, time_fn=_Ticker())
        seqs = [log.emit("serve.shed", dataset="d").seq for _ in range(3)]
        assert seqs == [0, 1, 2]

    def test_tail_returns_newest_last(self):
        log = EventLog(capacity=8, time_fn=_Ticker())
        for i in range(5):
            log.emit("task.retry", task=f"t{i}")
        tail = log.tail(2)
        assert [e.attrs["task"] for e in tail] == ["t3", "t4"]

    def test_to_dict_flattens_attrs(self):
        log = EventLog(capacity=8, time_fn=_Ticker())
        log.emit("serve.degraded", dataset="qws", staleness=3)
        record = log.tail(1)[0].to_dict()
        assert record["kind"] == "serve.degraded"
        assert record["dataset"] == "qws"
        assert record["staleness"] == 3
        assert record["seq"] == 0
        assert record["ts"] == pytest.approx(101.0)

    def test_reserved_attr_names_rejected(self):
        log = EventLog(capacity=8)
        with pytest.raises(ValueError, match="reserved"):
            log.emit("x", seq=9)
        with pytest.raises(ValueError, match="reserved"):
            log.emit("x", ts=0.0, dataset="d")


class TestRingBound:
    def test_capacity_bounds_memory(self):
        log = EventLog(capacity=4, time_fn=_Ticker())
        for i in range(10):
            log.emit("cache.evict", n=i)
        tail = log.tail(100)
        assert len(tail) == 4
        assert [e.attrs["n"] for e in tail] == [6, 7, 8, 9]
        assert log.dropped == 6
        assert log.total_emitted == 10
        assert len(log) == 4

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_default_capacity(self):
        assert EventLog().capacity == DEFAULT_CAPACITY


class TestFilters:
    def _log(self):
        log = EventLog(capacity=32, time_fn=_Ticker())
        log.emit("serve.shed", dataset="a")
        log.emit("task.retry", task="m-0")
        log.emit("serve.degraded", dataset="a")
        log.emit("task.speculate", task="m-1")
        return log

    def test_kind_glob_filter(self):
        log = self._log()
        kinds = [e.kind for e in log.tail(10, kinds=["serve.*"])]
        assert kinds == ["serve.shed", "serve.degraded"]

    def test_multiple_globs_union(self):
        log = self._log()
        kinds = [e.kind for e in log.tail(10, kinds=["task.retry", "serve.shed"])]
        assert kinds == ["serve.shed", "task.retry"]

    def test_since_seq_incremental_poll(self):
        log = self._log()
        cursor = log.tail(10)[-1].seq
        log.emit("serve.shed", dataset="b")
        fresh = log.tail(10, since_seq=cursor)
        assert len(fresh) == 1
        assert fresh[0].attrs["dataset"] == "b"
        assert log.tail(10, since_seq=fresh[0].seq) == []

    def test_counts_by_kind(self):
        log = self._log()
        assert log.counts() == {
            "serve.degraded": 1,
            "serve.shed": 1,
            "task.retry": 1,
            "task.speculate": 1,
        }

    def test_counts_include_dropped_events(self):
        log = EventLog(capacity=2, time_fn=_Ticker())
        for _ in range(5):
            log.emit("cache.evict")
        assert log.counts() == {"cache.evict": 5}


class TestSerialization:
    def test_jsonl_and_dump_round_trip(self, tmp_path):
        log = EventLog(capacity=8, time_fn=_Ticker())
        log.emit("store.generation", dataset="qws", generation=2)
        log.emit("serve.shed", dataset="qws", reason="queue_full")
        path = tmp_path / "events.jsonl"
        written = log.dump(str(path))
        lines = path.read_text().splitlines()
        assert written == 2 and len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert records[0]["kind"] == "store.generation"
        assert records[1]["reason"] == "queue_full"
        assert log.to_jsonl() == path.read_text().rstrip("\n")

    def test_dump_honours_tail_filters(self, tmp_path):
        log = EventLog(capacity=8, time_fn=_Ticker())
        log.emit("serve.shed")
        log.emit("task.retry")
        path = tmp_path / "shed.jsonl"
        assert log.dump(str(path), kinds=["serve.*"]) == 1
        assert json.loads(path.read_text())["kind"] == "serve.shed"

    def test_clear_empties_ring_but_keeps_seq_climbing(self):
        log = EventLog(capacity=8, time_fn=_Ticker())
        log.emit("a")
        log.clear()
        assert log.tail(10) == []
        assert log.emit("b").seq == 1


class TestSingleton:
    def test_get_is_process_wide_and_swappable(self):
        default = get_events()
        assert get_events() is default
        custom = EventLog(capacity=4)
        assert set_events(custom) is custom
        assert get_events() is custom
        fresh = set_events(None)
        assert fresh is not custom
