"""Differential chaos: every executor x skyline method x canned fault plan.

The acceptance bar for the fault-tolerance layer: a run that crashes, hangs,
and slows tasks — then recovers via retries and timeouts — must produce the
*identical* global skyline (and identical per-partition local skylines) as a
fault-free serial run.  The injector's event log is the ground truth the
framework counters are checked against, so a plan that silently stopped
injecting would fail the suite rather than vacuously pass it.

Each plan embeds the RetryPolicy that survives it, mirroring how a CLI
chaos run ships both in one ``--faults`` file.
"""

import numpy as np
import pytest

from repro.core.mr_skyline import run_mr_skyline
from repro.mapreduce import (
    EXECUTOR_NAMES,
    FaultInjector,
    FaultPlan,
    FaultRule,
    RetryPolicy,
    Runner,
)

METHODS = ("dim", "grid", "angle")
NUM_WORKERS = 2
#: Small blocks so the partition job has several map tasks to sabotage.
BLOCK_ROWS = 64

#: Canned recoverable plans.  Every plan's retry budget strictly exceeds the
#: worst case its rules can inject per task, so no run may degrade or fail.
PLANS = {
    "crash-once-maps": FaultPlan(
        seed=1,
        rules=(FaultRule(fault="crash", kind="map", times=1),),
        policy=RetryPolicy(max_retries=2),
    ),
    "crash-twice-reduce0-slow-maps": FaultPlan(
        seed=2,
        rules=(
            FaultRule(fault="crash", kind="reduce", index=0, times=2),
            FaultRule(
                fault="slow",
                kind="map",
                times=None,
                probability=0.5,
                slow_s=0.001,
            ),
        ),
        policy=RetryPolicy(max_retries=3),
    ),
    "cooperative-hang-map0": FaultPlan(
        seed=3,
        rules=(FaultRule(fault="hang", kind="map", index=0, hang_s=5.0, times=1),),
        policy=RetryPolicy(max_retries=2, task_timeout_s=0.1),
    ),
    "mixed-chaos": FaultPlan(
        seed=4,
        rules=(
            FaultRule(fault="crash", kind="map", times=2, probability=0.4),
            FaultRule(fault="crash", kind="reduce", index=0, times=1),
        ),
        policy=RetryPolicy(
            max_retries=4,
            backoff_base_s=0.001,
            backoff_factor=2.0,
            backoff_max_s=0.01,
            jitter=0.5,
            seed=4,
        ),
    ),
}


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(11)
    return rng.random((300, 3))


@pytest.fixture(scope="module")
def baselines(points):
    return {
        method: run_mr_skyline(
            points,
            method=method,
            num_workers=NUM_WORKERS,
            executor="serial",
            block_rows=BLOCK_ROWS,
        )
        for method in METHODS
    }


@pytest.mark.parametrize("plan_name", sorted(PLANS))
@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("executor", EXECUTOR_NAMES)
class TestChaosDifferential:
    def test_skyline_survives_unchanged(
        self, executor, method, plan_name, points, baselines
    ):
        plan = PLANS[plan_name]
        injector = FaultInjector(plan)
        with Runner(
            executor, num_workers=NUM_WORKERS, fault_plan=injector
        ) as runner:
            result = run_mr_skyline(
                points,
                method=method,
                num_workers=NUM_WORKERS,
                runner=runner,
                block_rows=BLOCK_ROWS,
            )
        base = baselines[method]

        # The plan actually bit — a schedule that injected nothing would
        # make the parity assertions below vacuous.
        assert injector.injected > 0

        # Exact output parity: the global skyline and every partition's
        # local skyline are identical to the fault-free serial run.
        assert np.array_equal(result.global_indices, base.global_indices)
        assert result.local_skylines.keys() == base.local_skylines.keys()
        for part, indices in base.local_skylines.items():
            assert np.array_equal(result.local_skylines[part], indices)

        # Fully recovered: nothing degraded, nothing lost.
        assert not result.chain.partial
        assert result.chain.lost_partitions == []

        # Counter audit against the injector's event log: every injected
        # crash costs one retry; every cooperative hang costs one timeout
        # and one retry; slowdowns cost neither.
        by_action = injector.injected_by_action()
        assert result.counters.value("framework", "task_timeouts") == (
            by_action.get("hang", 0)
        )
        assert result.counters.value("framework", "task_retries") == (
            by_action.get("crash", 0) + by_action.get("hang", 0)
        )
        assert result.counters.value("framework", "tasks_lost") == 0
