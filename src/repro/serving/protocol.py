"""JSON-lines request protocol of ``repro serve``.

One request per line, one response per line.  Every request is an object
with an ``"op"`` field; every response has ``"ok": true/false``.  The ops:

``register``
    ``{"op": "register", "dataset": "qws", "points": [[...], ...]}`` or
    ``{"op": "register", "dataset": "qws", "generate": {"n": 500, "d": 4,
    "seed": 0}}`` (synthesises a QWS-like sample server-side, so clients
    don't ship megabytes of literals).  Optional ``scheme`` (default
    ``"angle"``) and ``partitions``.
``query``
    ``{"op": "query", "dataset": "qws", "kind": "skyline"}`` plus the
    kind-specific parameters (``k`` / ``lower`` + ``upper`` / ``dims``)
    and an optional ``deadline_s``.  Response carries ``ids``,
    ``generation``, ``cache_hit``, ``coalesced``, ``degraded``, ``status``.
``shard_query``
    The cluster fan-out leg (``docs/cluster.md``): like ``query`` but the
    response carries candidate ``rows`` alongside ``ids`` plus traffic
    accounting (``held`` / ``candidates`` / ``sent``), and an optional
    ``filters`` row list prunes dominated candidates before they cross
    the wire.
``insert`` / ``remove``
    Point mutations; responses carry the new ``generation`` (and the
    assigned ``id`` for inserts).
``stats`` / ``ping`` / ``shutdown``
    Operational introspection, liveness, and orderly stop.
``health`` / ``slo`` / ``events`` / ``metrics``
    The read-only telemetry plane (``docs/observability.md``):
    burn-driven health (``healthy`` / ``degraded`` / ``unhealthy``), the
    full multi-window SLO burn report, the structured event tail
    (optional ``n``, ``kinds`` glob list, ``since_seq`` for incremental
    polls), and the metrics registry as JSON (default) or
    ``"format": "prometheus"`` text exposition.  ``repro top`` is a
    client of exactly these verbs.

Failures are responses, not broken connections: an invalid request gets
``{"ok": false, "status": "error", "error": ...}``; an admission-control
rejection gets ``{"ok": false, "status": "rejected", "reason": ...}`` —
the JSON-lines analogue of HTTP 429.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.serving.queries import QuerySpec
from repro.serving.service import (
    ServiceOverloadedError,
    SkylineService,
    UnknownDatasetError,
)

__all__ = ["handle_request", "parse_query_spec"]

#: Protocol revision; bump on breaking changes.
PROTOCOL_VERSION = 1


def parse_query_spec(request: Dict[str, Any]) -> QuerySpec:
    """Build (and validate) the :class:`QuerySpec` of a ``query`` request."""
    lower = request.get("lower")
    upper = request.get("upper")
    dims = request.get("dims")
    return QuerySpec(
        dataset=str(request.get("dataset", "")),
        kind=str(request.get("kind", "skyline")),
        k=request.get("k"),
        lower=tuple(lower) if lower is not None else None,
        upper=tuple(upper) if upper is not None else None,
        dims=tuple(dims) if dims is not None else None,
    )


def _points_of(request: Dict[str, Any]) -> np.ndarray | None:
    """Dataset rows of a ``register`` request (inline or generated)."""
    if request.get("points") is not None:
        return np.asarray(request["points"], dtype=np.float64)
    generate = request.get("generate")
    if generate is not None:
        from repro.services.qws import generate_qws

        n = int(generate.get("n", 1000))
        d = int(generate.get("d", 4))
        seed = int(generate.get("seed", 0))
        return generate_qws(n, seed=seed).qos_matrix(d)
    return None


def _handle_register(service: SkylineService, request: Dict[str, Any]) -> Dict[str, Any]:
    dataset = str(request.get("dataset", ""))
    generation = service.register(
        dataset,
        _points_of(request),
        scheme=str(request.get("scheme", "angle")),
        num_partitions=int(request.get("partitions", 8)),
    )
    return {
        "ok": True,
        "dataset": dataset,
        "generation": generation,
        "size": len(service.store(dataset)),
    }


def _handle_query(service: SkylineService, request: Dict[str, Any]) -> Dict[str, Any]:
    spec = parse_query_spec(request)
    deadline = request.get("deadline_s")
    response = service.query(
        spec, deadline_s=float(deadline) if deadline is not None else None
    )
    return {"ok": True, **response.to_dict()}


def _handle_shard_query(
    service: SkylineService, request: Dict[str, Any]
) -> Dict[str, Any]:
    """One fan-out leg of a cluster query: ids *and* rows, filter-pruned.

    ``{"op": "shard_query", "dataset": ..., "kind": ..., <params>,
    "filters": [[...], ...]}`` — ``filters`` are live rows of the global
    dataset broadcast by the coordinator (Ciaccia–Martinenghi); candidates
    they dominate never cross the wire.
    """
    spec = parse_query_spec(request)
    deadline = request.get("deadline_s")
    filters = request.get("filters")
    payload = service.shard_candidates(
        spec,
        filters=np.asarray(filters, dtype=np.float64) if filters else None,
        deadline_s=float(deadline) if deadline is not None else None,
    )
    return {"ok": True, "dataset": spec.dataset, "kind": spec.kind, **payload}


def _handle_insert(service: SkylineService, request: Dict[str, Any]) -> Dict[str, Any]:
    point_id, generation = service.insert(
        str(request.get("dataset", "")), request["point"]
    )
    return {"ok": True, "id": point_id, "generation": generation}


def _handle_remove(service: SkylineService, request: Dict[str, Any]) -> Dict[str, Any]:
    generation = service.remove(
        str(request.get("dataset", "")), int(request["id"])
    )
    return {"ok": True, "generation": generation}


def _handle_events(service: SkylineService, request: Dict[str, Any]) -> Dict[str, Any]:
    n = request.get("n", 50)
    kinds = request.get("kinds")
    since_seq = request.get("since_seq")
    if kinds is not None and (
        not isinstance(kinds, list)
        or not all(isinstance(k, str) for k in kinds)
    ):
        raise ValueError(f"kinds must be a list of glob strings, got {kinds!r}")
    events = service.events_tail(
        int(n) if n is not None else None,
        kinds=kinds,
        since_seq=int(since_seq) if since_seq is not None else None,
    )
    return {"ok": True, "events": events, "count": len(events)}


def _handle_metrics(service: SkylineService, request: Dict[str, Any]) -> Dict[str, Any]:
    from repro.observability.export import json_snapshot, render_prometheus

    fmt = str(request.get("format", "json"))
    if fmt == "prometheus":
        return {
            "ok": True,
            "format": "prometheus",
            "content_type": "text/plain; version=0.0.4",
            "body": render_prometheus(),
        }
    if fmt == "json":
        return {"ok": True, "format": "json", "metrics": json_snapshot()}
    raise ValueError(f"unknown metrics format {fmt!r} (json or prometheus)")


def handle_request(
    service: SkylineService, request: Dict[str, Any]
) -> Dict[str, Any]:
    """Dispatch one decoded request; always returns a response object."""
    if not isinstance(request, dict):
        return {"ok": False, "status": "error", "error": "request must be an object"}
    op = request.get("op")
    try:
        if op == "register":
            return _handle_register(service, request)
        if op == "query":
            return _handle_query(service, request)
        if op == "shard_query":
            return _handle_shard_query(service, request)
        if op == "insert":
            return _handle_insert(service, request)
        if op == "remove":
            return _handle_remove(service, request)
        if op == "stats":
            return {"ok": True, "version": PROTOCOL_VERSION, **service.stats()}
        if op == "health":
            return {"ok": True, **service.health()}
        if op == "slo":
            return {"ok": True, **service.slo_report()}
        if op == "events":
            return _handle_events(service, request)
        if op == "metrics":
            return _handle_metrics(service, request)
        if op == "ping":
            return {"ok": True, "pong": True, "version": PROTOCOL_VERSION}
        if op == "shutdown":
            return {"ok": True, "bye": True}
        return {"ok": False, "status": "error", "error": f"unknown op {op!r}"}
    except ServiceOverloadedError as exc:
        return {
            "ok": False,
            "status": "rejected",
            "reason": exc.reason,
            "error": str(exc),
        }
    except UnknownDatasetError as exc:
        return {
            "ok": False,
            "status": "error",
            "error": f"unknown dataset {exc.args[0]!r}",
        }
    except (KeyError, TypeError, ValueError) as exc:
        return {"ok": False, "status": "error", "error": str(exc)}
