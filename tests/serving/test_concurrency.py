"""Concurrency stress: every served answer matches SOME generation's truth.

A single writer thread mutates a store/service while reader threads hammer
it; the writer records the membership snapshot after every mutation, and
at the end every answer a reader got is checked against the recorded
ground truth of the generation it was labelled with.  Plus a hypothesis
property test driving random insert/remove sequences through the store.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability.metrics import get_metrics
from repro.serving.queries import QuerySpec, evaluate
from repro.serving.service import (
    ServeConfig,
    ServiceOverloadedError,
    SkylineService,
)
from repro.serving.store import SkylineStore


def _points(n=60, d=3, seed=0):
    return np.random.default_rng(seed).random((n, d)) + 0.01


class _History:
    """Generation -> (ids, rows) ground truth, recorded by the one writer."""

    def __init__(self, store):
        self.store = store
        self.lock = threading.Lock()
        self.snapshots = {}
        self.record()

    def record(self):
        snap = self.store.snapshot()
        with self.lock:
            self.snapshots[snap.generation] = snap

    def verify(self, generation, ids, spec):
        snap = self.snapshots[generation]
        assert ids == evaluate(spec, snap.ids, snap.rows), (
            f"generation {generation}: served {ids}"
        )


def _run_writer(store, history, steps, seed=1):
    rng = np.random.default_rng(seed)
    live = sorted(int(i) for i in store.snapshot().ids)
    for _ in range(steps):
        if live and rng.random() < 0.4:
            victim = int(rng.choice(live))
            store.remove(victim)
            live.remove(victim)
        else:
            pid, _ = store.insert(rng.random(3) + 0.01)
            live.append(pid)
        history.record()


class TestStoreStress:
    def test_concurrent_readers_always_see_a_consistent_generation(self):
        store = SkylineStore("qws", _points())
        history = _History(store)
        spec = QuerySpec(dataset="qws")
        stop = threading.Event()
        answers = []

        def reader():
            local = []
            while not stop.is_set():
                generation, ids = store.skyline_snapshot()
                local.append((generation, ids))
            return local

        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [pool.submit(reader) for _ in range(4)]
            _run_writer(store, history, steps=60)
            stop.set()
            for future in futures:
                answers.extend(future.result())

        assert answers
        seen_generations = {generation for generation, _ in answers}
        assert len(seen_generations) > 1, "readers never observed a mutation"
        for generation, ids in answers:
            history.verify(generation, ids, spec)


class TestServiceStress:
    def test_every_answer_matches_its_generation(self):
        service = SkylineService(ServeConfig(max_inflight=4, max_queue=8))
        service.register("qws", _points())
        history = _History(service.store("qws"))
        specs = [
            QuerySpec(dataset="qws"),
            QuerySpec(dataset="qws", kind="skyband", k=2),
            QuerySpec(dataset="qws", kind="subspace", dims=(0, 2)),
        ]
        stop = threading.Event()
        answers = []

        def reader(index):
            local = []
            rng = np.random.default_rng(100 + index)
            while not stop.is_set():
                spec = specs[int(rng.integers(len(specs)))]
                try:
                    response = service.query(spec)
                except ServiceOverloadedError:
                    continue  # shed without a stale answer: no wrong data
                local.append((spec, response))
            return local

        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [pool.submit(reader, i) for i in range(4)]
            _run_writer(service.store("qws"), history, steps=50)
            stop.set()
            for future in futures:
                answers.extend(future.result())

        assert answers
        for spec, response in answers:
            history.verify(response.generation, response.ids, spec)

    def test_overload_sheds_without_wrong_answers(self):
        service = SkylineService(
            ServeConfig(max_inflight=1, max_queue=0, stale_on_overload=True)
        )
        service.register("qws", _points())
        store = service.store("qws")
        history = _History(store)
        spec = QuerySpec(dataset="qws")
        service.query(spec)  # warm the stale path

        # Make each compute hold the single admission permit long enough
        # that concurrent queries genuinely overflow capacity.
        original_snapshot = store.skyline_snapshot

        def slow_snapshot():
            result = original_snapshot()
            threading.Event().wait(0.005)
            return result

        store.skyline_snapshot = slow_snapshot
        answers = []
        rejections = []
        stop = threading.Event()
        answers_lock = threading.Lock()

        def reader():
            while not stop.is_set():
                try:
                    response = service.query(spec)
                    with answers_lock:
                        answers.append(response)
                except ServiceOverloadedError:
                    with answers_lock:
                        rejections.append(1)

        threads = [threading.Thread(target=reader) for _ in range(6)]
        for t in threads:
            t.start()
        _run_writer(store, history, steps=20)
        stop.set()
        for t in threads:
            t.join(timeout=30)

        shed = get_metrics().counter("serve.shed").value
        assert shed > 0, "over-admission never shed a request"
        for response in answers:
            history.verify(response.generation, response.ids, spec)


coords = st.tuples(
    st.floats(0.01, 10.0, allow_nan=False),
    st.floats(0.01, 10.0, allow_nan=False),
    st.floats(0.01, 10.0, allow_nan=False),
)


@settings(max_examples=25, deadline=None)
@given(ops=st.lists(
    st.one_of(coords, st.integers(min_value=0, max_value=200)),
    min_size=1, max_size=40,
))
def test_store_insert_remove_sequences_stay_consistent(ops):
    """Random insert/remove scripts: generation labels never lie."""
    store = SkylineStore("qws")
    live = []
    last_generation = 0
    for op in ops:
        if isinstance(op, tuple):
            pid, generation = store.insert(np.array(op))
            live.append(pid)
        elif live:
            victim = live[op % len(live)]
            generation = store.remove(victim)
            live.remove(victim)
        else:
            continue
        assert generation == last_generation + 1, "generations must be dense"
        last_generation = generation
        snap = store.snapshot()
        assert snap.generation == generation
        assert sorted(int(i) for i in snap.ids) == sorted(live)
        got = store.skyline_snapshot()
        assert got[0] == generation
        assert got[1] == evaluate(QuerySpec(dataset="qws"), snap.ids, snap.rows)
