"""`repro lint` CLI: formats, exit codes, rule listing, baselines."""

import json

from repro.cli import main

from tests.analysis.conftest import fixture_path


class TestLintCli:
    def test_clean_path_exits_zero(self, capsys):
        code = main(["lint", fixture_path("udf_pure.py")])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 error(s)" in out

    def test_findings_exit_one_text_format(self, capsys):
        code = main(["lint", fixture_path("except_swallow.py")])
        out = capsys.readouterr().out
        assert code == 1
        assert "exception-hygiene" in out
        assert "except_swallow.py:" in out

    def test_json_format_is_machine_readable(self, capsys):
        code = main(
            ["lint", fixture_path("except_swallow.py"), "--format", "json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["summary"]["errors"] == len(payload["findings"])
        finding = payload["findings"][0]
        assert finding["rule"] == "exception-hygiene"
        assert finding["severity"] == "error"
        assert finding["path"].endswith("except_swallow.py")
        assert finding["line"] > 0
        assert finding["fingerprint"]

    def test_rules_filter(self, capsys):
        code = main(
            [
                "lint",
                fixture_path("except_swallow.py"),
                "--rules",
                "udf-purity,pickle-safety",
            ]
        )
        capsys.readouterr()
        assert code == 0  # swallows are exception-hygiene findings

    def test_unknown_rule_is_usage_error(self, capsys):
        code = main(["lint", fixture_path("udf_pure.py"), "--rules", "nope"])
        capsys.readouterr()
        assert code == 2

    def test_list_rules(self, capsys):
        code = main(["lint", "--list-rules"])
        out = capsys.readouterr().out
        assert code == 0
        for rule_id in (
            "udf-purity",
            "pickle-safety",
            "lock-discipline",
            "exception-hygiene",
        ):
            assert rule_id in out

    def test_write_then_apply_baseline(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        assert (
            main(
                [
                    "lint",
                    fixture_path("except_swallow.py"),
                    "--write-baseline",
                    baseline,
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            ["lint", fixture_path("except_swallow.py"), "--baseline", baseline]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "baselined" in out


class TestSarifFormat:
    def test_sarif_document_shape(self, capsys):
        import json

        code = main(
            ["lint", fixture_path("except_swallow.py"), "--format", "sarif"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        declared = [rule["id"] for rule in driver["rules"]]
        assert "exception-hygiene" in declared
        assert declared == sorted(declared)
        assert run["results"], "the fixture must produce findings"
        for item in run["results"]:
            assert declared[item["ruleIndex"]] == item["ruleId"]
            assert item["level"] in ("error", "warning")
            assert item["partialFingerprints"]["reproFingerprint/v2"]
            region = item["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] >= 1
            assert region["startColumn"] >= 1

    def test_sarif_clean_run_has_empty_results(self, capsys):
        import json

        code = main(
            ["lint", fixture_path("except_ok.py"), "--format", "sarif"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["runs"][0]["results"] == []


class TestChangedOnly:
    @staticmethod
    def _git(repo, *args):
        import os
        import subprocess

        subprocess.run(
            ["git", *args],
            cwd=repo,
            check=True,
            capture_output=True,
            env={
                "GIT_AUTHOR_NAME": "t",
                "GIT_AUTHOR_EMAIL": "t@t",
                "GIT_COMMITTER_NAME": "t",
                "GIT_COMMITTER_EMAIL": "t@t",
                "HOME": str(repo),
                "PATH": os.environ["PATH"],
            },
        )

    def test_changed_only_lints_just_the_diff(
        self, tmp_path, capsys, monkeypatch
    ):
        repo = tmp_path / "repo"
        repo.mkdir()
        self._git(repo, "init", "-q")
        # A committed violation that --changed-only must NOT report...
        (repo / "old.py").write_text(
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        pass\n",
            encoding="utf-8",
        )
        self._git(repo, "add", ".")
        self._git(repo, "commit", "-qm", "seed")
        # ...and an untracked clean file that it must still check.
        (repo / "new.py").write_text("x = 1\n", encoding="utf-8")
        monkeypatch.chdir(repo)
        code = main(["lint", str(repo), "--changed-only"])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 file(s)" in out

    def test_changed_only_with_clean_tree_short_circuits(
        self, tmp_path, capsys, monkeypatch
    ):
        repo = tmp_path / "repo"
        repo.mkdir()
        self._git(repo, "init", "-q")
        (repo / "mod.py").write_text("x = 1\n", encoding="utf-8")
        self._git(repo, "add", ".")
        self._git(repo, "commit", "-qm", "seed")
        monkeypatch.chdir(repo)
        code = main(["lint", str(repo), "--changed-only", "--base", "HEAD"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no python files changed" in out

    def test_bad_base_is_usage_error(self, tmp_path, capsys, monkeypatch):
        repo = tmp_path / "repo"
        repo.mkdir()
        self._git(repo, "init", "-q")
        (repo / "mod.py").write_text("x = 1\n", encoding="utf-8")
        self._git(repo, "add", ".")
        self._git(repo, "commit", "-qm", "seed")
        monkeypatch.chdir(repo)
        code = main(
            ["lint", str(repo), "--changed-only", "--base", "no-such-ref"]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "cannot compute changed files" in err
