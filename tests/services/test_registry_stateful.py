"""Stateful property testing of the service registry against a model.

Random publish/withdraw sequences across two categories; after every step
the registry's per-category skyline must equal the batch skyline over the
surviving services of that category.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.skyline import skyline_numpy
from repro.services.qos import Polarity, QoSAttribute, QoSSchema
from repro.services.registry import ServiceRegistry

SCHEMA = QoSSchema(
    [
        QoSAttribute("rt", "ms", Polarity.LOWER_IS_BETTER),
        QoSAttribute("avail", "%", Polarity.HIGHER_IS_BETTER, 100.0),
        QoSAttribute("price", "$", Polarity.LOWER_IS_BETTER),
    ]
)

qos_values = st.tuples(
    st.floats(1.0, 999.0, allow_nan=False),
    st.floats(0.0, 100.0, allow_nan=False),
    st.floats(0.1, 99.0, allow_nan=False),
)

CATEGORIES = ("weather", "stocks")


class RegistryMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.registry = ServiceRegistry(SCHEMA, dims=3)
        self.model: dict[str, dict[int, np.ndarray]] = {c: {} for c in CATEGORIES}

    @rule(qos=qos_values, category=st.sampled_from(CATEGORIES))
    def publish(self, qos, category) -> None:
        raw = np.array(qos)
        svc = self.registry.publish("svc", "prov", category, raw)
        self.model[category][svc.service_id] = raw

    @precondition(lambda self: any(self.model[c] for c in CATEGORIES))
    @rule(data=st.data())
    def withdraw(self, data) -> None:
        category = data.draw(
            st.sampled_from([c for c in CATEGORIES if self.model[c]])
        )
        victim = data.draw(st.sampled_from(sorted(self.model[category])))
        self.registry.withdraw(victim)
        del self.model[category][victim]

    @invariant()
    def skyline_matches_batch(self) -> None:
        for category in CATEGORIES:
            services = self.model[category]
            got = {s.service_id for s in self.registry.skyline(category)}
            if not services:
                assert got == set()
                continue
            ids = sorted(services)
            raw = np.vstack([services[i] for i in ids])
            matrix = SCHEMA.to_minimization(raw)
            expected = {ids[j] for j in skyline_numpy(matrix)}
            assert got == expected, (category, got, expected)

    @invariant()
    def counts_match(self) -> None:
        assert len(self.registry) == sum(len(v) for v in self.model.values())


RegistryMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=25, deadline=None
)
TestRegistryStateful = RegistryMachine.TestCase
