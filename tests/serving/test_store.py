"""SkylineStore: generation counting, snapshots, and the MR bulk path."""

import numpy as np
import pytest

from repro.core.skyline import skyline_numpy
from repro.serving.queries import QuerySpec, evaluate
from repro.serving.store import SkylineStore


def _points(n=120, d=3, seed=0):
    return np.random.default_rng(seed).random((n, d)) + 0.01


class TestGenerations:
    def test_empty_store_is_generation_zero(self):
        store = SkylineStore("qws")
        assert store.generation == 0
        assert len(store) == 0
        assert store.skyline_snapshot() == (0, [])

    def test_initial_load_is_one_generation(self):
        store = SkylineStore("qws", _points())
        assert store.generation == 1
        assert len(store) == 120

    def test_every_mutation_bumps(self):
        store = SkylineStore("qws", _points())
        pid, gen = store.insert([0.5, 0.5, 0.5])
        assert gen == 2
        assert store.remove(pid) == 3
        _, gen = store.bulk_load(_points(10, seed=1))
        assert gen == 4

    def test_remove_on_empty_store_rejected(self):
        with pytest.raises(KeyError):
            SkylineStore("qws").remove(0)

    def test_contains_tracks_membership(self):
        store = SkylineStore("qws", _points(5))
        assert 0 in store and 4 in store
        store.remove(2)
        assert 2 not in store


class TestSnapshots:
    def test_snapshot_is_isolated_from_later_mutations(self):
        store = SkylineStore("qws", _points())
        snap = store.snapshot()
        store.insert([0.001, 0.001, 0.001])
        store.remove(0)
        assert snap.generation == 1
        assert snap.ids.shape[0] == 120
        assert snap.rows.shape == (120, 3)
        assert 0 in snap.ids.tolist()

    def test_skyline_snapshot_matches_from_scratch(self):
        store = SkylineStore("qws", _points())
        store.insert([0.02, 0.02, 0.02])
        store.remove(3)
        gen, ids = store.skyline_snapshot()
        snap = store.snapshot()
        assert gen == snap.generation == 3
        assert ids == evaluate(QuerySpec(dataset="qws"), snap.ids, snap.rows)

    def test_empty_snapshot_shapes(self):
        snap = SkylineStore("qws").snapshot()
        assert snap.ids.shape == (0,)
        assert snap.rows.shape[0] == 0


class TestMrBulkPath:
    @pytest.mark.parametrize("executor", ["serial", "threads"])
    def test_mr_seed_matches_in_core_path(self, executor):
        pts = _points(400, 3, seed=5)
        mr = SkylineStore(
            "mr", pts, mr_bulk_threshold=100, executor=executor
        )
        core = SkylineStore("core", pts, mr_bulk_threshold=10**9)
        assert len(mr) == len(core) == 400
        assert mr.skyline_snapshot()[1] == core.skyline_snapshot()[1]
        expected = skyline_numpy(pts).tolist()
        assert mr.skyline_snapshot()[1] == expected

    def test_mr_seeded_store_stays_mutable(self):
        pts = _points(300, 3, seed=6)
        store = SkylineStore("mr", pts, mr_bulk_threshold=100)
        pid, _ = store.insert([0.001, 0.001, 0.001])
        _, ids = store.skyline_snapshot()
        assert ids == [pid]
        store.remove(pid)
        assert store.skyline_snapshot()[1] == skyline_numpy(pts).tolist()

    def test_second_bulk_load_uses_in_core_path(self):
        # The MR seed only applies to a cold store; later batches merge in.
        store = SkylineStore("mr", _points(200, 3), mr_bulk_threshold=100)
        new_ids, gen = store.bulk_load(_points(200, 3, seed=9))
        assert gen == 2
        assert new_ids == list(range(200, 400))
        snap = store.snapshot()
        assert store.skyline_snapshot()[1] == evaluate(
            QuerySpec(dataset="mr"), snap.ids, snap.rows
        )
