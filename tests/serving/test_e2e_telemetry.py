"""Acceptance e2e: drive mixed traffic (with induced shedding) and observe
the service purely through the telemetry plane — stats / events / slo /
``repro top`` — asserting the three views agree with each other."""

import threading

import numpy as np
import pytest

from repro.observability.events import get_events
from repro.observability.metrics import get_metrics
from repro.serving.protocol import handle_request
from repro.serving.queries import QuerySpec
from repro.serving.service import (
    ServeConfig,
    ServiceOverloadedError,
    SkylineService,
)
from repro.serving.top import Sample, render_frame


def _points(n=60, d=3, seed=0):
    return np.random.default_rng(seed).random((n, d)) + 0.01


def _drive_mixed_traffic(service):
    """Cache traffic, a mutation, then deterministic overload.

    A reader thread blocks inside the one admitted compute, so every
    query issued while it holds the permit is genuinely shed: the warm
    ``qws`` spec degrades to its stale answer, the never-cached ``aux``
    spec is rejected outright.  Returns (degraded, rejected) counts.
    """
    spec = QuerySpec(dataset="qws")
    service.query(spec)                       # cold: compute + cache fill
    service.query(spec)                       # warm: cache hit
    store = service.store("qws")
    store.insert(np.array([0.001, 0.001, 0.001]))  # bump: cache now stale

    original_snapshot = store.skyline_snapshot
    entered, release = threading.Event(), threading.Event()

    def blocking_snapshot():
        entered.set()
        assert release.wait(30), "e2e driver never released the compute"
        return original_snapshot()

    store.skyline_snapshot = blocking_snapshot
    blocked = {}

    def blocked_reader():
        blocked["response"] = service.query(spec)

    thread = threading.Thread(target=blocked_reader)
    thread.start()
    assert entered.wait(30), "blocked reader never reached the compute"

    degraded = [service.query(spec) for _ in range(2)]  # shed -> stale
    assert all(r.status == "degraded" for r in degraded)
    with pytest.raises(ServiceOverloadedError) as shed_info:
        service.query(QuerySpec(dataset="aux"))          # shed -> no stale
    assert shed_info.value.reason == "overload"

    release.set()
    thread.join(timeout=30)
    store.skyline_snapshot = original_snapshot
    assert blocked["response"].status == "ok"
    return len(degraded), 1


class TestTelemetryEndToEnd:
    def test_stats_events_slo_and_top_agree(self):
        service = SkylineService(
            ServeConfig(max_inflight=1, max_queue=0, stale_on_overload=True)
        )
        service.register("qws", _points())
        service.register("aux", _points(seed=9))
        degraded_n, rejected_n = _drive_mixed_traffic(service)
        requests_n = 3 + degraded_n + rejected_n  # 2 warm + 1 blocked + shed

        # --- stats: cache activity, shedding, and latency all visible ----
        stats = handle_request(service, {"op": "stats"})
        counters = stats["counters"]
        assert counters["serve.requests"] == requests_n
        assert counters["serve.cache.hits"] == 1
        assert counters["serve.shed"] == degraded_n + rejected_n
        assert counters["serve.degraded"] == degraded_n
        assert stats["latency"]["count"] == requests_n
        assert stats["datasets"]["qws"]["generation"] == 2
        assert stats["queued"] == 0 and stats["inflight_computes"] == 0

        # --- events: shed records present and consistent with counters ---
        events = service.events_tail(None, kinds=["serve.*"])
        shed_events = [e for e in events if e["kind"] == "serve.shed"]
        degraded_events = [e for e in events if e["kind"] == "serve.degraded"]
        assert len(shed_events) == counters["serve.shed"]
        assert len(degraded_events) == degraded_n
        assert {e["dataset"] for e in shed_events} == {"qws", "aux"}
        assert all(e["reason"] == "overload" for e in shed_events)
        assert all(e["stale_generation"] == 1 for e in degraded_events)
        # stats carries the same per-kind tallies the log reports
        assert stats["events"]["serve.shed"] == len(shed_events)
        # generation bumps were evented too: two registers + one insert
        gen_events = get_events().tail(None, kinds=["store.generation"])
        assert len(gen_events) == 3

        # --- slo: burn accounting consistent with the request stream -----
        slo = handle_request(service, {"op": "slo"})
        availability = next(
            o for o in slo["objectives"] if o["name"] == "availability"
        )
        window = availability["windows"]["5m"]
        assert window["total"] == requests_n
        # good = everything except the shed-without-stale rejection
        assert window["total"] - window["good"] == rejected_n
        assert window["burn_rate"] > 0.0
        health = handle_request(service, {"op": "health"})
        assert health["slo_state"] == slo["state"]

        # --- top: one frame renders the whole picture without error ------
        sample = Sample(
            stats=stats,
            health=health,
            slo=slo,
            events=service.events_tail(8),
            polled_at=1.0,
        )
        frame = render_frame(sample, target="e2e")
        assert f"shed {counters['serve.shed']}" in frame
        assert "qws" in frame and "availability" in frame

    def test_shed_metric_event_parity_under_deadline(self):
        # Deadline-driven shedding flows through the same telemetry path:
        # the one permit is held by a blocked compute, and the follow-up
        # query's deadline is already spent when it tries to queue.
        service = SkylineService(
            ServeConfig(max_inflight=1, max_queue=1, stale_on_overload=False)
        )
        service.register("qws", _points())
        store = service.store("qws")
        original_snapshot = store.skyline_snapshot
        entered, release = threading.Event(), threading.Event()

        def blocking_snapshot():
            entered.set()
            assert release.wait(30)
            return original_snapshot()

        store.skyline_snapshot = blocking_snapshot
        thread = threading.Thread(
            target=service.query, args=(QuerySpec(dataset="qws"),)
        )
        thread.start()
        assert entered.wait(30)
        try:
            with pytest.raises(ServiceOverloadedError) as info:
                service.query(QuerySpec(dataset="qws"), deadline_s=0.0)
        finally:
            release.set()
            thread.join(timeout=30)
            store.skyline_snapshot = original_snapshot
        assert info.value.reason == "deadline"
        events = get_events().tail(None, kinds=["serve.shed"])
        assert len(events) == 1
        assert events[0].attrs["reason"] == "deadline"
        assert get_metrics().counter("serve.deadline_exceeded").value == 1
