"""Tests for repro.observability.metrics."""

import pytest

from repro.mapreduce.counters import Counters
from repro.observability.metrics import (
    DEFAULT_COUNT_BUCKETS,
    Histogram,
    MetricsRegistry,
    ThresholdWatch,
    get_metrics,
    observe_partition_skew,
    set_metrics,
)


class TestCounterGauge:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        assert reg.counter("c").value == 5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="cannot decrease"):
            reg.counter("c").inc(-1)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(3)
        reg.gauge("g").set(7.5)
        assert reg.gauge("g").value == 7.5


class TestHistogram:
    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError, match="ascending"):
            Histogram("h", buckets=(1.0, 1.0, 2.0))

    def test_quantiles_uniform_distribution(self):
        # 1..1000 against decade buckets: estimates must land within one
        # bucket of the exact quantile.
        h = Histogram("h", buckets=tuple(float(b) for b in range(100, 1100, 100)))
        for v in range(1, 1001):
            h.observe(v)
        assert h.count == 1000
        assert h.mean == pytest.approx(500.5)
        assert h.quantile(0.5) == pytest.approx(500, abs=100)
        assert h.quantile(0.9) == pytest.approx(900, abs=100)
        assert h.quantile(0.99) == pytest.approx(990, abs=100)
        assert h.quantile(0.0) >= 1.0
        assert h.quantile(1.0) <= 1000.0

    def test_quantiles_skewed_distribution(self):
        # 99 fast tasks at ~1ms and one straggler at 1s: p50 must stay in
        # the fast bucket and p99+ must reach toward the straggler.
        h = Histogram("h", buckets=(0.001, 0.01, 0.1, 1.0, 10.0))
        for _ in range(99):
            h.observe(0.0009)
        h.observe(1.0)
        assert h.quantile(0.5) <= 0.001
        assert h.quantile(0.995) > 0.1
        snap = h.snapshot()
        assert snap["max"] == 1.0
        assert snap["min"] == pytest.approx(0.0009)

    def test_quantile_clamped_to_observed_range(self):
        h = Histogram("h", buckets=(100.0, 200.0))
        h.observe(150.0)
        # Interpolation inside [100, 200] would give values below the only
        # observation; clamping pins every quantile to it.
        assert h.quantile(0.01) == 150.0
        assert h.quantile(0.99) == 150.0

    def test_overflow_bucket(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(99.0)
        snap = h.snapshot()
        assert snap["overflow"] == 1
        assert h.quantile(0.5) >= 2.0

    def test_quantile_validates_range(self):
        h = Histogram("h", buckets=(1.0,))
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_empty_histogram_snapshot(self):
        snap = Histogram("h", buckets=(1.0,)).snapshot()
        assert snap["count"] == 0
        assert snap["p50"] == 0.0
        assert snap["min"] == snap["max"] == 0.0

    def test_default_count_buckets_cover_decades(self):
        h = Histogram("h", buckets=DEFAULT_COUNT_BUCKETS)
        h.observe(3)
        h.observe(40_000)
        assert h.snapshot()["overflow"] == 0


class TestRegistry:
    def test_instruments_are_memoised(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("h") is reg.histogram("h")

    def test_absorb_counters(self):
        reg = MetricsRegistry()
        counters = Counters()
        counters.increment("skyline", "dominance_tests", 42)
        counters.framework("map_records", 10)
        reg.absorb_counters(counters)
        reg.absorb_counters(counters)  # accumulates across jobs
        snap = reg.snapshot()
        assert snap["counters"]["skyline.dominance_tests"] == 84
        assert snap["counters"]["framework.map_records"] == 20

    def test_absorb_counters_prefix_and_negative(self):
        reg = MetricsRegistry()
        reg.absorb_counters([("g", "bad", -3)], prefix="job1")
        assert reg.snapshot()["gauges"]["job1.g.bad"] == -3.0

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1)
        reg.histogram("h", (1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert set(snap["histograms"]["h"]) == {
            "count",
            "sum",
            "mean",
            "min",
            "max",
            "p50",
            "p90",
            "p99",
            "overflow",
        }

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_default_registry_swap(self):
        custom = MetricsRegistry()
        assert set_metrics(custom) is custom
        assert get_metrics() is custom
        fresh = set_metrics(None)
        assert fresh is not custom


class TestPartitionSkew:
    def test_gauges_recorded(self):
        reg = MetricsRegistry()
        values = observe_partition_skew(reg, [10, 40, 30, 20])
        gauges = reg.snapshot()["gauges"]
        assert gauges["partition.records_max"] == 40.0
        assert gauges["partition.records_min"] == 10.0
        assert gauges["partition.max_min_ratio"] == 4.0
        assert gauges["partition.imbalance"] == pytest.approx(40 / 25)
        assert values["max_min_ratio"] == 4.0

    def test_empty_partition_floor(self):
        reg = MetricsRegistry()
        values = observe_partition_skew(reg, [0, 8])
        assert values["max_min_ratio"] == 8.0  # min floored to 1

    def test_no_partitions(self):
        reg = MetricsRegistry()
        values = observe_partition_skew(reg, [])
        assert values == {
            "records_max": 0.0,
            "records_min": 0.0,
            "max_min_ratio": 0.0,
            "imbalance": 0.0,
        }

    def test_custom_prefix(self):
        reg = MetricsRegistry()
        observe_partition_skew(reg, [1, 2], prefix="sim.map")
        assert "sim.map.records_max" in reg.snapshot()["gauges"]


class TestThresholdWatch:
    def test_fires_exactly_once_per_crossing(self):
        reg = MetricsRegistry()
        fired = []
        watch = reg.watch(
            "partition.skew.*", 8.0, lambda name, value, w: fired.append((name, value))
        )
        gauge = reg.gauge("partition.skew.qws.max_min_ratio")
        gauge.set(2.0)      # below: armed, no fire
        gauge.set(9.0)      # crossing: fire
        gauge.set(12.0)     # still beyond: hold fire
        gauge.set(50.0)     # still beyond: hold fire
        assert fired == [("partition.skew.qws.max_min_ratio", 9.0)]
        assert watch.fired == 1

    def test_rearms_after_recrossing(self):
        reg = MetricsRegistry()
        fired = []
        reg.watch("g", 10.0, lambda name, value, w: fired.append(value))
        gauge = reg.gauge("g")
        gauge.set(11.0)     # fire 1
        gauge.set(3.0)      # re-arm
        gauge.set(10.0)     # fire 2 (>= threshold counts)
        assert fired == [11.0, 10.0]

    def test_direction_below(self):
        reg = MetricsRegistry()
        fired = []
        reg.watch("free.*", 5.0, lambda n, v, w: fired.append(v), direction="below")
        gauge = reg.gauge("free.slots")
        gauge.set(20.0)
        gauge.set(4.0)
        gauge.set(1.0)
        assert fired == [4.0]

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError, match="direction"):
            ThresholdWatch("g", 1.0, lambda n, v, w: None, direction="sideways")

    def test_non_matching_gauges_ignored(self):
        reg = MetricsRegistry()
        fired = []
        reg.watch("partition.skew.*", 1.0, lambda n, v, w: fired.append(n))
        reg.gauge("serve.queued").set(99.0)
        assert fired == []

    def test_per_gauge_state_is_independent(self):
        reg = MetricsRegistry()
        fired = []
        reg.watch("skew.*", 5.0, lambda n, v, w: fired.append(n))
        reg.gauge("skew.a").set(7.0)
        reg.gauge("skew.b").set(8.0)  # its own first crossing
        reg.gauge("skew.a").set(9.0)  # a still beyond: no refire
        assert fired == ["skew.a", "skew.b"]

    def test_registration_sees_existing_gauge_beyond_bound(self):
        reg = MetricsRegistry()
        reg.gauge("skew.a").set(100.0)
        fired = []
        watch = reg.watch("skew.*", 5.0, lambda n, v, w: fired.append(v))
        assert fired == [100.0]  # already beyond counts as first crossing
        assert watch.fired == 1

    def test_unwatch_stops_delivery(self):
        reg = MetricsRegistry()
        fired = []
        watch = reg.watch("g", 1.0, lambda n, v, w: fired.append(v))
        reg.unwatch(watch)
        reg.gauge("g").set(5.0)
        assert fired == []
