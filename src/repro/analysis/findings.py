"""Findings: what a lint rule reports, and how severe it is.

A :class:`Finding` is one localized contract violation.  Its
:meth:`Finding.fingerprint` (v2) deliberately excludes both the line
number and the file path: a baseline recorded before an unrelated edit
still matches after the file shifts, and renaming or moving a file keeps
its baselined findings baselined.  Only moving the violation to a
different symbol (or changing its message) invalidates the entry.  The
trade-off is explicit: two identical findings on the same symbol name in
*different* files share a fingerprint, so baselining one baselines both —
acceptable for a burn-down list, and what makes baselines portable across
checkouts and renames.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict


class Severity(enum.Enum):
    """How a finding affects the lint exit code."""

    #: Advisory: reported, but never fails the run.
    WARNING = "warning"
    #: Contract violation: fails the run (exit code 1).
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return self.value


@dataclass(slots=True, frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    severity: Severity = Severity.ERROR
    #: Dotted enclosing symbol (``Class.method`` / function name), "" at
    #: module level.  Part of the baseline fingerprint.
    symbol: str = field(default="")

    def fingerprint(self) -> str:
        """Path- and line-free identity used by the baseline file (v2)."""
        digest = hashlib.sha256(self.message.encode("utf-8")).hexdigest()[:12]
        return f"{self.rule_id}:{self.symbol}:{digest}"

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready view (the ``--format json`` record)."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.value,
            "symbol": self.symbol,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule_id, self.message)
