"""Rule protocol and registry for the contract checker.

A rule is a class with an ``id``, a default :class:`Severity`, a docstring
(surfaced by ``repro lint --list-rules``), and a ``check(project)`` hook
yielding :class:`Finding` objects.  Rules register themselves with the
:func:`register` decorator at import time; :func:`all_rules` instantiates
the registry, and :func:`rules_by_id` filters it for ``--rules``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Type

from repro.analysis.findings import Finding, Severity
from repro.analysis.project import Module, Project, enclosing_symbol

_REGISTRY: Dict[str, Type["Rule"]] = {}


class Rule:
    """Base class for one contract rule."""

    #: Stable kebab-case identifier (used in pragmas and --rules).
    id: str = ""
    severity: Severity = Severity.ERROR

    def check(self, project: Project) -> Iterator[Finding]:
        """Yield findings across the whole project.

        The default drives :meth:`check_module` per module; rules needing a
        cross-module view (e.g. the UDF registry) override this instead.
        """
        for module in sorted(project.modules.values(), key=lambda m: m.path):
            yield from self.check_module(module, project)

    def check_module(self, module: Module, project: Project) -> Iterator[Finding]:
        return iter(())

    # -- helpers for subclasses ---------------------------------------------------

    def finding(
        self,
        module: Module,
        node: ast.AST,
        message: str,
        *,
        severity: Severity | None = None,
    ) -> Finding:
        return Finding(
            rule_id=self.id,
            path=module.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=severity or self.severity,
            symbol=enclosing_symbol(module.tree, node),
        )

    @classmethod
    def description(cls) -> str:
        doc = (cls.__doc__ or "").strip().splitlines()
        return doc[0] if doc else ""


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule_cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.id!r}")
    _REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_rule_ids() -> List[str]:
    _ensure_packs_loaded()
    return sorted(_REGISTRY)


def all_rules() -> List[Rule]:
    _ensure_packs_loaded()
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def rules_by_id(rule_ids: Iterable[str]) -> List[Rule]:
    """Instantiate a subset of the registry; unknown ids raise ValueError."""
    _ensure_packs_loaded()
    rules: List[Rule] = []
    for rule_id in rule_ids:
        rule_cls = _REGISTRY.get(rule_id)
        if rule_cls is None:
            known = ", ".join(sorted(_REGISTRY))
            raise ValueError(f"unknown rule id {rule_id!r} (known: {known})")
        rules.append(rule_cls())
    return rules


def _ensure_packs_loaded() -> None:
    """Import the built-in rule packs so their @register calls have run."""
    import repro.analysis.rules  # noqa: F401  (import-for-side-effect)
