"""Figure 5(b): processing time vs dimension, large cardinality (N=100,000).

The paper's headline plot: the MR-Angle advantage grows sharply with
cardinality.  Shape assertions: angle is fastest at every dimension and the
advantage at the top dimension is at least 1.5× (paper: 1.7–2.3×).
"""

from repro.bench.experiments import figure5


def test_fig5b(benchmark, scale, cache):
    table = benchmark.pedantic(
        lambda: figure5(
            scale.large_n, dims=scale.dims, cluster=scale.cluster, cache=cache
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(table.render())
    angle = table.column("MR-Angle")
    for other in ("MR-Dim", "MR-Grid"):
        series = table.column(other)
        for a, o in zip(angle, series):
            assert a <= o, f"MR-Angle slower than {other}: {a} vs {o}"
        # Top-dimension advantage (paper: 1.7x grid / 2.3x dim).
        assert series[-1] / angle[-1] >= 1.5
