"""Tests for the BNL skyline algorithm (unbounded and bounded windows)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.bnl import bnl_merge, bnl_skyline
from repro.core.dominance import DominanceCounter
from repro.core.skyline import skyline_numpy

clouds = arrays(
    np.float64,
    st.tuples(st.integers(1, 80), st.integers(1, 5)),
    elements=st.floats(0, 50, allow_nan=False),
)


class TestBasic:
    def test_known_2d_example(self):
        # The paper's Figure 1 shape: a staircase front plus dominated points.
        pts = np.array(
            [
                [1.0, 9.0],  # s1 skyline
                [2.0, 7.0],  # s2 skyline
                [3.0, 5.0],  # s3 skyline
                [5.0, 4.0],  # s4 skyline
                [7.0, 3.0],  # s5 skyline
                [9.0, 2.0],  # s6 skyline
                [6.0, 6.0],  # dominated by s4 (5,4)
                [8.0, 8.0],  # dominated
            ]
        )
        result = bnl_skyline(pts)
        assert result.indices.tolist() == [0, 1, 2, 3, 4, 5]
        assert result.passes == 1

    def test_single_point(self):
        result = bnl_skyline(np.array([[3.0, 4.0]]))
        assert result.indices.tolist() == [0]

    def test_all_duplicates_kept(self):
        pts = np.ones((5, 3))
        assert bnl_skyline(pts).indices.tolist() == [0, 1, 2, 3, 4]

    def test_total_order_chain(self):
        pts = np.arange(20, dtype=np.float64).reshape(-1, 1) @ np.ones((1, 3))
        assert bnl_skyline(pts).indices.tolist() == [0]

    def test_indices_sorted_ascending(self):
        rng = np.random.default_rng(0)
        pts = rng.random((300, 3))
        idx = bnl_skyline(pts).indices
        assert np.all(np.diff(idx) > 0)

    def test_matches_bruteforce(self):
        rng = np.random.default_rng(1)
        pts = rng.random((500, 4))
        assert np.array_equal(bnl_skyline(pts).indices, skyline_numpy(pts))

    def test_points_helper(self):
        pts = np.array([[2.0, 2.0], [1.0, 1.0]])
        result = bnl_skyline(pts)
        assert np.array_equal(result.points(pts), [[1.0, 1.0]])

    def test_dominance_tests_counted(self):
        counter = DominanceCounter()
        result = bnl_skyline(np.random.default_rng(2).random((100, 3)), counter=counter)
        assert counter.tests == result.dominance_tests > 0

    def test_input_order_invariance(self):
        rng = np.random.default_rng(5)
        pts = rng.random((200, 3))
        perm = rng.permutation(200)
        base = set(bnl_skyline(pts).indices.tolist())
        shuffled = bnl_skyline(pts[perm]).indices
        assert {int(perm[i]) for i in shuffled} == base


class TestBoundedWindow:
    @pytest.mark.parametrize("window", [1, 2, 3, 5, 17])
    def test_matches_unbounded(self, window):
        rng = np.random.default_rng(7)
        pts = rng.random((250, 3))
        bounded = bnl_skyline(pts, window_size=window)
        assert np.array_equal(bounded.indices, bnl_skyline(pts).indices)

    def test_multiple_passes_happen(self):
        # Anti-correlated line: everything is skyline, window of 2 must spill.
        x = np.linspace(0, 1, 30)
        pts = np.column_stack([x, 1 - x])
        result = bnl_skyline(pts, window_size=2)
        assert result.passes > 1
        assert result.indices.size == 30

    def test_window_one(self):
        rng = np.random.default_rng(9)
        pts = rng.random((60, 2))
        assert np.array_equal(
            bnl_skyline(pts, window_size=1).indices, skyline_numpy(pts)
        )

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            bnl_skyline(np.ones((2, 2)), window_size=0)

    @given(clouds, st.integers(1, 10))
    @settings(max_examples=50, deadline=None)
    def test_property_window_size_invariant(self, pts, window):
        assert np.array_equal(
            bnl_skyline(pts, window_size=window).indices,
            skyline_numpy(pts),
        )


class TestPropertyCorrectness:
    @given(clouds)
    @settings(max_examples=80, deadline=None)
    def test_property_matches_bruteforce(self, pts):
        assert np.array_equal(bnl_skyline(pts).indices, skyline_numpy(pts))

    @given(clouds)
    @settings(max_examples=40, deadline=None)
    def test_property_skyline_undominated_and_dominating(self, pts):
        from repro.core.dominance import dominates

        idx = set(bnl_skyline(pts).indices.tolist())
        for i in range(pts.shape[0]):
            dominated = any(
                dominates(pts[j], pts[i]) for j in range(pts.shape[0]) if j != i
            )
            assert (i in idx) == (not dominated)


class TestMerge:
    def test_merge_locals(self):
        a = np.array([[1.0, 5.0], [2.0, 4.0]])
        b = np.array([[1.5, 4.5], [0.5, 6.0]])
        result = bnl_merge([a, b])
        merged = np.vstack([a, b])
        assert np.array_equal(result.indices, skyline_numpy(merged))

    def test_merge_empty_list(self):
        result = bnl_merge([])
        assert result.indices.size == 0

    def test_merge_is_global_skyline_of_union(self):
        rng = np.random.default_rng(11)
        pts = rng.random((300, 3))
        halves = [pts[:150], pts[150:]]
        locals_ = [h[skyline_numpy(h)] for h in halves]
        merged_idx = bnl_merge(locals_).indices
        stacked = np.vstack(locals_)
        global_pts = stacked[merged_idx]
        expected = pts[skyline_numpy(pts)]
        assert np.array_equal(
            np.sort(global_pts, axis=0), np.sort(expected, axis=0)
        )
