"""Micro-benchmarks for the skyline-adjacent query operators.

Covers the extension surface: k-skyband, top-k dominating, representative
selection, progressive BBS first-k, and workflow composition — the
operators a service-selection deployment calls per user query, so their
latency matters more than the batch pipelines'.
"""

import itertools

import numpy as np
import pytest

from repro.core.bbs import bbs_skyline_progressive
from repro.core.representative import (
    distance_representatives,
    max_dominance_representatives,
)
from repro.core.rtree import RTree
from repro.core.skyband import k_skyband, top_k_dominating
from repro.services.composition import CompositionTask, skyline_compositions

N, D = 5_000, 4


@pytest.fixture(scope="module")
def cloud():
    return np.random.default_rng(31).random((N, D))


def test_k_skyband(benchmark, cloud):
    result = benchmark(k_skyband, cloud, 3)
    assert result.size > 0


def test_top_k_dominating(benchmark, cloud):
    result = benchmark(top_k_dominating, cloud, 10)
    assert result.size == 10


def test_max_dominance_representatives(benchmark, cloud):
    result = benchmark(max_dominance_representatives, cloud, 5)
    assert len(result) == 5


def test_distance_representatives(benchmark, cloud):
    result = benchmark(distance_representatives, cloud, 5)
    assert len(result) == 5


def test_progressive_first_10(benchmark, cloud):
    tree = RTree(cloud)

    def first_10():
        return list(itertools.islice(bbs_skyline_progressive(cloud, tree=tree), 10))

    result = benchmark(first_10)
    assert len(result) == 10


def test_workflow_composition(benchmark):
    rng = np.random.default_rng(32)
    tasks = [
        CompositionTask(f"t{i}", rng.uniform(0, 100, (200, 3)))
        for i in range(3)
    ]
    result = benchmark(
        skyline_compositions, tasks, ["sum", "prob", "max"]
    )
    assert len(result) > 0
