"""Command-line front end: regenerate any table/figure of the paper.

Usage::

    python -m repro.cli fig5a            # Figure 5(a): time vs dim, N=1,000
    python -m repro.cli fig5b            # Figure 5(b): time vs dim, N=100,000
    python -m repro.cli fig6             # Figure 6: map/reduce vs servers
    python -m repro.cli fig7a / fig7b    # Figure 7: optimality vs dim
    python -m repro.cli headline         # §V-B speedup claims
    python -m repro.cli theory           # §IV dominance-ability check
    python -m repro.cli ablations        # design-choice studies
    python -m repro.cli all              # everything above, in order
    python -m repro.cli trace FILE       # summarize a JSONL trace file
    python -m repro.cli lint [PATHS]     # static contract checker (see
                                         # docs/static_analysis.md)
    python -m repro.cli serve            # online query service (JSON lines
                                         # on stdio or --tcp; docs/serving.md)
    python -m repro.cli serve --cluster 3   # sharded: coordinator + 3
                                         # in-process shard servers
    python -m repro.cli coordinator --shard H:P --shard H:P
                                         # coordinator over external shards
                                         # (docs/cluster.md)
    python -m repro.cli top --tcp H:P    # live terminal dashboard polling a
                                         # running server (--once for one frame)
    python -m repro.cli bench            # perf-trajectory suite; --json F
                                         # writes the machine-readable record

    --quick     scale cardinalities down ~10x for a fast sanity pass
    --markdown  emit Markdown instead of ASCII (for EXPERIMENTS.md)
    --csv       emit CSV
    --trace F   write a JSON-lines execution trace to F (see docs/observability.md)
    --executor  engine backend for the runs: serial (default; the
                measurement path), threads, or processes
    --workers   pool size for the thread/process executors
    --pipelined overlap the two-job skyline chain (see docs/tuning.md)
    --kernel    dominance backend: scalar (default; the reference) or
                block (columnar + filter pruning; see docs/kernels.md)
    --faults F  inject deterministic faults from a FaultPlan JSON file
                (chaos mode; see docs/fault_tolerance.md)

The installed console script ``repro-skyline`` is equivalent.
"""

from __future__ import annotations

import argparse
import atexit
import signal
import sys
from typing import Any, Callable, Dict, List

from repro.bench import (
    Table,
    ablations,
    figure5,
    figure6,
    figure7,
    headline,
    stragglers,
    theory,
)

__all__ = ["main", "build_parser"]

# Paper-scale cardinalities and their --quick counterparts.
_SMALL_N, _LARGE_N = 1_000, 100_000
_QUICK_SMALL_N, _QUICK_LARGE_N = 500, 10_000
_QUICK_NODES = (2, 4, 8)


def _experiments(
    quick: bool,
    *,
    executor: str | None = None,
    pipelined: bool = False,
) -> Dict[str, Callable[[], Table]]:
    small = _QUICK_SMALL_N if quick else _SMALL_N
    large = _QUICK_LARGE_N if quick else _LARGE_N
    dims = (2, 4, 6) if quick else (2, 4, 6, 8, 10)
    fig6_kwargs = (
        {"n": large, "d": dims[-1], "node_counts": _QUICK_NODES} if quick else {}
    )
    # Engine execution policy, forwarded to the experiments that run the
    # MapReduce pipeline (theory/ablations/stragglers stay on their own
    # defaults: theory runs no engine jobs; the others compare chained and
    # tree-merge variants that pin their own chain modes).
    engine = {"executor": executor, "pipelined": pipelined}
    return {
        "fig5a": lambda: figure5(small, dims=dims, **engine),
        "fig5b": lambda: figure5(large, dims=dims, **engine),
        "fig6": lambda: figure6(**fig6_kwargs, **engine),
        "fig7a": lambda: figure7(small, dims=dims, **engine),
        "fig7b": lambda: figure7(large, dims=dims, **engine),
        "headline": lambda: headline(n=large, d=dims[-1], **engine),
        "theory": lambda: theory(mc_samples=50_000 if quick else 200_000),
        "ablations": lambda: ablations(n=small if quick else 10_000),
        "stragglers": lambda: stragglers(n=small if quick else 20_000),
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-skyline",
        description=(
            "Regenerate the tables/figures of 'MapReduce Skyline Query "
            "Processing with a New Angular Partitioning Approach' "
            "(IPDPSW 2012)"
        ),
    )
    parser.add_argument(
        "experiment",
        choices=list(_experiments(False)) + ["all", "verify"],
        help="which table/figure to regenerate ('verify' runs the "
        "reproduction gate)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="scaled-down cardinalities for a fast sanity pass",
    )
    fmt = parser.add_mutually_exclusive_group()
    fmt.add_argument("--markdown", action="store_true", help="Markdown output")
    fmt.add_argument("--csv", action="store_true", help="CSV output")
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="also append the rendered tables to FILE",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="append an ASCII chart after each table (figures 5/6/7)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write a JSON-lines execution trace (spans + metrics snapshot) "
        "to FILE; inspect it with 'python -m repro.cli trace FILE'",
    )
    parser.add_argument(
        "--executor",
        choices=["serial", "threads", "processes"],
        default=None,
        help="engine backend for the pipeline runs (default: $REPRO_EXECUTOR "
        "or serial — the clean-timing measurement path)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="pool size for --executor threads/processes (default: CPU count)",
    )
    parser.add_argument(
        "--pipelined",
        action="store_true",
        help="overlap the two-job skyline chain (merge maps start as local-"
        "skyline partitions finish); results are identical",
    )
    parser.add_argument(
        "--kernel",
        choices=["scalar", "block"],
        default=None,
        help="dominance backend for every algorithm of the run (default: "
        "$REPRO_KERNEL or scalar — the reference path; block enables the "
        "columnar kernels + filter pruning, results are identical)",
    )
    parser.add_argument(
        "--faults",
        metavar="PLAN.json",
        help="inject deterministic faults from a FaultPlan JSON file into "
        "every engine job of the run (chaos mode; schema in "
        "docs/fault_tolerance.md) — results must be identical anyway",
    )
    return parser


def _render(table: Table, args: argparse.Namespace) -> str:
    if args.markdown:
        return table.to_markdown()
    if args.csv:
        return table.to_csv()
    text = table.render()
    if args.chart:
        chart = _chart_for(table)
        if chart:
            text += "\n" + chart
    return text


def _chart_for(table: Table) -> str:
    """Best-effort ASCII chart matching the table's figure shape."""
    from repro.bench.charts import line_chart, stacked_bars

    if table.columns[:1] == ["dimension"]:
        series = {
            name: table.column(name)
            for name in table.columns[1:]
            if all(isinstance(v, (int, float)) for v in table.column(name))
        }
        return line_chart(
            table.column("dimension"),
            series,
            title=table.title,
            y_label="seconds" if "time" in table.title else "optimality",
        )
    if table.columns[:3] == ["servers", "map_time_s", "reduce_time_s"]:
        return stacked_bars(
            table.column("servers"),
            {
                "map": table.column("map_time_s"),
                "reduce": table.column("reduce_time_s"),
            },
            title=table.title,
        )
    return ""


def _run_verify(args: argparse.Namespace) -> int:
    from repro.bench.expectations import verify_all

    results = verify_all(quick=args.quick)
    width = max(len(r.name) for r in results)
    lines = ["== reproduction gate =="]
    for r in results:
        status = "PASS" if r.passed else "FAIL"
        lines.append(f"{status}  {r.name:<{width}}  {r.detail}")
    failed = sum(1 for r in results if not r.passed)
    lines.append(
        f"{len(results) - failed}/{len(results)} shape checks passed"
    )
    text = "\n".join(lines)
    print(text)
    if args.output:
        with open(args.output, "a") as fh:
            fh.write(text + "\n")
    return 1 if failed else 0


def _run_trace(argv: List[str]) -> int:
    """``repro trace FILE`` — render a per-phase summary + span tree."""
    parser = argparse.ArgumentParser(
        prog="repro-skyline trace",
        description="Summarize a JSON-lines execution trace produced by --trace",
    )
    parser.add_argument("trace_file", help="JSONL trace file to analyse")
    parser.add_argument(
        "--tasks",
        type=int,
        default=8,
        metavar="N",
        help="task spans shown per phase in the tree (longest first; default 8)",
    )
    args = parser.parse_args(argv)

    from repro.observability.report import (
        TraceError,
        load_trace,
        render_summary,
        render_tree,
    )

    try:
        spans, snapshot = load_trace(args.trace_file)
    except TraceError as exc:
        print(f"trace: {args.trace_file}: {exc}", file=sys.stderr)
        return 1
    print(f"== trace: {args.trace_file} ==")
    print(render_summary(spans, snapshot))
    print()
    print(render_tree(spans, max_tasks_per_phase=args.tasks))
    return 0


def _run_lint(argv: List[str]) -> int:
    """``repro lint [paths]`` — the static contract checker.

    Exit status: 0 clean, 1 findings, 2 usage errors.
    """
    parser = argparse.ArgumentParser(
        prog="repro-skyline lint",
        description=(
            "AST-based contract checker: UDF purity, pickle-safety, lock "
            "discipline, exception hygiene (docs/static_analysis.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="report format (json is the CI artifact format; sarif is "
        "SARIF 2.1.0 for code-scanning uploads)",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="lint only python files changed relative to --base "
        "(git diff plus untracked files), intersected with the paths",
    )
    parser.add_argument(
        "--base",
        default="HEAD",
        metavar="REF",
        help="git ref --changed-only diffs against (default: HEAD)",
    )
    parser.add_argument(
        "--rules",
        metavar="ID[,ID...]",
        help="run only these rule ids (default: every registered rule)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="filter out findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record current findings as a baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    args = parser.parse_args(argv)

    from repro.analysis import (
        BaselineError,
        all_rules,
        changed_python_files,
        render_json,
        render_sarif,
        render_text,
        run_lint,
        write_baseline,
    )

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id:<20} {rule.severity.value:<8} "
                  f"{type(rule).description()}")
        return 0

    rule_ids = None
    if args.rules:
        rule_ids = [part.strip() for part in args.rules.split(",") if part.strip()]
    import os

    paths = list(args.paths)
    if args.changed_only:
        try:
            changed = changed_python_files(args.base)
        except ValueError as exc:
            print(f"lint: {exc}", file=sys.stderr)
            return 2
        requested = [os.path.abspath(p) for p in paths]
        paths = [
            f
            for f in changed
            if any(
                f == p or f.startswith(p.rstrip(os.sep) + os.sep)
                for p in requested
            )
        ]
        if not paths:
            print(f"lint: no python files changed vs {args.base}")
            return 0
    try:
        result = run_lint(
            paths, rule_ids=rule_ids, baseline_path=args.baseline
        )
    except (ValueError, BaselineError) as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        count = write_baseline(args.write_baseline, result.findings)
        print(f"lint: wrote {count} fingerprint(s) to {args.write_baseline}")
        return 0
    root = os.getcwd()
    if args.format == "json":
        print(render_json(result, root=root))
    elif args.format == "sarif":
        print(render_sarif(result, root=root))
    else:
        print(render_text(result, root=root))
    return result.exit_code


def _run_serve(argv: List[str]) -> int:
    """``repro serve`` — the online skyline query service (docs/serving.md)."""
    parser = argparse.ArgumentParser(
        prog="repro-skyline serve",
        description=(
            "Long-running skyline query service: JSON-lines protocol on "
            "stdio (default) or a TCP socket (--tcp HOST:PORT)"
        ),
    )
    parser.add_argument(
        "--tcp",
        metavar="HOST:PORT",
        help="listen on a TCP socket instead of stdio (PORT 0 = pick free)",
    )
    parser.add_argument(
        "--cluster", type=int, default=None, metavar="N",
        help="sharded mode: boot N in-process shard servers on loopback "
        "ports behind a coordinator and speak the cluster protocol "
        "(docs/cluster.md)",
    )
    parser.add_argument(
        "--shard-timeout-s", type=float, default=5.0, metavar="S",
        help="per-shard RPC budget in --cluster mode (default 5.0)",
    )
    parser.add_argument(
        "--filter-k", type=int, default=None, metavar="K",
        help="filter points broadcast per cluster query (0 disables wire "
        "pruning; default: the library default)",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=8, metavar="N",
        help="concurrent computations admitted at once (default 8)",
    )
    parser.add_argument(
        "--max-queue", type=int, default=16, metavar="N",
        help="requests allowed to wait beyond --max-inflight (default 16)",
    )
    parser.add_argument(
        "--cache-size", type=int, default=256, metavar="N",
        help="versioned result-cache capacity in entries (default 256)",
    )
    parser.add_argument(
        "--deadline-s", type=float, default=None, metavar="S",
        help="default per-query deadline in seconds (default: none)",
    )
    parser.add_argument(
        "--no-stale",
        action="store_true",
        help="reject shed requests outright instead of serving a stale "
        "cached answer flagged degraded=True",
    )
    parser.add_argument(
        "--mr-threshold", type=int, default=None, metavar="N",
        help="bulk loads of >= N rows go through the MapReduce pipeline "
        "(default 50000)",
    )
    parser.add_argument(
        "--executor",
        choices=["serial", "threads", "processes"],
        default=None,
        help="engine backend for MR bulk loads (default: $REPRO_EXECUTOR)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker count for MR bulk loads (default 2)",
    )
    parser.add_argument(
        "--kernel",
        choices=["scalar", "block"],
        default=None,
        help="dominance backend for every dataset (default: $REPRO_KERNEL "
        "or scalar; block enables columnar kernels + filter pruning)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write serve-path spans + metrics to FILE as JSON lines",
    )
    parser.add_argument(
        "--events",
        metavar="FILE",
        help="dump the structured event log to FILE as JSON lines on exit "
        "(the CI smoke artifact; see docs/observability.md)",
    )
    parser.add_argument(
        "--slo-latency-s", type=float, default=0.25, metavar="S",
        help="latency SLO threshold in seconds (default 0.25)",
    )
    parser.add_argument(
        "--slo-latency-target", type=float, default=0.95, metavar="F",
        help="fraction of requests that must beat --slo-latency-s "
        "(default 0.95)",
    )
    parser.add_argument(
        "--slo-availability-target", type=float, default=0.999, metavar="F",
        help="fraction of requests that must be answered at all "
        "(default 0.999)",
    )
    parser.add_argument(
        "--data-dir",
        metavar="DIR",
        help="durable serving state: write-ahead log + snapshots under DIR, "
        "with recovery on startup (docs/serving.md); in --cluster mode "
        "each shard persists under DIR/shard-NN",
    )
    parser.add_argument(
        "--fsync",
        choices=["always", "interval", "never"],
        default="interval",
        help="WAL fsync policy with --data-dir (default interval: fsync "
        "every few appends; always = fsync per mutation; never = OS flush "
        "only)",
    )
    parser.add_argument(
        "--snapshot-every", type=int, default=256, metavar="N",
        help="checkpoint (snapshot + WAL truncate) every N mutations per "
        "dataset with --data-dir (default 256)",
    )
    args = parser.parse_args(argv)

    from repro.serving.server import make_tcp_server, serve_stdio
    from repro.serving.service import ServeConfig, SkylineService

    config = ServeConfig(
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        cache_entries=args.cache_size,
        default_deadline_s=args.deadline_s,
        stale_on_overload=not args.no_stale,
        num_workers=args.workers,
        executor=args.executor,
        kernel=args.kernel,
        slo_latency_threshold_s=args.slo_latency_s,
        slo_latency_target=args.slo_latency_target,
        slo_availability_target=args.slo_availability_target,
    )
    if args.mr_threshold is not None:
        config.mr_bulk_threshold = args.mr_threshold
    try:
        config.validate()
    except ValueError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    if args.trace:
        from repro.observability import enable_tracing

        try:
            enable_tracing(args.trace)
        except OSError as exc:
            print(f"--trace: cannot write {args.trace}: {exc}", file=sys.stderr)
            return 1

    durability = None
    if args.data_dir and args.cluster is None:
        from repro.serving.durability import DurabilityConfig, DurabilityManager

        try:
            durability = DurabilityManager(
                DurabilityConfig(
                    args.data_dir,
                    fsync=args.fsync,
                    snapshot_every=args.snapshot_every,
                )
            )
        except (OSError, ValueError) as exc:
            print(f"--data-dir: {exc}", file=sys.stderr)
            return 2

    # Signal-driven exits (SIGINT/SIGTERM) must run the same teardown a
    # clean shutdown op does — dump --events, flush WALs, stop the server
    # — so the handlers convert the signal into a SystemExit that unwinds
    # through the ``finally`` below; ``atexit`` is the belt-and-braces
    # fallback for exits that bypass it.
    _install_exit_signal_handlers()
    cleanup = _ServeCleanup(args, durability)
    atexit.register(cleanup.run)
    try:
        if args.cluster is not None:
            code = _serve_cluster(args, config)
            if code:
                return code
        else:
            service = SkylineService(config, durability=durability)
            if durability is not None:
                for report in service.recover_datasets():
                    print(
                        f"recovered dataset {report.dataset!r}: "
                        f"{report.members} member(s) at generation "
                        f"{report.generation} "
                        f"({report.records_replayed} WAL record(s) replayed"
                        f"{', torn tail dropped' if report.torn_tail else ''})",
                        file=sys.stderr,
                    )
            if args.tcp:
                host, _, port = args.tcp.rpartition(":")
                try:
                    server = make_tcp_server(
                        service, host or "127.0.0.1", int(port)
                    )
                except (OSError, ValueError) as exc:
                    print(f"serve: cannot bind {args.tcp}: {exc}",
                          file=sys.stderr)
                    return 2
                bound = server.server_address
                print(f"serving on {bound[0]}:{bound[1]}", file=sys.stderr)
                cleanup.server = server
                with server:
                    server.serve_forever()
            else:
                serve_stdio(service)
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    finally:
        code = cleanup.run()
        atexit.unregister(cleanup.run)
        if code:
            return code
    return 0


def _install_exit_signal_handlers() -> None:
    """SIGINT/SIGTERM -> ``SystemExit(128 + sig)`` so ``finally`` blocks
    (events dump, WAL flush, server stop) run on signal-driven exits too.

    A no-op off the main thread (``signal.signal`` raises there), which
    keeps the helpers safe to call from embedded/test contexts.
    """

    def _exit(signum: int, frame: object) -> None:
        raise SystemExit(128 + signum)

    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(sig, _exit)
        except ValueError:  # pragma: no cover - non-main thread
            pass


class _ServeCleanup:
    """Idempotent ``repro serve`` teardown: runs from the ``finally``
    path on every exit (clean shutdown op, signal-driven SystemExit,
    KeyboardInterrupt) and is registered with ``atexit`` as a fallback.

    Order matters: stop the server first (bounded join of live sessions,
    so no WAL append is cut mid-frame), then flush + close the WALs,
    then write the observability artifacts.
    """

    def __init__(self, args: argparse.Namespace, durability: Any) -> None:
        self.args = args
        self.durability = durability
        self.server: Any = None
        self._done = False

    def run(self) -> int:
        if self._done:
            return 0
        self._done = True
        code = 0
        if self.server is not None:
            try:
                self.server.stop()
            # Teardown must reach the WAL flush below even if stop()
            # fails; the error is reported, not swallowed.
            except Exception as exc:  # repro: allow[exception-hygiene]
                print(f"serve: stop failed: {exc}", file=sys.stderr)
        if self.durability is not None:
            try:
                self.durability.sync()
                self.durability.close()
            except OSError as exc:
                print(f"--data-dir: WAL flush failed: {exc}", file=sys.stderr)
                code = 1
        if self.args.trace:
            from repro.observability import disable_tracing

            disable_tracing(write_metrics=True)
        if self.args.events:
            from repro.observability import get_events

            try:
                count = get_events().dump(self.args.events)
                print(
                    f"wrote {count} event(s) to {self.args.events}",
                    file=sys.stderr,
                )
            except OSError as exc:
                print(f"--events: cannot write {self.args.events}: {exc}",
                      file=sys.stderr)
                code = 1
        return code


def _serve_cluster(args: argparse.Namespace, shard_config) -> int:
    """The ``repro serve --cluster N`` body: LocalCluster + coordinator."""
    from repro.serving.cluster import (
        ClusterConfig,
        ClusterCoordinator,
        LocalCluster,
        handle_cluster_request,
    )
    from repro.serving.server import make_tcp_server, serve_stdio

    if args.cluster < 1:
        print(f"serve: --cluster must be >= 1, got {args.cluster}",
              file=sys.stderr)
        return 2
    cluster_config = ClusterConfig(
        kernel=args.kernel,
        shard_timeout_s=args.shard_timeout_s,
        cache_entries=args.cache_size,
        default_deadline_s=args.deadline_s,
        slo_latency_threshold_s=args.slo_latency_s,
        slo_latency_target=args.slo_latency_target,
        slo_availability_target=args.slo_availability_target,
    )
    if args.filter_k is not None:
        cluster_config.filter_k = args.filter_k
    try:
        cluster_config.validate()
    except ValueError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    cluster = LocalCluster(
        args.cluster,
        config=shard_config,
        data_dir=args.data_dir,
        fsync=args.fsync,
        snapshot_every=args.snapshot_every,
    )
    coordinator = ClusterCoordinator(
        cluster.addresses(), config=cluster_config
    )
    try:
        if args.tcp:
            host, _, port = args.tcp.rpartition(":")
            try:
                server = make_tcp_server(
                    coordinator,
                    host or "127.0.0.1",
                    int(port),
                    handler=handle_cluster_request,
                )
            except (OSError, ValueError) as exc:
                print(f"serve: cannot bind {args.tcp}: {exc}", file=sys.stderr)
                return 2
            bound = server.server_address
            print(
                f"serving {args.cluster}-shard cluster on "
                f"{bound[0]}:{bound[1]}",
                file=sys.stderr,
            )
            with server:
                server.serve_forever()
        else:
            serve_stdio(coordinator, handler=handle_cluster_request)
    finally:
        coordinator.close()
        cluster.close()
    return 0


def _run_coordinator(argv: List[str]) -> int:
    """``repro coordinator`` — fan-out front end over external shards."""
    parser = argparse.ArgumentParser(
        prog="repro-skyline coordinator",
        description=(
            "Cluster coordinator over already-running `repro serve --tcp` "
            "shard servers: JSON-lines cluster protocol on stdio (default) "
            "or a TCP socket (docs/cluster.md)"
        ),
    )
    parser.add_argument(
        "--shard",
        action="append",
        required=True,
        metavar="HOST:PORT",
        dest="shards",
        help="address of one shard server (repeat once per shard)",
    )
    parser.add_argument(
        "--tcp",
        metavar="HOST:PORT",
        help="listen on a TCP socket instead of stdio (PORT 0 = pick free)",
    )
    parser.add_argument(
        "--kernel",
        choices=["scalar", "block"],
        default=None,
        help="dominance backend for merges and filter selection "
        "(default: $REPRO_KERNEL or scalar)",
    )
    parser.add_argument(
        "--filter-k", type=int, default=None, metavar="K",
        help="filter points broadcast per query (0 disables wire pruning; "
        "default: the library default)",
    )
    parser.add_argument(
        "--shard-timeout-s", type=float, default=5.0, metavar="S",
        help="per-shard RPC budget in seconds (default 5.0)",
    )
    parser.add_argument(
        "--connect-timeout-s", type=float, default=5.0, metavar="S",
        help="TCP connect budget per shard in seconds (default 5.0)",
    )
    parser.add_argument(
        "--cache-size", type=int, default=256, metavar="N",
        help="cluster result-cache capacity in entries (default 256)",
    )
    parser.add_argument(
        "--deadline-s", type=float, default=None, metavar="S",
        help="default per-query deadline in seconds (default: none)",
    )
    args = parser.parse_args(argv)

    from repro.serving.cluster import (
        ClusterConfig,
        ClusterCoordinator,
        handle_cluster_request,
    )
    from repro.serving.server import make_tcp_server, serve_stdio

    config = ClusterConfig(
        kernel=args.kernel,
        shard_timeout_s=args.shard_timeout_s,
        connect_timeout_s=args.connect_timeout_s,
        cache_entries=args.cache_size,
        default_deadline_s=args.deadline_s,
    )
    if args.filter_k is not None:
        config.filter_k = args.filter_k
    try:
        config.validate()
    except ValueError as exc:
        print(f"coordinator: {exc}", file=sys.stderr)
        return 2
    coordinator = ClusterCoordinator(args.shards, config=config)
    try:
        if args.tcp:
            host, _, port = args.tcp.rpartition(":")
            try:
                server = make_tcp_server(
                    coordinator,
                    host or "127.0.0.1",
                    int(port),
                    handler=handle_cluster_request,
                )
            except (OSError, ValueError) as exc:
                print(f"coordinator: cannot bind {args.tcp}: {exc}",
                      file=sys.stderr)
                return 2
            bound = server.server_address
            print(
                f"coordinating {len(args.shards)} shard(s) on "
                f"{bound[0]}:{bound[1]}",
                file=sys.stderr,
            )
            with server:
                server.serve_forever()
        else:
            serve_stdio(coordinator, handler=handle_cluster_request)
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    finally:
        coordinator.close()
    return 0


def _run_top(argv: List[str]) -> int:
    """``repro top`` — live dashboard over the telemetry verbs."""
    parser = argparse.ArgumentParser(
        prog="repro-skyline top",
        description=(
            "Refreshing terminal dashboard for a running `repro serve --tcp` "
            "process: QPS, admission/cache state, latency quantiles, "
            "per-dataset generations, partition skew, SLO burn, events"
        ),
    )
    parser.add_argument(
        "--tcp",
        required=True,
        metavar="HOST:PORT",
        help="address of the running `repro serve --tcp` server",
    )
    parser.add_argument(
        "--interval", type=float, default=2.0, metavar="S",
        help="seconds between polls (default 2.0)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit (scripting / CI mode)",
    )
    parser.add_argument(
        "--count", type=int, default=None, metavar="N",
        help="exit after N frames (frames append instead of repainting)",
    )
    parser.add_argument(
        "--events", type=int, default=8, metavar="N",
        help="event-log tail length shown per frame (default 8)",
    )
    args = parser.parse_args(argv)
    host, _, port = args.tcp.rpartition(":")
    try:
        port_num = int(port)
    except ValueError:
        print(f"top: bad --tcp address {args.tcp!r}", file=sys.stderr)
        return 2
    if args.interval <= 0:
        print(f"top: --interval must be > 0, got {args.interval}", file=sys.stderr)
        return 2

    from repro.serving.top import run_top

    return run_top(
        host or "127.0.0.1",
        port_num,
        interval_s=args.interval,
        once=args.once,
        count=args.count,
        event_tail=args.events,
    )


def _run_bench(argv: List[str]) -> int:
    """``repro bench`` — the perf-trajectory suite (engine + serving)."""
    parser = argparse.ArgumentParser(
        prog="repro-skyline bench",
        description=(
            "Run the fixed perf-trajectory suite (MR skyline points per "
            "partitioning scheme + serving-layer latencies) and optionally "
            "write the machine-readable JSON record"
        ),
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="write the perf-trajectory record to FILE (e.g. BENCH_5.json)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="scaled-down cardinalities for a fast pass (the CI setting)",
    )
    parser.add_argument(
        "--executor",
        choices=["serial", "threads", "processes"],
        default=None,
        help="engine backend for the pipeline runs (default: $REPRO_EXECUTOR)",
    )
    parser.add_argument(
        "--kernel",
        choices=["scalar", "block"],
        default=None,
        help="dominance backend for the engine/serving sections (default: "
        "$REPRO_KERNEL or scalar); the kernels section always runs both",
    )
    args = parser.parse_args(argv)

    from repro.bench.perf import perf_trajectory, render_trajectory

    record = perf_trajectory(
        quick=args.quick, executor=args.executor, kernel=args.kernel
    )
    print(render_trajectory(record))
    if args.json:
        import json as _json

        try:
            with open(args.json, "w", encoding="utf-8") as fh:
                _json.dump(record, fh, indent=2, default=str)
                fh.write("\n")
        except OSError as exc:
            print(f"--json: cannot write {args.json}: {exc}", file=sys.stderr)
            return 1
        print(f"wrote {args.json}")
    return 0


def _run_loadtest(argv: List[str]) -> int:
    """``repro loadtest`` — open-loop traffic + crash/recovery scenario."""
    parser = argparse.ArgumentParser(
        prog="repro-skyline loadtest",
        description=(
            "Open-loop load generator: replay a mix of the four query "
            "kinds plus mutations at a target QPS against a live server "
            "(--host/--port), or run the full durability scenario — "
            "spawn, load, SIGKILL, recover — and report latency "
            "percentiles, shed/degraded rates and recovery time"
        ),
    )
    parser.add_argument("--host", default=None, help="drive a running server")
    parser.add_argument("--port", type=int, default=None)
    parser.add_argument("--dataset", default="loadtest", metavar="NAME")
    parser.add_argument("--qps", type=float, default=200.0, metavar="N",
                        help="target offered load (default 200)")
    parser.add_argument("--duration", type=float, default=2.0, metavar="S",
                        help="seconds of traffic (default 2.0)")
    parser.add_argument("--workers", type=int, default=8, metavar="N",
                        help="generator connections (default 8)")
    parser.add_argument("--points", type=int, default=400, metavar="N",
                        help="dataset cardinality (default 400)")
    parser.add_argument("--dims", type=int, default=3, metavar="D",
                        help="dataset dimensionality (default 3)")
    parser.add_argument("--mutations", type=float, default=0.1, metavar="F",
                        help="fraction of ops that mutate (default 0.1)")
    parser.add_argument("--seed", type=int, default=0, metavar="N",
                        help="request-stream seed (default 0)")
    parser.add_argument(
        "--data-dir", metavar="DIR", default=None,
        help="scenario mode: durability directory (default: a temp dir)",
    )
    parser.add_argument("--fsync", choices=["always", "interval", "never"],
                        default="always",
                        help="scenario mode WAL fsync policy (default always)")
    parser.add_argument("--snapshot-every", type=int, default=64, metavar="N",
                        help="scenario mode checkpoint interval (default 64)")
    parser.add_argument(
        "--kernel", choices=["scalar", "block"], default=None,
        help="dominance backend of the spawned server (scenario mode)",
    )
    parser.add_argument("--json", metavar="FILE",
                        help="write the stats record to FILE")
    args = parser.parse_args(argv)

    from repro.bench.loadtest import (
        LoadTestConfig,
        dump_json,
        render,
        run_loadtest,
        run_scenario,
    )
    from repro.serving.client import ServingClient

    config = LoadTestConfig(
        dataset=args.dataset,
        qps=args.qps,
        duration_s=args.duration,
        workers=args.workers,
        mutation_fraction=args.mutations,
        n_points=args.points,
        dims=args.dims,
        seed=args.seed,
    )
    try:
        config.validate()
    except ValueError as exc:
        print(f"loadtest: {exc}", file=sys.stderr)
        return 2
    try:
        if args.host is not None or args.port is not None:
            if args.host is None or args.port is None:
                print("loadtest: --host and --port go together",
                      file=sys.stderr)
                return 2
            with ServingClient.connect(args.host, args.port, timeout=10.0) as c:
                response = c.register(args.dataset, config.points())
                if not response.get("ok"):
                    print(f"loadtest: register failed: {response}",
                          file=sys.stderr)
                    return 1
            stats = run_loadtest(args.host, args.port, config)
        else:
            serve_args = []
            if args.kernel:
                serve_args += ["--kernel", args.kernel]
            if args.data_dir:
                stats = run_scenario(
                    config,
                    args.data_dir,
                    serve_args=serve_args,
                    fsync=args.fsync,
                    snapshot_every=args.snapshot_every,
                )
            else:
                import tempfile

                with tempfile.TemporaryDirectory() as tmp:
                    stats = run_scenario(
                        config,
                        tmp,
                        serve_args=serve_args,
                        fsync=args.fsync,
                        snapshot_every=args.snapshot_every,
                    )
    except (OSError, RuntimeError) as exc:
        print(f"loadtest: {exc}", file=sys.stderr)
        return 1
    print(render(stats))
    if args.json:
        try:
            dump_json(stats, args.json)
        except OSError as exc:
            print(f"--json: cannot write {args.json}: {exc}", file=sys.stderr)
            return 1
        print(f"wrote {args.json}")
    return 0


def main(argv: List[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # Opt-in runtime lock-order sanitizer (REPRO_SANITIZE=locks) must be
    # installed before any command constructs serving/executor state.
    from repro.observability.sanitizer import install_from_env

    install_from_env()
    # 'trace', 'lint', 'serve' and 'bench' are not experiments, so they
    # take their own options and dispatch before the experiment parser.
    if argv[:1] == ["trace"]:
        return _run_trace(argv[1:])
    if argv[:1] == ["lint"]:
        return _run_lint(argv[1:])
    if argv[:1] == ["serve"]:
        return _run_serve(argv[1:])
    if argv[:1] == ["coordinator"]:
        return _run_coordinator(argv[1:])
    if argv[:1] == ["top"]:
        return _run_top(argv[1:])
    if argv[:1] == ["bench"]:
        return _run_bench(argv[1:])
    if argv[:1] == ["loadtest"]:
        return _run_loadtest(argv[1:])
    args = build_parser().parse_args(argv)
    if args.experiment == "verify":
        return _run_verify(args)
    executor = args.executor
    if args.workers is not None:
        if args.workers <= 0:
            print(f"--workers must be >= 1, got {args.workers}", file=sys.stderr)
            return 2
        # A sized executor instance: make_executor passes it through, and the
        # lazy pools re-create themselves across experiments after each
        # pipeline releases them.
        from repro.mapreduce.executors import make_executor

        executor = make_executor(args.executor, num_workers=args.workers)
    registry = _experiments(args.quick, executor=executor, pipelined=args.pipelined)
    names = list(registry) if args.experiment == "all" else [args.experiment]
    previous_kernel = None
    if args.kernel:
        # Same pattern as --faults: the experiments build their own
        # algorithm calls layers below the CLI, so the flag installs the
        # process-default kernel the way $REPRO_KERNEL would.
        from repro.core.kernels import set_default_kernel

        previous_kernel = set_default_kernel(args.kernel)
    previous_plan = None
    if args.faults:
        # Install the plan process-wide: every Runner the experiments build
        # (they construct their own, layers below the CLI) picks it up, the
        # same way $REPRO_EXECUTOR reaches the default executor choice.
        from repro.mapreduce.faults import FaultPlan, set_default_fault_plan

        try:
            plan = FaultPlan.load(args.faults)
        except (OSError, ValueError) as exc:
            print(f"--faults: cannot load {args.faults}: {exc}", file=sys.stderr)
            return 2
        previous_plan = set_default_fault_plan(plan)
    if args.trace:
        from repro.observability import disable_tracing, enable_tracing

        try:
            enable_tracing(args.trace)
        except OSError as exc:
            print(f"--trace: cannot write {args.trace}: {exc}", file=sys.stderr)
            return 1
    rendered = []
    try:
        for name in names:
            table = registry[name]()
            text = _render(table, args)
            rendered.append(text)
            print(text)
    finally:
        # Close the trace even on failure: spans export as they finish, so a
        # crashed run still leaves a usable partial trace plus the metrics
        # collected so far.
        if args.trace:
            disable_tracing(write_metrics=True)
        if args.kernel:
            from repro.core.kernels import set_default_kernel

            set_default_kernel(previous_kernel)
        if args.faults:
            from repro.mapreduce.faults import set_default_fault_plan

            set_default_fault_plan(previous_plan)
    if args.output:
        with open(args.output, "a") as fh:
            fh.write("\n".join(rendered) + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `repro trace f | head`
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
