"""CLI surfaces of the cluster: ``serve --cluster`` and ``coordinator``.

End-to-end over real pipes/sockets:

* ``repro serve --cluster N`` — in-process fleet + coordinator speaking
  the (superset) JSON-lines protocol over stdio;
* ``repro coordinator --shard ...`` — coordinator-only process fanning
  out to externally-owned shard servers;
* ``repro top`` — the cluster frame rendered from a live coordinator's
  ``stats`` (shard table, wire-pruning line).
"""

import subprocess
import sys

import numpy as np
import pytest

from repro.serving.client import ServingClient
from repro.serving.cluster import ClusterCoordinator, LocalCluster
from repro.serving.cluster.protocol import handle_cluster_request
from repro.serving.queries import QuerySpec, evaluate
from repro.serving.top import collect_sample, render_frame
from tests.serving.harness import spawn_server, subprocess_env, tcp_server


def _points(n=40, d=3, seed=13):
    return np.random.default_rng(seed).random((n, d)) + 0.01


def _expected_ids(rows, spec):
    return list(evaluate(spec, np.arange(rows.shape[0], dtype=np.intp), rows))


class TestServeCluster:
    def test_stdio_session(self):
        rows = _points()
        with spawn_server("--cluster", "2") as client:
            pong = client.ping()
            assert pong["pong"] and pong["shards"] == 2, pong

            loaded = client.register(
                "qws", rows.tolist(), shard_fn="angle"
            )
            assert loaded["ok"] and loaded["shards"] == 2, loaded
            assert loaded["generations"] == [1, 1], loaded

            first = client.query("qws")
            assert first["ok"] and not first["degraded"], first
            assert first["ids"] == _expected_ids(rows, QuerySpec(dataset="qws"))
            assert len(first["generations"]) == 2, first

            warm = client.query("qws")
            assert warm["cache_hit"] and warm["ids"] == first["ids"], warm

            inserted = client.insert("qws", [0.001, 0.001, 0.001])
            assert inserted["id"] == rows.shape[0], inserted
            assert sum(inserted["generations"]) == 3, inserted

            after = client.query("qws")
            assert not after["cache_hit"], after
            assert inserted["id"] in after["ids"], after

            stats = client.stats()
            assert len(stats["shards"]) == 2, stats
            assert all(
                s["state"] == "up" for s in stats["shards"].values()
            ), stats
            held = stats["counters"]["serve.cluster.points_held"]
            sent = stats["counters"]["serve.cluster.candidates_received"]
            assert 0 < sent < held, (sent, held)

            assert client.shutdown()["bye"] is True
        assert client.returncode == 0

    def test_cluster_size_validated(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "serve", "--cluster", "0"],
            env=subprocess_env(),
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 2, proc.stderr
        assert "--cluster" in proc.stderr


class TestCoordinatorCommand:
    def test_coordinator_over_external_shards(self):
        rows = _points(seed=29)
        with LocalCluster(2) as fleet:
            argv = [sys.executable, "-m", "repro.cli", "coordinator"]
            for address in fleet.addresses():
                argv += ["--shard", address]
            proc = subprocess.Popen(
                argv,
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                text=True,
                env=subprocess_env(),
            )
            assert proc.stdin is not None and proc.stdout is not None
            with ServingClient(proc.stdout, proc.stdin, proc=proc) as client:
                pong = client.ping()
                assert pong["pong"] and pong["shards"] == 2, pong

                loaded = client.register("ext", rows.tolist(), shard_fn="hash")
                assert loaded["generations"] == [1, 1], loaded

                first = client.query("ext")
                assert first["ids"] == _expected_ids(
                    rows, QuerySpec(dataset="ext")
                )

                health = client.health()
                assert health["status"] in ("healthy", "ok"), health

                assert client.shutdown()["bye"] is True
            assert client.returncode == 0

    def test_coordinator_requires_shards(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "coordinator"],
            env=subprocess_env(),
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 2, proc.stderr
        assert "--shard" in proc.stderr


class TestTopClusterFrame:
    def test_frame_shows_shards_and_wire_traffic(self):
        rows = _points(n=80, seed=3)
        with LocalCluster(3) as fleet:
            with ClusterCoordinator(fleet.addresses()) as coordinator:
                coordinator.register("qws", rows, shard_fn="angle")
                coordinator.query(QuerySpec(dataset="qws"))
                fleet.kill(2)
                hurt = coordinator.query(
                    QuerySpec(dataset="qws", kind="skyband", k=2)
                )
                assert hurt.degraded

                with tcp_server(
                    coordinator, handler=handle_cluster_request
                ) as (host, port):
                    with ServingClient.connect(host, port) as client:
                        sample = collect_sample(client)

        frame = render_frame(sample, target=f"{host}:{port}")
        assert "shard" in frame and "lost" in frame, frame
        assert "wire:" in frame, frame
        assert "candidates crossed" in frame, frame
        assert "degraded" in frame, frame


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
