"""Violating fixture for udf-no-sleep.

Each line carrying a ``# VIOLATION: <rule-id>`` marker must produce exactly
that finding; the test asserts the (rule id, line) pairs match the markers.
Covers the aliasing holes udf-purity's dotted ``time.sleep`` ban misses:
a from-import ``sleep``, ``asyncio.sleep``, and an attribute ``.sleep``.
"""

import asyncio
import time
from time import sleep


class Mapper:
    pass


class Reducer:
    pass


class DrowsyMapper(Mapper):
    def __init__(self, clock=None):
        self.clock = clock

    def map(self, key, value):
        time.sleep(0.1)  # VIOLATION: udf-no-sleep
        sleep(0.1)  # VIOLATION: udf-no-sleep
        self.clock.sleep(0.1)  # VIOLATION: udf-no-sleep
        yield key, value


class NappingReducer(Reducer):
    async def reduce(self, key, values):
        await asyncio.sleep(0.1)  # VIOLATION: udf-no-sleep
        yield key, sum(values)


class Job:
    def __init__(self, name, mapper, reducer):
        self.name = name


JOB = Job("sleepy", DrowsyMapper, NappingReducer)
