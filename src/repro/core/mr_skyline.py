"""The three MapReduce skyline algorithms: MR-Dim, MR-Grid, MR-Angle.

This module implements Algorithm 1 of the paper (and its MR-Dim / MR-Grid
siblings) as a two-job chain on the :mod:`repro.mapreduce` engine:

**Job 1 — Partitioning job** (Algorithm 1, lines 1–10)
    *Map*: transform each point to the partition id given by the data-space
    partitioning scheme (for MR-Angle this is where the hyperspherical
    transform of Eq. 1 runs) and emit ``(partition_id, point)``.  For
    MR-Grid, points in dominated (prunable) cells are dropped here.
    *Reduce*: one reduce group per data-space partition computes its local
    skyline with BNL.

**Job 2 — Merging job** (Algorithm 1, lines 11–15)
    *Map*: re-key every local-skyline point to a single key.
    *Reduce*: one reducer merges all local skylines with BNL into the global
    skyline.

Points travel through the engine in *blocks* (``(index_array, row_matrix)``
batches) rather than single rows — the Python-level analogue of Hadoop
object reuse — so the measured task times are dominated by dominance work,
not per-record interpreter overhead.  Block boundaries never affect results.

The driver entry point is :func:`run_mr_skyline`; the returned
:class:`MRSkylineResult` carries the global skyline, the per-partition local
skylines (for the §VI optimality metric), all engine timings/counters, and a
hook into the cluster simulator for the Figure-6 server sweep.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.core.blocks import PointBlock, concat_blocks
from repro.core.bnl import bnl_skyline
from repro.core.dominance import DominanceCounter, validate_points
from repro.core.filtering import (
    DEFAULT_FILTER_K,
    DEFAULT_FILTER_SAMPLE,
    FilterScore,
    compute_filter_points,
)
from repro.core.kernels import DominanceKernel, get_kernel
from repro.core.partitioning import (
    GridPartitioner,
    SpacePartitioner,
    make_partitioner,
)
from repro.mapreduce.cluster import ClusterSpec
from repro.mapreduce.counters import Counters
from repro.mapreduce.executors import Executor, make_executor
from repro.mapreduce.job import ChainResult, Job, JobChain, JobConf
from repro.mapreduce.partitioner import KeyFieldPartitioner, SingleReducerPartitioner
from repro.mapreduce.runner import Runner
from repro.mapreduce.simulation import SimulatedPipeline, simulate_pipeline
from repro.mapreduce.tasks import MapContext, Mapper, ReduceContext, Reducer
from repro.mapreduce.types import TaskKind
from repro.observability.metrics import (
    DEFAULT_COUNT_BUCKETS,
    get_metrics,
    observe_partition_skew,
)
from repro.observability.tracing import get_tracer

__all__ = [
    "MRSkylineResult",
    "run_mr_skyline",
    "update_mr_skyline",
    "default_partition_count",
    "PartitionAssignMapper",
    "LocalSkylineReducer",
    "GlobalMergeMapper",
    "GlobalMergeReducer",
    "COUNTER_GROUP",
    "PRUNE_GROUP",
]

#: Counter group used by the skyline jobs.
COUNTER_GROUP = "skyline"

#: Counter group of the filter-pruning stage (the ``prune.*`` family):
#: ``points_pruned`` — rows dropped map-side by the broadcast filter set,
#: ``filter_tests`` — dominance tests the filter stage spent to drop them,
#: ``filter_points`` — size of the broadcast filter set.
PRUNE_GROUP = "prune"

#: Rows per block record flowing through the engine.
DEFAULT_BLOCK_ROWS = 4096

Block = Tuple[np.ndarray, np.ndarray]  # (indices, rows)


def default_partition_count(num_workers: int) -> int:
    """The paper's empirical rule: partitions = 2 × number of nodes."""
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    return 2 * num_workers


# ---------------------------------------------------------------------------
# Job 1: partition + local skyline
# ---------------------------------------------------------------------------


class PartitionAssignMapper(Mapper):
    """Routes point blocks to data-space partitions.

    Params: ``partitioner`` (fitted :class:`SpacePartitioner`), optional
    ``pruned`` (frozenset of partition ids to drop — MR-Grid's dominated
    cells), optional ``filters`` (``(k, d)`` broadcast filter rows — the
    Ciaccia–Martinenghi map-side pruning set) and ``kernel`` (dominance
    backend name).

    Filter pruning runs *before* partition assignment: a point dominated
    by any filter row can never reach the skyline, so it never enters the
    shuffle at all.  Pruning is exact — every filter row is an actual data
    row, so the global skyline is unchanged.
    """

    def map(self, key: Any, value: Block, ctx: MapContext) -> None:
        block = PointBlock.from_tuple(value)
        partitioner: SpacePartitioner = self.params["partitioner"]
        pruned: frozenset = self.params.get("pruned", frozenset())
        filters = self.params.get("filters")
        ctx.increment(COUNTER_GROUP, "points_mapped", len(block))
        if filters is not None and filters.shape[0] and len(block):
            knl = get_kernel(self.params.get("kernel"))
            local = DominanceCounter()
            alive = knl.filter_survivors(
                filters, block.rows, counter=local, stage="prune"
            )
            ctx.increment(PRUNE_GROUP, "filter_tests", local.tests)
            dead = int(alive.size) - int(alive.sum())
            if dead:
                ctx.increment(COUNTER_GROUP, "points_pruned", dead)
                ctx.increment(PRUNE_GROUP, "points_pruned", dead)
                block = block.take(alive)
        ids = partitioner.assign_block(block)
        for pid in np.unique(ids):
            mask = ids == pid
            if int(pid) in pruned:
                ctx.increment(COUNTER_GROUP, "points_pruned", int(mask.sum()))
                continue
            ctx.emit(int(pid), block.take(mask).to_tuple())


class LocalSkylineReducer(Reducer):
    """BNL over one data-space partition (Algorithm 1, lines 7–10).

    Params: optional ``window_size`` for bounded-window BNL, optional
    ``kernel`` (dominance backend name).
    """

    def reduce(self, key: Any, values: Sequence[Block], ctx: ReduceContext) -> None:
        block = concat_blocks([PointBlock.from_tuple(b) for b in values])
        indices, rows = block.ids, block.rows
        result = bnl_skyline(
            rows,
            window_size=self.params.get("window_size"),
            kernel=self.params.get("kernel"),
        )
        ctx.increment(COUNTER_GROUP, "local_dominance_tests", result.dominance_tests)
        ctx.increment(COUNTER_GROUP, "local_skyline_points", int(result.indices.size))
        ctx.increment(COUNTER_GROUP, "local_input_points", int(rows.shape[0]))
        # Per-task skew distribution.  Deliberately impure: process-pool
        # workers observe into a registry copy the driver never merges, so
        # this histogram is best-effort everywhere but the serial runner —
        # the measurement path — which sees every task.  Result data is
        # unaffected (counters travel via ctx and are driver-merged).
        # repro: allow[udf-purity]
        get_metrics().histogram(
            "skyline.dominance_tests_per_task", DEFAULT_COUNT_BUCKETS
        ).observe(result.dominance_tests)
        ctx.emit(key, (indices[result.indices], rows[result.indices]))


# ---------------------------------------------------------------------------
# Job 2: global merge
# ---------------------------------------------------------------------------


class GlobalMergeMapper(Mapper):
    """Re-keys every local skyline block to a single merge key
    (Algorithm 1, lines 12–14: ``output(null, s_i)``)."""

    def map(self, key: Any, value: Block, ctx: MapContext) -> None:
        ctx.emit(0, value)


class TreeMergeMapper(Mapper):
    """Re-keys partition ``p`` to merge group ``p // fan_in``.

    One round of the hierarchical (tree) merge: ``fan_in`` local skylines
    land on each reducer, which BNL-merges them into one partial skyline.
    Rounds repeat until a single group remains.  Params: ``fan_in``.
    """

    def map(self, key: Any, value: Block, ctx: MapContext) -> None:
        ctx.emit(int(key) // int(self.params["fan_in"]), value)


class GlobalMergeReducer(Reducer):
    """BNL merge of all local skylines (Algorithm 1, line 15)."""

    def reduce(self, key: Any, values: Sequence[Block], ctx: ReduceContext) -> None:
        block = concat_blocks([PointBlock.from_tuple(b) for b in values])
        indices, rows = block.ids, block.rows
        result = bnl_skyline(
            rows,
            window_size=self.params.get("window_size"),
            kernel=self.params.get("kernel"),
        )
        ctx.increment(COUNTER_GROUP, "merge_dominance_tests", result.dominance_tests)
        ctx.increment(COUNTER_GROUP, "global_skyline_points", int(result.indices.size))
        # Best-effort skew histogram; see LocalSkylineReducer.reduce.
        # repro: allow[udf-purity]
        get_metrics().histogram(
            "skyline.dominance_tests_per_task", DEFAULT_COUNT_BUCKETS
        ).observe(result.dominance_tests)
        ctx.emit(0, (indices[result.indices], rows[result.indices]))


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class MRSkylineResult:
    """Everything produced by one MR skyline run."""

    method: str
    global_indices: np.ndarray
    local_skylines: Dict[int, np.ndarray]
    partition_ids: np.ndarray
    chain: ChainResult
    counters: Counters
    num_partitions: int
    num_workers: int
    points_pruned: int = 0
    partitioner: SpacePartitioner | None = field(default=None, repr=False)
    #: Executor the engine ran under ("serial" / "threads" / "processes").
    executor: str = "serial"
    #: Whether the two-job chain ran in pipelined (overlapped) mode.
    pipelined: bool = False
    #: Dominance backend every UDF ran with ("scalar" / "block").
    kernel: str = "scalar"
    #: Size of the broadcast filter set (0 — filter pruning disabled).
    filter_points: int = 0

    @property
    def processing_time_s(self) -> float:
        """Measured wall-clock of the whole two-job chain (driver-side)."""
        return self.chain.wall_s

    @property
    def dominance_tests(self) -> int:
        return self.counters.value(
            COUNTER_GROUP, "local_dominance_tests"
        ) + self.counters.value(COUNTER_GROUP, "merge_dominance_tests")

    @property
    def map_busy_s(self) -> float:
        return self.chain.phase_stats(TaskKind.MAP).busy_s

    @property
    def reduce_busy_s(self) -> float:
        return self.chain.phase_stats(TaskKind.REDUCE).busy_s

    def global_points(self, points: np.ndarray) -> np.ndarray:
        return np.asarray(points, dtype=np.float64)[self.global_indices]

    def simulate(
        self, cluster: ClusterSpec, *, pipelined: bool | None = None
    ) -> SimulatedPipeline:
        """Replay the measured chain on a simulated cluster (Figure 6).

        ``pipelined`` defaults to how this result was actually executed;
        pass ``True``/``False`` to model the other chaining mode instead.
        """
        if pipelined is None:
            pipelined = self.pipelined
        return simulate_pipeline(self.chain.results, cluster, pipelined=pipelined)

    def summary(self) -> dict:
        return {
            "method": self.method,
            "executor": self.executor,
            "pipelined": self.pipelined,
            "kernel": self.kernel,
            "filter_points": self.filter_points,
            "partitions": self.num_partitions,
            "workers": self.num_workers,
            "global_skyline": int(self.global_indices.size),
            "local_skyline_total": int(
                sum(v.size for v in self.local_skylines.values())
            ),
            "points_pruned": self.points_pruned,
            "dominance_tests": self.dominance_tests,
            "processing_time_s": round(self.processing_time_s, 6),
        }


@contextmanager
def _owned_runner(runner: Runner, owned: bool) -> Iterator[Runner]:
    """Release a runner (and its executor pool) only if we created it."""
    try:
        yield runner
    finally:
        if owned:
            runner.close()


def _block_records(points: np.ndarray, block_rows: int) -> List[Tuple[int, Block]]:
    """Chunk the dataset into engine records of ``block_rows`` points."""
    n = points.shape[0]
    records = []
    for start in range(0, n, block_rows):
        stop = min(start + block_rows, n)
        indices = np.arange(start, stop, dtype=np.intp)
        records.append((start, (indices, points[start:stop])))
    return records or [(0, (np.empty(0, dtype=np.intp), points[:0]))]


def run_mr_skyline(
    points: np.ndarray,
    *,
    method: str = "angle",
    num_workers: int = 4,
    num_partitions: int | None = None,
    runner: Runner | None = None,
    window_size: int | None = None,
    use_combiner: bool = False,
    prune_grid_cells: bool = True,
    block_rows: int = DEFAULT_BLOCK_ROWS,
    partitioner: SpacePartitioner | None = None,
    partitioner_kwargs: dict | None = None,
    merge_strategy: str = "single",
    merge_fan_in: int = 8,
    executor: str | Executor | None = None,
    pipelined: bool = False,
    kernel: str | DominanceKernel | None = None,
    prune_filter_k: int | None = None,
    filter_sample: int = DEFAULT_FILTER_SAMPLE,
    filter_score: FilterScore = "volume",
    filter_seed: int = 0,
) -> MRSkylineResult:
    """Run one of the MapReduce skyline algorithms end to end.

    Parameters
    ----------
    points:
        ``(n, d)`` non-negative data, minimisation in every attribute.
    method:
        ``"dim"`` (MR-Dim), ``"grid"`` (MR-Grid), ``"angle"`` (MR-Angle) or
        ``"random"`` (ablation baseline).  Ignored when ``partitioner`` is
        given explicitly.
    num_workers:
        Cluster-node count the run models; the default partition count
        follows the paper's ``2 × workers`` rule.
    num_partitions:
        Override the partition-count rule.
    runner:
        Engine runner.  By default one is built from ``executor`` (or, when
        that is ``None`` too, from ``$REPRO_EXECUTOR``, falling back to
        serial — the measurement configuration with clean per-task timings
        for the simulator).  A runner built here owns one executor for the
        whole pipeline, so pool workers are reused across the chained jobs.
    window_size:
        Bounded BNL window for local and merge stages (ablation).
    use_combiner:
        Run the local-skyline reducer as a map-side combiner too
        (ablation; the paper's pipeline does not combine map-side).
    prune_grid_cells:
        For MR-Grid, drop points of dominated cells at Map time (§III-B).
    merge_strategy:
        ``"single"`` — Algorithm 1's literal merge: one reducer BNL-merges
        every local skyline (the measured serial bottleneck at scale).
        ``"tree"`` — hierarchical merge: rounds of ``merge_fan_in``-way
        partial merges until one group remains, trading extra job
        overheads for a parallelisable merge (our extension; the paper
        hints at iterative MapReduce via Twister for exactly this).
    merge_fan_in:
        Local skylines merged per reducer per tree round.
    executor:
        Executor name (``"serial"`` / ``"threads"`` / ``"processes"``) or a
        ready :class:`~repro.mapreduce.executors.Executor` instance for the
        default runner; ignored when ``runner`` is given.
    pipelined:
        Overlap the two jobs: the merge job's map task *i* consumes local
        skyline partition *i* as soon as its reducer finishes, instead of
        waiting for the whole partitioning job.  Requires
        ``merge_strategy="single"`` (tree rounds are sized from the data,
        which is still in flight while pipelining).  Results are identical.
    kernel:
        Dominance backend for every UDF (name or instance); ``None``
        resolves the process default (``--kernel`` / ``$REPRO_KERNEL``,
        else ``scalar``).  Results are identical across backends.
    prune_filter_k:
        Size of the Ciaccia–Martinenghi filter set broadcast to map tasks
        (0 disables pruning).  ``None`` picks a kernel-dependent default:
        :data:`~repro.core.filtering.DEFAULT_FILTER_K` under a batch
        kernel, 0 under the scalar reference — so scalar runs stay
        bit-comparable with every earlier BENCH record.
    filter_sample / filter_score / filter_seed:
        Sample size, ranking criterion (``"volume"`` / ``"entropy"``) and
        RNG seed for :func:`repro.core.filtering.compute_filter_points`.

    Returns
    -------
    :class:`MRSkylineResult`
    """
    pts = validate_points(points)
    knl = get_kernel(kernel)
    if prune_filter_k is None:
        # Kernel-dependent default: the scalar reference stays exactly the
        # historical pipeline (no pruning stage at all); batch kernels get
        # the full Ciaccia–Martinenghi treatment out of the box.
        prune_filter_k = DEFAULT_FILTER_K if knl.batch else 0
    if num_partitions is None:
        num_partitions = default_partition_count(num_workers)
    if merge_strategy not in ("single", "tree"):
        raise ValueError(
            f"unknown merge_strategy {merge_strategy!r}; use 'single' or 'tree'"
        )
    if merge_fan_in < 2:
        raise ValueError(f"merge_fan_in must be >= 2, got {merge_fan_in}")
    if pipelined and merge_strategy != "single":
        raise ValueError(
            "pipelined=True requires merge_strategy='single': tree-merge "
            "rounds are sized from intermediate data that is still in "
            "flight while pipelining"
        )
    owns_runner = runner is None
    if runner is None:
        runner = Runner(make_executor(executor, num_workers=num_workers))

    with _owned_runner(runner, owns_runner), get_tracer().span(
        f"mr-skyline:{method if partitioner is None else partitioner.scheme}",
        kind="pipeline",
        n=int(pts.shape[0]),
        d=int(pts.shape[1]),
        workers=num_workers,
        merge_strategy=merge_strategy,
        executor=runner.executor_name,
        pipelined=pipelined,
        kernel=knl.name,
    ) as pipeline_span:
        if partitioner is None:
            partitioner = make_partitioner(
                method, num_partitions, **(partitioner_kwargs or {})
            )
        partitioner.fit(pts)
        effective_partitions = partitioner.num_partitions

        pruned: frozenset = frozenset()
        if prune_grid_cells and isinstance(partitioner, GridPartitioner):
            pruned = frozenset(int(c) for c in partitioner.pruned_cells())

        # Driver-side filter selection (the Hadoop analogue: compute the
        # broadcast set once, ship it through the distributed cache).
        filters: np.ndarray | None = None
        filter_count = 0
        if prune_filter_k:
            filters = compute_filter_points(
                pts,
                k=prune_filter_k,
                sample=filter_sample,
                seed=filter_seed,
                score=filter_score,
                kernel=knl,
            )
            filter_count = int(filters.shape[0])

        params = {
            "partitioner": partitioner,
            "pruned": pruned,
            "window_size": window_size,
            "kernel": knl.name,
            "filters": filters,
        }
        records = _block_records(pts, block_rows)

        job1 = Job(
            name=f"mr-{partitioner.scheme}-partition",
            mapper=PartitionAssignMapper,
            reducer=LocalSkylineReducer,
            combiner=LocalSkylineReducer if use_combiner else None,
            conf=JobConf(
                num_reducers=effective_partitions,
                num_map_tasks=max(1, min(num_workers, len(records))),
                partitioner=KeyFieldPartitioner(),
                params=params,
            ),
        )
        def _merge_job(recs: List) -> Job:
            return Job(
                name=f"mr-{partitioner.scheme}-merge",
                mapper=GlobalMergeMapper,
                reducer=GlobalMergeReducer,
                conf=JobConf(
                    num_reducers=1,
                    num_map_tasks=max(1, min(num_workers, max(len(recs), 1))),
                    partitioner=SingleReducerPartitioner(),
                    params={"window_size": window_size, "kernel": knl.name},
                ),
            )

        if pipelined:
            # Overlapped two-job chain: the merge job's map task i runs
            # over local-skyline partition i the moment its reducer ends.
            chain = runner.run_chain(
                JobChain(
                    f"mr-{partitioner.scheme}",
                    [lambda _recs: job1, _merge_job],
                    pipelined=True,
                ),
                records,
            )
            result1, result2 = chain.results[0], chain.results[-1]
        else:
            result1 = runner.run(job1, records=records)

            merge_results = []
            intermediate = list(result1.output_pairs())
            if merge_strategy == "tree":
                # Hierarchical rounds: fan_in local skylines per reducer until
                # only a handful of groups remain, then the final single-reducer
                # merge.
                round_no = 0
                while len(intermediate) > merge_fan_in:
                    # Re-key to dense group ids so `key // fan_in` packs evenly.
                    intermediate = [
                        (i, block) for i, (_, block) in enumerate(intermediate)
                    ]
                    groups = -(-len(intermediate) // merge_fan_in)  # ceil
                    job = Job(
                        name=f"mr-{partitioner.scheme}-treemerge-{round_no}",
                        mapper=TreeMergeMapper,
                        reducer=LocalSkylineReducer,
                        conf=JobConf(
                            num_reducers=groups,
                            num_map_tasks=max(1, min(num_workers, len(intermediate))),
                            partitioner=KeyFieldPartitioner(),
                            params={
                                "window_size": window_size,
                                "fan_in": merge_fan_in,
                                "kernel": knl.name,
                            },
                        ),
                    )
                    result = runner.run(job, records=intermediate)
                    merge_results.append(result)
                    intermediate = list(result.output_pairs())
                    round_no += 1

            result2 = runner.run(_merge_job(intermediate), records=intermediate)
            chain = ChainResult(results=[result1, *merge_results, result2])
        counters = Counters()
        for res in chain.results:
            counters.merge(res.counters)

        local_skylines: Dict[int, np.ndarray] = {
            int(pid): np.asarray(block[0], dtype=np.intp)
            for pid, block in result1.output_pairs()
        }
        merged_blocks = list(result2.output_values())
        if merged_blocks:
            global_indices = np.sort(
                np.concatenate([b[0] for b in merged_blocks]).astype(np.intp)
            )
        else:
            global_indices = np.empty(0, dtype=np.intp)

        partition_ids = partitioner.assign(pts)
        # Data-space skew — the quantity the three partitioning schemes
        # compete on (records per partition, max/min ratio, imbalance).
        skew = observe_partition_skew(
            get_metrics(),
            np.bincount(partition_ids, minlength=effective_partitions),
        )
        if filter_count:
            counters.increment(PRUNE_GROUP, "filter_points", filter_count)
        pipeline_span.set_attrs(
            scheme=partitioner.scheme,
            partitions=effective_partitions,
            global_skyline=int(global_indices.size),
            dominance_tests=counters.value(COUNTER_GROUP, "local_dominance_tests")
            + counters.value(COUNTER_GROUP, "merge_dominance_tests"),
            filter_points=filter_count,
            points_pruned=counters.value(COUNTER_GROUP, "points_pruned"),
            **{f"skew_{k}": v for k, v in skew.items()},
        )

    return MRSkylineResult(
        method=partitioner.scheme,
        global_indices=global_indices,
        local_skylines=local_skylines,
        partition_ids=partition_ids,
        chain=chain,
        counters=counters,
        num_partitions=effective_partitions,
        num_workers=num_workers,
        points_pruned=counters.value(COUNTER_GROUP, "points_pruned"),
        partitioner=partitioner,
        executor=result2.executor,
        pipelined=pipelined,
        kernel=knl.name,
        filter_points=filter_count,
    )


def update_mr_skyline(
    previous: MRSkylineResult,
    points: np.ndarray,
    new_points: np.ndarray,
    *,
    runner: Runner | None = None,
    window_size: int | None = None,
    block_rows: int = DEFAULT_BLOCK_ROWS,
    kernel: str | DominanceKernel | None = None,
) -> MRSkylineResult:
    """Absorb a batch of new services without recomputing from scratch (§II).

    "Given a new service which is added into UDDI, traditional approach has
    to compute the global skyline again.  With the MapReduce approach, the
    new service is first mapped into a group and added into the local
    skyline computation.  Then all local skylines are integrated into the
    global skyline at the Reduce stage."

    Only the partitions that receive new points re-run their local-skyline
    BNL — and only over their *previous local skyline* plus the arrivals
    (sound because a point dominated before the insertions stays dominated).
    Untouched partitions reuse their local skylines verbatim; the global
    merge then runs as usual.

    Parameters
    ----------
    previous:
        Result of :func:`run_mr_skyline` (or a prior update) over ``points``.
    points:
        The point set ``previous`` was computed over, shape ``(n, d)``.
    new_points:
        Arrivals, shape ``(m, d)``.

    Returns
    -------
    :class:`MRSkylineResult` whose indices refer to
    ``np.vstack([points, new_points])``.  Removals are out of scope here —
    they need full partition membership, which is what
    :class:`repro.core.incremental.IncrementalSkyline` keeps.

    The default runner resolves its executor from ``$REPRO_EXECUTOR``
    (serial when unset), like :func:`run_mr_skyline`.  ``kernel`` defaults
    to the backend ``previous`` ran with, keeping an update chain on one
    backend unless explicitly switched.
    """
    pts = validate_points(points)
    fresh = validate_points(new_points)
    if fresh.shape[1] != pts.shape[1]:
        raise ValueError(
            f"new points have {fresh.shape[1]} dims, expected {pts.shape[1]}"
        )
    if previous.partitioner is None:
        raise ValueError("previous result carries no partitioner")
    if previous.partition_ids.shape[0] != pts.shape[0]:
        raise ValueError(
            f"previous result covers {previous.partition_ids.shape[0]} points, "
            f"got {pts.shape[0]}"
        )
    runner = runner or Runner()
    partitioner = previous.partitioner
    knl = get_kernel(kernel if kernel is not None else previous.kernel)
    offset = pts.shape[0]

    new_ids = partitioner.assign(fresh)
    pruned: frozenset = frozenset()
    if isinstance(partitioner, GridPartitioner):
        # Fit-time occupancy only grows, so the original pruned set stays
        # sound for arrivals (it may merely miss new pruning opportunities).
        pruned = frozenset(int(c) for c in partitioner.pruned_cells())

    counters = Counters()
    affected = sorted(
        int(p) for p in np.unique(new_ids) if int(p) not in pruned
    )
    n_pruned = int(sum(1 for p in new_ids if int(p) in pruned))
    if n_pruned:
        counters.increment(COUNTER_GROUP, "points_pruned", n_pruned)

    # Build the affected partitions' update records: previous local skyline
    # blocks plus the new arrivals, keyed by partition id.
    records: List[Tuple[int, Block]] = []
    for pid in affected:
        old_sky = previous.local_skylines.get(pid, np.empty(0, dtype=np.intp))
        if old_sky.size:
            records.append((pid, (old_sky, pts[old_sky])))
        mask = new_ids == pid
        idx = np.flatnonzero(mask) + offset
        for start in range(0, idx.size, block_rows):
            chunk = idx[start : start + block_rows]
            records.append((pid, (chunk.astype(np.intp), fresh[chunk - offset])))

    results = []
    local_skylines: Dict[int, np.ndarray] = dict(previous.local_skylines)
    if records:
        update_job = Job(
            name=f"mr-{partitioner.scheme}-update",
            mapper=IdentityBlockMapper,
            reducer=LocalSkylineReducer,
            conf=JobConf(
                num_reducers=max(affected) + 1,
                num_map_tasks=max(1, min(previous.num_workers, len(records))),
                partitioner=KeyFieldPartitioner(),
                params={"window_size": window_size, "kernel": knl.name},
            ),
        )
        update_result = runner.run(update_job, records=records)
        results.append(update_result)
        counters.merge(update_result.counters)
        for pid, block in update_result.output_pairs():
            local_skylines[int(pid)] = np.asarray(block[0], dtype=np.intp)

    # Global merge over every local skyline (updated + untouched).
    combined = np.vstack([pts, fresh])
    merge_records = [
        (pid, (sky, combined[sky])) for pid, sky in sorted(local_skylines.items())
        if sky.size
    ]
    merge_job = Job(
        name=f"mr-{partitioner.scheme}-merge",
        mapper=GlobalMergeMapper,
        reducer=GlobalMergeReducer,
        conf=JobConf(
            num_reducers=1,
            num_map_tasks=max(1, min(previous.num_workers, max(len(merge_records), 1))),
            partitioner=SingleReducerPartitioner(),
            params={"window_size": window_size, "kernel": knl.name},
        ),
    )
    merge_result = runner.run(merge_job, records=merge_records)
    results.append(merge_result)
    counters.merge(merge_result.counters)

    merged_blocks = list(merge_result.output_values())
    if merged_blocks:
        global_indices = np.sort(
            np.concatenate([b[0] for b in merged_blocks]).astype(np.intp)
        )
    else:
        global_indices = np.empty(0, dtype=np.intp)

    return MRSkylineResult(
        method=partitioner.scheme,
        global_indices=global_indices,
        local_skylines=local_skylines,
        partition_ids=np.concatenate([previous.partition_ids, new_ids]),
        chain=ChainResult(results=results),
        counters=counters,
        num_partitions=previous.num_partitions,
        num_workers=previous.num_workers,
        points_pruned=previous.points_pruned + n_pruned,
        partitioner=partitioner,
        executor=merge_result.executor,
        kernel=knl.name,
        filter_points=previous.filter_points,
    )


class IdentityBlockMapper(Mapper):
    """Passes pre-keyed point blocks through unchanged (update pipeline)."""

    def map(self, key: Any, value: Block, ctx: MapContext) -> None:
        ctx.emit(int(key), value)
