"""Dimensional (1-D slab) partitioning — the MR-Dim scheme (§III-A).

"Only the QoS parameter values in one dimension are used to do the
partitioning […] the range of each partition in dimension d is equal to
Vmax / Np" — equal-width slabs along a single chosen attribute.  Points at
or beyond ``Vmax`` (possible when assigning data not seen at fit time)
clamp into the last slab.

Equal-width slabs are the paper's literal scheme and the default; on
heavy-tailed attributes (QWS response time) they are severely unbalanced,
so a ``bins="quantile"`` mode (equal-count slabs) is provided as the
load-balanced variant used in ablation comparisons.
"""

from __future__ import annotations

from typing import Literal, Mapping

import numpy as np

from repro.core.partitioning.base import SpacePartitioner

__all__ = ["DimensionalPartitioner"]

Bins = Literal["equal-width", "quantile"]


class DimensionalPartitioner(SpacePartitioner):
    """Slabs along one dimension.

    Parameters
    ----------
    num_partitions:
        Number of slabs ``Np``.
    dim:
        Attribute index used for slicing (the paper slices on response
        time, its first attribute; default 0).
    bins:
        ``"equal-width"`` (paper) or ``"quantile"`` (equal-count ablation).
    """

    scheme = "dim"

    def __init__(
        self, num_partitions: int, dim: int = 0, *, bins: Bins = "equal-width"
    ) -> None:
        super().__init__(num_partitions)
        if dim < 0:
            raise ValueError(f"dim must be >= 0, got {dim}")
        if bins not in ("equal-width", "quantile"):
            raise ValueError(f"unknown bins mode {bins!r}")
        self.dim = dim
        self.bins = bins
        self._vmax: float | None = None
        self._width: float | None = None
        self._edges: np.ndarray | None = None

    def _fit(self, points: np.ndarray) -> None:
        if self.dim >= points.shape[1]:
            raise ValueError(
                f"dim={self.dim} out of range for {points.shape[1]}-dimensional data"
            )
        column = points[:, self.dim]
        vmax = float(column.max())
        self._vmax = vmax
        # Degenerate all-zero column: one slab catches everything.  A
        # subnormal vmax can underflow the division to 0, which is equally
        # degenerate — also collapse it to a single slab.
        width = vmax / self.num_partitions if vmax > 0 else np.inf
        self._width = width if width > 0 else np.inf
        if self.bins == "quantile":
            qs = np.linspace(0.0, 1.0, self.num_partitions + 1)[1:-1]
            self._edges = np.quantile(column, qs)
        else:
            self._edges = None

    def _assign(self, points: np.ndarray) -> np.ndarray:
        if self.dim >= points.shape[1]:
            raise ValueError(
                f"dim={self.dim} out of range for {points.shape[1]}-dimensional data"
            )
        column = points[:, self.dim]
        if self._edges is not None:
            ids = np.searchsorted(self._edges, column, side="right")
        else:
            ids = np.floor(column / self._width).astype(np.int64)
        return np.clip(ids, 0, self.num_partitions - 1)

    def _detail(self) -> Mapping[str, object]:
        return {
            "dim": self.dim,
            "bins": self.bins,
            "vmax": self._vmax,
            "slab_width": self._width if self.bins == "equal-width" else None,
            "edges": None if self._edges is None else self._edges.tolist(),
        }

    def _trace_attrs(self) -> Mapping[str, object]:
        return {"dim": self.dim, "bins": self.bins, "slabs": self.num_partitions}
