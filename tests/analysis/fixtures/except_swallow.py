"""Violating fixture for exception-hygiene (see udf_impure for marker rules)."""


def swallows(fn):
    try:
        return fn()
    except Exception:  # VIOLATION: exception-hygiene
        return None


def bare_swallow(fn):
    try:
        return fn()
    except:  # noqa: E722  # VIOLATION: exception-hygiene
        return None


def tuple_swallow(fn, log):
    try:
        return fn()
    except (ValueError, Exception) as exc:  # VIOLATION: exception-hygiene
        log.append(exc)
        return None
