"""Fixture: mutable state escaping into threads with no guard at all.

The bound-method shape (``self.counts`` has zero locked writes anywhere in
the class) and the closure shape (a local list mutated by a submitted
task).  Distinct from lock-discipline: there is no lock to be disciplined
about.
"""

import threading


class Tally:
    def __init__(self) -> None:
        self.counts = {}

    def work(self) -> None:
        self.counts["n"] = self.counts.get("n", 0) + 1

    def start(self) -> None:
        threading.Thread(target=self.work).start()  # VIOLATION: escape-analysis


def fan_out(executor):
    results = []

    def task() -> None:
        results.append(1)

    executor.submit(task)  # VIOLATION: escape-analysis
    return results
