"""Deterministic replay of measured jobs on a simulated cluster.

Given the per-task :class:`~repro.mapreduce.types.TaskStats` measured by a
(serial) run and a :class:`~repro.mapreduce.cluster.ClusterSpec`, the
simulator computes phase makespans:

* **Map time** — list-schedule the map tasks' (scaled) durations over the
  cluster's map slots, plus per-task launch overhead.
* **Shuffle time** — the map phase's output volume over the aggregate copy
  bandwidth, plus a fixed latency.  Hadoop accounts the copy/merge inside
  the reduce tasks, so :attr:`SimulatedJob.reduce_time_s` includes it — this
  matches how the paper's Figure 6 splits "Map Time" vs "Reduce Time".
* **Reduce time** — list-schedule the reduce tasks over reduce slots (plus
  shuffle).

Chained jobs add one ``job_overhead_s`` each, so the simulated total for the
skyline pipelines is ``overheads + Σ(job phases)``.

:func:`simulate_pipeline` can additionally model the runner's *pipelined*
chain mode (``pipelined=True``): job *k+1*'s map task *i* is released the
moment job *k*'s reduce partition *i* finishes instead of at the inter-job
barrier, using the scheduler's release-time support.  Per-job phase numbers
stay barrier-style (they remain Figure-6 comparable); only the pipeline's
end-to-end total changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.mapreduce.cluster import ClusterSpec
from repro.mapreduce.job import JobResult
from repro.mapreduce.scheduler import Schedule, schedule_tasks
from repro.mapreduce.types import TaskStats
from repro.observability.metrics import get_metrics
from repro.observability.tracing import get_tracer


@dataclass(frozen=True, slots=True)
class SimulatedJob:
    """Phase times for one job replayed on a simulated cluster."""

    job_name: str
    num_nodes: int
    map_makespan_s: float
    shuffle_s: float
    reduce_makespan_s: float
    job_overhead_s: float

    @property
    def map_time_s(self) -> float:
        """Figure-6 style "Map Time" (includes the job's fixed overhead)."""
        return self.map_makespan_s + self.job_overhead_s

    @property
    def reduce_time_s(self) -> float:
        """Figure-6 style "Reduce Time": copy/merge (shuffle) + reduce."""
        return self.shuffle_s + self.reduce_makespan_s

    @property
    def total_s(self) -> float:
        return self.map_time_s + self.reduce_time_s


@dataclass(frozen=True, slots=True)
class SimulatedPipeline:
    """Aggregated times for a chain of jobs (the two-job skyline pipeline)."""

    jobs: tuple[SimulatedJob, ...]
    #: End-to-end time with inter-job pipelining; ``None`` for barrier chains.
    pipelined_total_s: float | None = None

    @property
    def map_time_s(self) -> float:
        return sum(j.map_time_s for j in self.jobs)

    @property
    def reduce_time_s(self) -> float:
        return sum(j.reduce_time_s for j in self.jobs)

    @property
    def total_s(self) -> float:
        if self.pipelined_total_s is not None:
            return self.pipelined_total_s
        return sum(j.total_s for j in self.jobs)

    @property
    def overlap_saving_s(self) -> float:
        """Wall-clock recovered by pipelining versus the barrier chain."""
        if self.pipelined_total_s is None:
            return 0.0
        return max(0.0, sum(j.total_s for j in self.jobs) - self.pipelined_total_s)


def _phase_schedule(
    tasks: Sequence[TaskStats], slots: int, cluster: ClusterSpec
) -> Schedule:
    durations = [t.duration_s * cluster.speed_factor for t in tasks]
    return schedule_tasks(
        durations,
        slots,
        policy=cluster.scheduling_policy,
        per_task_overhead_s=cluster.task_launch_s,
    )


def simulate_job(result: JobResult, cluster: ClusterSpec) -> SimulatedJob:
    """Replay one measured job on ``cluster``."""
    with get_tracer().span(
        f"simulate:{result.job_name}", kind="simulate", num_nodes=cluster.num_nodes
    ) as span:
        map_schedule = _phase_schedule(
            result.map_stats.tasks, cluster.map_slots, cluster
        )
        reduce_schedule = _phase_schedule(
            result.reduce_stats.tasks, cluster.reduce_slots, cluster
        )
        shuffle_s = 0.0
        if result.shuffle_stats.bytes > 0:
            shuffle_s = (
                result.shuffle_stats.bytes / cluster.aggregate_shuffle_bytes_per_s
                + cluster.shuffle_latency_s
            )
        registry = get_metrics()
        map_schedule.observe(registry, "sim.map")
        reduce_schedule.observe(registry, "sim.reduce")
        span.set_attrs(
            sim_map_s=round(map_schedule.makespan_s, 6),
            sim_shuffle_s=round(shuffle_s, 6),
            sim_reduce_s=round(reduce_schedule.makespan_s, 6),
            map_utilisation=round(map_schedule.utilisation, 6),
            reduce_utilisation=round(reduce_schedule.utilisation, 6),
        )
    return SimulatedJob(
        job_name=result.job_name,
        num_nodes=cluster.num_nodes,
        map_makespan_s=map_schedule.makespan_s,
        shuffle_s=shuffle_s,
        reduce_makespan_s=reduce_schedule.makespan_s,
        job_overhead_s=cluster.job_overhead_s,
    )


def simulate_pipeline(
    results: Sequence[JobResult],
    cluster: ClusterSpec,
    *,
    pipelined: bool = False,
) -> SimulatedPipeline:
    """Replay a chain of measured jobs on ``cluster``.

    Default is Hadoop's sequential semantics: each job starts after the
    previous one fully finishes.  With ``pipelined=True`` the chain total
    is recomputed on one shared timeline where job *k+1*'s map task *i* is
    released when job *k*'s reduce partition *i* ends — the engine's
    ``JobChain(pipelined=True)`` execution shape.  Per-job
    :class:`SimulatedJob` entries keep their barrier-style phase splits.
    """
    jobs = tuple(simulate_job(r, cluster) for r in results)
    if not pipelined:
        return SimulatedPipeline(jobs=jobs)
    return SimulatedPipeline(
        jobs=jobs, pipelined_total_s=_pipelined_total_s(results, cluster)
    )


def _pipelined_total_s(results: Sequence[JobResult], cluster: ClusterSpec) -> float:
    """End-to-end makespan of a pipelined chain on one absolute timeline.

    Reduce partition *i* of each job releases map task *i* of the next job
    (plus that job's fixed overhead); within a job, reduces still wait for
    every map plus the shuffle, matching the engine, where a partition can
    only be finalized once all map outputs for it have been ingested.  When
    a job has more map tasks than its predecessor had reduce partitions,
    the extras are released at the predecessor's last reduce completion.
    """
    releases: list[float] | None = None  # prev job's per-partition reduce ends
    total = 0.0
    for result in results:
        map_durations = [
            t.duration_s * cluster.speed_factor for t in result.map_stats.tasks
        ]
        if releases is None:
            map_releases = [cluster.job_overhead_s] * len(map_durations)
        else:
            last = max(releases, default=total)
            map_releases = [
                (releases[i] if i < len(releases) else last) + cluster.job_overhead_s
                for i in range(len(map_durations))
            ]
        map_schedule = schedule_tasks(
            map_durations,
            cluster.map_slots,
            policy=cluster.scheduling_policy,
            per_task_overhead_s=cluster.task_launch_s,
            release_times_s=map_releases,
        )
        shuffle_s = 0.0
        if result.shuffle_stats.bytes > 0:
            shuffle_s = (
                result.shuffle_stats.bytes / cluster.aggregate_shuffle_bytes_per_s
                + cluster.shuffle_latency_s
            )
        reduce_durations = [
            t.duration_s * cluster.speed_factor for t in result.reduce_stats.tasks
        ]
        reduce_ready = map_schedule.makespan_s + shuffle_s
        reduce_schedule = schedule_tasks(
            reduce_durations,
            cluster.reduce_slots,
            policy=cluster.scheduling_policy,
            per_task_overhead_s=cluster.task_launch_s,
            release_times_s=[reduce_ready] * len(reduce_durations),
        )
        # Schedule.tasks is sorted by task index == reduce partition index.
        releases = [t.end_s for t in reduce_schedule.tasks]
        total = max(reduce_schedule.makespan_s, reduce_ready)
    return total


@dataclass(frozen=True, slots=True)
class StragglerSpec:
    """Deterministic straggler injection for robustness studies.

    Hadoop-era clusters lose time to stragglers (slow disks, hot nodes);
    speculative execution launches backup attempts for tasks running far
    beyond the norm.  This model perturbs measured task durations and
    (optionally) caps each straggler at the speculative-backup completion
    time:

    * each task independently straggles with probability ``probability``
      (deterministic per ``seed`` and task index),
    * a straggling task's duration is multiplied by ``slowdown``,
    * with ``speculative=True``, the effective duration becomes
      ``min(slowed, trigger + nominal + relaunch)`` where ``trigger`` is
      when the backup is launched (the phase's median nominal duration
      times ``trigger_factor``) — the backup runs at nominal speed.
    """

    probability: float = 0.1
    slowdown: float = 5.0
    speculative: bool = True
    trigger_factor: float = 1.5
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.slowdown < 1.0:
            raise ValueError(f"slowdown must be >= 1, got {self.slowdown}")
        if self.trigger_factor <= 0:
            raise ValueError(f"trigger_factor must be > 0, got {self.trigger_factor}")

    def perturb(self, durations: Sequence[float], launch_s: float) -> list[float]:
        """Effective per-task durations under this straggler model."""
        durations = list(durations)
        if not durations:
            return []
        import numpy as np

        rng = np.random.default_rng(self.seed)
        straggles = rng.random(len(durations)) < self.probability
        median = float(np.median(durations))
        out = []
        for nominal, slow in zip(durations, straggles):
            if not slow:
                out.append(nominal)
                continue
            slowed = nominal * self.slowdown
            if self.speculative:
                backup_done = self.trigger_factor * median + nominal + launch_s
                slowed = min(slowed, backup_done)
            out.append(slowed)
        return out


def simulate_job_with_stragglers(
    result: JobResult, cluster: ClusterSpec, stragglers: StragglerSpec
) -> SimulatedJob:
    """Replay one job with straggler-perturbed task durations."""
    def perturbed_schedule(tasks: Sequence[TaskStats], slots: int) -> Schedule:
        nominal = [t.duration_s * cluster.speed_factor for t in tasks]
        effective = stragglers.perturb(nominal, cluster.task_launch_s)
        return schedule_tasks(
            effective,
            slots,
            policy=cluster.scheduling_policy,
            per_task_overhead_s=cluster.task_launch_s,
        )

    map_schedule = perturbed_schedule(result.map_stats.tasks, cluster.map_slots)
    reduce_schedule = perturbed_schedule(
        result.reduce_stats.tasks, cluster.reduce_slots
    )
    shuffle_s = 0.0
    if result.shuffle_stats.bytes > 0:
        shuffle_s = (
            result.shuffle_stats.bytes / cluster.aggregate_shuffle_bytes_per_s
            + cluster.shuffle_latency_s
        )
    return SimulatedJob(
        job_name=result.job_name,
        num_nodes=cluster.num_nodes,
        map_makespan_s=map_schedule.makespan_s,
        shuffle_s=shuffle_s,
        reduce_makespan_s=reduce_schedule.makespan_s,
        job_overhead_s=cluster.job_overhead_s,
    )


def server_sweep(
    results: Sequence[JobResult],
    node_counts: Sequence[int],
    base_cluster: ClusterSpec,
) -> list[SimulatedPipeline]:
    """Simulate the same measured pipeline at several cluster sizes.

    Note: this keeps the *task decomposition* fixed; experiments that follow
    the paper's "partitions = 2 × nodes" rule should instead re-run the
    pipeline per node count (see ``repro.bench.experiments.figure6``) so the
    task structure scales too, and use :func:`simulate_pipeline` per point.
    """
    return [
        simulate_pipeline(results, base_cluster.scaled(num_nodes=n))
        for n in node_counts
    ]
