"""Pareto-dominance primitives (minimisation convention).

Following the paper (§II): point ``a`` *dominates* ``b`` iff ``a`` is better
than or equal to ``b`` in every attribute dimension and strictly better in at
least one — with "better" meaning *smaller* ("the lower-valued points are
better than the higher-valued ones").

Scalar predicates are provided for clarity and as the ground truth for
property tests; the vectorised kernels (``dominates_any``,
``dominated_mask``) are the hot path used by the algorithms.  All kernels
take ``(n, d)`` float arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "DominanceCounter",
    "dominance_matrix",
    "dominates",
    "dominates_any",
    "dominated_by_any",
    "dominated_mask",
    "incomparable",
    "validate_points",
]


def validate_points(points: np.ndarray, *, name: str = "points") -> np.ndarray:
    """Coerce to a 2-D float64 array and reject NaNs.

    NaNs break dominance transitivity (every comparison is false), so they
    are rejected up-front rather than silently producing a wrong skyline.
    """
    arr = np.asarray(points, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D (n, d), got shape {arr.shape}")
    if arr.shape[1] == 0:
        raise ValueError(f"{name} must have at least one attribute dimension")
    if np.isnan(arr).any():
        raise ValueError(f"{name} contains NaN values")
    return arr


@dataclass(slots=True)
class DominanceCounter:
    """Counts pairwise dominance tests — the work metric behind the paper's
    efficiency argument (fewer redundant dominance computations)."""

    tests: int = 0
    by_stage: dict = field(default_factory=dict)

    def add(self, count: int, stage: str = "default") -> None:
        self.tests += int(count)
        self.by_stage[stage] = self.by_stage.get(stage, 0) + int(count)

    def merge(self, other: "DominanceCounter") -> None:
        for stage, count in other.by_stage.items():
            self.add(count, stage)


def dominates(a: np.ndarray, b: np.ndarray) -> bool:
    """True iff ``a`` dominates ``b`` (ground-truth scalar predicate)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError(f"expected equal-length vectors, got {a.shape} vs {b.shape}")
    return bool(np.all(a <= b) and np.any(a < b))


def incomparable(a: np.ndarray, b: np.ndarray) -> bool:
    """True iff neither point dominates the other."""
    return not dominates(a, b) and not dominates(b, a)


def dominates_any(window: np.ndarray, point: np.ndarray) -> bool:
    """True iff any row of ``window`` dominates ``point``.

    The single-candidate kernel used inside BNL's inner loop: one broadcast
    comparison of the whole window against the point.
    """
    if window.shape[0] == 0:
        return False
    le = window <= point
    lt = window < point
    return bool(np.any(le.all(axis=1) & lt.any(axis=1)))


def dominated_by_any(window: np.ndarray, point: np.ndarray) -> np.ndarray:
    """Boolean mask over ``window`` rows dominated *by* ``point``."""
    if window.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    ge = window >= point
    gt = window > point
    return ge.all(axis=1) & gt.any(axis=1)


def dominance_matrix(points: np.ndarray) -> np.ndarray:
    """Full pairwise matrix ``M[i, j] = points[i] dominates points[j]``.

    O(n²·d) memory-heavy; intended for tests and small analyses only.
    """
    pts = validate_points(points)
    le = (pts[:, None, :] <= pts[None, :, :]).all(axis=2)
    lt = (pts[:, None, :] < pts[None, :, :]).any(axis=2)
    return le & lt


def dominated_mask(
    points: np.ndarray,
    *,
    block: int = 2048,
    counter: DominanceCounter | None = None,
) -> np.ndarray:
    """Mask of points dominated by at least one other point.

    The complement is exactly the skyline.  Works blockwise so memory stays
    at ``O(block · n)`` instead of ``O(n²)``; with the default block this
    handles 100 k × 10 comfortably.
    """
    pts = validate_points(points)
    n = pts.shape[0]
    dominated = np.zeros(n, dtype=bool)
    for start in range(0, n, block):
        chunk = pts[start : start + block]  # (b, d)
        # chunk[j] dominated by pts[i]: all(pts[i] <= chunk[j]) & any(<)
        le = (pts[:, None, :] <= chunk[None, :, :]).all(axis=2)  # (n, b)
        lt = (pts[:, None, :] < chunk[None, :, :]).any(axis=2)
        dominated[start : start + chunk.shape[0]] = (le & lt).any(axis=0)
        if counter is not None:
            counter.add(n * chunk.shape[0], "dominated_mask")
    return dominated
