"""``# repro: allow[rule-id]`` suppression pragmas.

A pragma suppresses findings of the named rule(s) on its own line and — when
the comment stands alone on its line — on the next source line, so both
styles work::

    risky_call()  # repro: allow[udf-purity]  -- metrics are driver-merged

    # repro: allow[udf-purity]
    risky_call()

Pragmas are parsed from real comment tokens (:mod:`tokenize`), never from
string literals.  Every pragma must carry at least one *known* rule id;
malformed or unknown-id pragmas are themselves reported (``lint-pragma``),
which is what keeps suppressions auditable.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterator, List, Set, Tuple

#: Rule id reserved for pragma hygiene findings.
PRAGMA_RULE_ID = "lint-pragma"

_PRAGMA_RE = re.compile(r"#\s*repro:\s*allow(?:\[([^\]]*)\])?")
_RULE_ID_RE = re.compile(r"^[a-z][a-z0-9-]*$")


@dataclass(slots=True, frozen=True)
class Pragma:
    """One parsed ``repro: allow`` comment."""

    line: int
    col: int
    rule_ids: Tuple[str, ...]
    #: True when the comment is the only content on its line, in which case
    #: it also covers the following line.
    standalone: bool


@dataclass(slots=True)
class SuppressionMap:
    """Per-line suppression lookup for one source file."""

    #: line number -> rule ids suppressed on that line
    by_line: Dict[int, Set[str]]
    #: pragmas with no / empty / malformed rule-id list, as (line, col, text)
    malformed: List[Tuple[int, int, str]]
    #: every rule id named by any pragma (for unknown-id validation)
    named_ids: List[Tuple[int, int, str]]

    def suppresses(self, rule_id: str, line: int) -> bool:
        return rule_id in self.by_line.get(line, ())


def parse_suppressions(source: str) -> SuppressionMap:
    """Extract the suppression map from one module's source text."""
    by_line: Dict[int, Set[str]] = {}
    malformed: List[Tuple[int, int, str]] = []
    named: List[Tuple[int, int, str]] = []
    for pragma in _iter_pragmas(source):
        if not pragma.rule_ids:
            malformed.append(
                (pragma.line, pragma.col, "pragma names no rule id")
            )
            continue
        covered = [pragma.line]
        if pragma.standalone:
            covered.append(pragma.line + 1)
        for rule_id in pragma.rule_ids:
            if not _RULE_ID_RE.match(rule_id):
                malformed.append(
                    (pragma.line, pragma.col, f"malformed rule id {rule_id!r}")
                )
                continue
            named.append((pragma.line, pragma.col, rule_id))
            for line in covered:
                by_line.setdefault(line, set()).add(rule_id)
    return SuppressionMap(by_line=by_line, malformed=malformed, named_ids=named)


def _iter_pragmas(source: str) -> Iterator[Pragma]:
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.search(tok.string)
        if match is None:
            continue
        ids_blob = match.group(1)
        rule_ids: Tuple[str, ...] = ()
        if ids_blob is not None:
            rule_ids = tuple(
                part.strip() for part in ids_blob.split(",") if part.strip()
            )
        standalone = tok.line[: tok.start[1]].strip() == ""
        yield Pragma(
            line=tok.start[0],
            col=tok.start[1],
            rule_ids=rule_ids,
            standalone=standalone,
        )
