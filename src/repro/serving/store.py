"""Generation-counted skyline store — one per registered dataset.

A :class:`SkylineStore` wraps a :class:`~repro.core.incremental.IncrementalSkyline`
behind a lock and a monotonically-increasing **generation counter**: every
mutation (insert / remove / bulk load) bumps the generation, and every
query result is labelled with the generation of the membership snapshot it
was computed from.  The serving layer's result cache keys on that
generation, so mutation implicitly invalidates all cached answers without
any explicit cache wiring here.

Large cold loads don't pay ``n`` serial inserts: a bulk load at or above
``mr_bulk_threshold`` rows runs the full pipelined MapReduce skyline job
(:func:`repro.core.mr_skyline.run_mr_skyline`) through the executor layer
and seeds the incremental structure from the job's per-partition local
skylines (:meth:`IncrementalSkyline.from_batch`).  Smaller loads use the
in-core vectorised :meth:`IncrementalSkyline.bulk_load`.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Dict, List, NamedTuple, Sequence, Tuple

import numpy as np

from repro.core.dominance import validate_points
from repro.core.incremental import IncrementalSkyline
from repro.core.kernels import DominanceKernel, get_kernel
from repro.core.mr_skyline import COUNTER_GROUP, PRUNE_GROUP, run_mr_skyline
from repro.core.partitioning import make_partitioner
from repro.mapreduce.executors import Executor
from repro.observability.events import get_events
from repro.observability.metrics import get_metrics, observe_partition_skew

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (durability -> store)
    from repro.serving.durability.manager import DatasetLog

__all__ = ["SkylineStore", "StoreSnapshot"]

#: Bulk loads at or above this many rows go through the MapReduce pipeline.
DEFAULT_MR_BULK_THRESHOLD = 50_000


class StoreSnapshot(NamedTuple):
    """A consistent membership view: compute over it outside the lock."""

    generation: int
    ids: np.ndarray
    rows: np.ndarray

    def rows_of(self, point_ids: Sequence[int]) -> np.ndarray:
        """The rows of ``point_ids``, in order; raises on unknown ids.

        The shard-side answer assembler: a query result is a list of ids,
        the wire format ships coordinates, and this is the join between
        them over one consistent snapshot.
        """
        if len(point_ids) == 0:
            return np.empty((0, self.rows.shape[1] if self.rows.ndim == 2 else 0))
        position = {int(pid): i for i, pid in enumerate(self.ids.tolist())}
        try:
            take = [position[int(pid)] for pid in point_ids]
        except KeyError as exc:
            raise KeyError(
                f"point id {exc.args[0]} not in snapshot generation "
                f"{self.generation}"
            ) from None
        return self.rows[take]


class SkylineStore:
    """Dynamic skyline state for one dataset, behind a generation counter."""

    def __init__(
        self,
        name: str,
        points: np.ndarray | None = None,
        *,
        scheme: str = "angle",
        num_partitions: int = 8,
        num_workers: int = 2,
        mr_bulk_threshold: int = DEFAULT_MR_BULK_THRESHOLD,
        executor: str | Executor | None = None,
        kernel: str | DominanceKernel | None = None,
    ):
        self.name = name
        self.scheme = scheme
        self.num_partitions = num_partitions
        self.num_workers = num_workers
        self.mr_bulk_threshold = mr_bulk_threshold
        self.executor = executor
        # Resolve once at construction: every maintenance comparison and MR
        # bulk load of this dataset runs one consistent backend.
        self._kernel = get_kernel(kernel)
        self._lock = threading.RLock()
        self._sky: IncrementalSkyline | None = None
        self._generation = 0
        # Durability sink (a DatasetLog) — attached after construction so
        # recovery can replay into a silent store, then start logging.
        self._durability: "DatasetLog | None" = None
        # Id-allocation cursor restored from a snapshot whose membership
        # was empty: applied when the first post-recovery data arrives.
        self._pending_next_id = 0
        if points is not None:
            self.bulk_load(points)

    # -- inspection -------------------------------------------------------------

    @property
    def generation(self) -> int:
        """The current mutation generation (0 before any data arrives)."""
        with self._lock:
            return self._generation

    @property
    def kernel_name(self) -> str:
        """Name of the dominance backend this store runs on."""
        return self._kernel.name

    def __len__(self) -> int:
        with self._lock:
            return len(self._sky) if self._sky is not None else 0

    def __contains__(self, point_id: int) -> bool:
        with self._lock:
            return self._sky is not None and point_id in self._sky

    def snapshot(self) -> StoreSnapshot:
        """Consistent ``(generation, ids, rows)`` copy of the membership."""
        with self._lock:
            if self._sky is None:
                return StoreSnapshot(
                    self._generation, np.empty(0, dtype=np.intp), np.empty((0, 0))
                )
            ids, rows = self._sky.members()
            return StoreSnapshot(self._generation, ids, rows)

    def skyline_snapshot(self) -> Tuple[int, List[int]]:
        """``(generation, skyline ids)`` via the amortised incremental path.

        This is where serving beats re-running the batch pipeline: the
        per-partition local skylines persist across queries, so after a
        mutation only the affected partition's state was recomputed and the
        global answer is one lazy BNL merge (cached until the next
        mutation).
        """
        with self._lock:
            if self._sky is None:
                return self._generation, []
            return self._generation, self._sky.global_skyline()

    # -- mutations --------------------------------------------------------------

    def insert(self, point: Sequence[float] | np.ndarray) -> Tuple[int, int]:
        """Add one service; returns ``(point_id, new generation)``."""
        row = np.asarray(point, dtype=np.float64).reshape(1, -1)
        with self._lock:
            if self._durability is not None:
                self._durability.log_insert(row[0])
            self._ensure_sky(row)
            assert self._sky is not None
            point_id = self._sky.insert(row[0])
            self._generation += 1
            result = point_id, self._generation
            self._maybe_checkpoint()
        self._observe_mutation("insert")
        return result

    def remove(self, point_id: int) -> int:
        """Drop a service by id; returns the new generation."""
        with self._lock:
            if self._sky is None:
                raise KeyError(f"unknown point id {point_id}")
            if point_id not in self._sky:
                raise KeyError(f"unknown point id {point_id}")
            if self._durability is not None:
                self._durability.log_remove(point_id)
            self._sky.remove(point_id)
            self._generation += 1
            generation = self._generation
            self._maybe_checkpoint()
        self._observe_mutation("remove")
        return generation

    def bulk_load(self, points: np.ndarray) -> Tuple[List[int], int]:
        """Add a batch; returns ``(new point ids, new generation)``.

        An initial load of ``mr_bulk_threshold`` rows or more is computed
        by the pipelined MapReduce job (through the executor layer) and
        seeds the incremental structure from the job's local skylines;
        everything else takes the in-core vectorised path.
        """
        pts = validate_points(points)
        seed = None
        if self._use_mr_path(pts):
            # The MR job runs outside the lock (it can be long); the seed is
            # only installed if the store is still empty when we take the
            # lock — a racing insert falls back to the in-core path.
            partitioner = make_partitioner(self.scheme, self.num_partitions)
            result = run_mr_skyline(
                pts,
                partitioner=partitioner,
                num_workers=self.num_workers,
                executor=self.executor,
                pipelined=True,
                kernel=self._kernel,
            )
            # Cumulative per-dataset pruning telemetry: how much shuffle
            # work the broadcast filter stage saved this store so far.
            pruned = result.counters.value(COUNTER_GROUP, "points_pruned")
            if pruned:
                get_metrics().counter(
                    f"{PRUNE_GROUP}.points_pruned.{self.name}"
                ).inc(pruned)
            filter_tests = result.counters.value(PRUNE_GROUP, "filter_tests")
            if filter_tests:
                get_metrics().counter(
                    f"{PRUNE_GROUP}.filter_tests.{self.name}"
                ).inc(filter_tests)
            seed = (partitioner, result)
        with self._lock:
            if self._durability is not None:
                self._durability.log_bulk(pts.tolist())
            if self._sky is None and seed is not None and self._pending_next_id == 0:
                partitioner, result = seed
                self._sky = IncrementalSkyline.from_batch(
                    partitioner,
                    pts,
                    result.partition_ids,
                    result.local_skylines,
                    kernel=self._kernel,
                )
                new_ids = list(range(pts.shape[0]))
            else:
                self._ensure_sky(pts)
                assert self._sky is not None
                new_ids = self._sky.bulk_load(pts)
            self._generation += 1
            result = new_ids, self._generation
            self._maybe_checkpoint()
        self._observe_mutation("bulk_load", batch=pts.shape[0])
        return result

    # -- durability -------------------------------------------------------------

    def attach_durability(self, log: "DatasetLog") -> None:
        """Start writing mutations through ``log`` (WAL-before-apply).

        Called after construction — and, on the recovery path, only
        *after* replay, so replayed mutations are not re-logged.
        """
        with self._lock:
            self._durability = log

    def restore_members(
        self,
        ids: Sequence[int],
        rows: np.ndarray,
        *,
        generation: int,
        next_id: int,
    ) -> None:
        """Install a snapshot's membership into a still-empty store.

        Rebuilds the incremental structure from the persisted
        ``(ids, rows)`` verbatim (ids are never renumbered) and restores
        the generation counter and id-allocation cursor, so both query
        labelling and future insert ids match the pre-crash store.
        """
        with self._lock:
            if self._sky is not None or self._generation != 0:
                raise ValueError(
                    f"store {self.name!r} is not empty (generation "
                    f"{self._generation}); recovery must target a fresh store"
                )
            if len(ids) > 0:
                partitioner = make_partitioner(self.scheme, self.num_partitions)
                self._sky = IncrementalSkyline.from_members(
                    partitioner,
                    [int(i) for i in ids],
                    np.asarray(rows, dtype=np.float64),
                    next_id=next_id,
                    kernel=self._kernel,
                )
            else:
                # Nothing lives, but the id cursor must survive: the next
                # arrival re-creates the structure with it (see _ensure_sky).
                self._pending_next_id = next_id
            self._generation = generation

    def checkpoint(self) -> bool:
        """Force a snapshot + WAL truncation now (no-op when not durable)."""
        with self._lock:
            if self._durability is None:
                return False
            self._durability.checkpoint(self._durable_state_locked())
            return True

    def sync_durability(self) -> None:
        """Flush the WAL to stable storage (signal-exit / shutdown path)."""
        with self._lock:
            if self._durability is not None:
                self._durability.sync()

    def store_config(self) -> Dict[str, Any]:
        """Construction parameters, as persisted in register records and
        snapshots so a recovered store is built like the original."""
        return {
            "scheme": self.scheme,
            "num_partitions": self.num_partitions,
            "num_workers": self.num_workers,
            "mr_bulk_threshold": self.mr_bulk_threshold,
            "executor": self.executor if isinstance(self.executor, str) else None,
            "kernel": self._kernel.name,
        }

    def _maybe_checkpoint(self) -> None:
        """Roll the WAL into a snapshot when enough mutations accumulated.

        Callers hold ``self._lock``; the snapshot I/O therefore blocks
        concurrent queries for its duration, which is the price of a
        crash-consistent membership image and is amortised by
        ``snapshot_every``.
        """
        with self._lock:
            if self._durability is not None:
                self._durability.maybe_checkpoint(self._durable_state_locked)

    def _durable_state_locked(self) -> Dict[str, Any]:
        """The snapshot payload for the current state (lock held)."""
        with self._lock:
            if self._sky is None:
                ids: List[int] = []
                rows: List[List[float]] = []
                skyline: List[int] = []
                next_id = self._pending_next_id
            else:
                member_ids, member_rows = self._sky.members()
                ids = [int(i) for i in member_ids]
                rows = [[float(v) for v in row] for row in member_rows]
                skyline = self._sky.global_skyline()
                next_id = self._sky.next_id
            return {
                "dataset": self.name,
                "generation": self._generation,
                "next_id": next_id,
                "ids": ids,
                "rows": rows,
                "skyline_ids": skyline,
                "config": self.store_config(),
            }

    # -- telemetry --------------------------------------------------------------

    def partition_sizes(self) -> List[int]:
        """Member count per partition (empty before any data arrives)."""
        with self._lock:
            return self._sky.partition_sizes() if self._sky is not None else []

    def _observe_mutation(self, op: str, **extra: object) -> None:
        """Per-dataset telemetry after a generation bump.

        Refreshes the ``partition.skew.<dataset>.*`` gauges (which may fire
        edge-triggered skew watches) and emits a ``store.generation``
        event.  Runs *outside* ``self._lock``: watch callbacks are caller
        code and must not run under the store lock.
        """
        with self._lock:
            generation = self._generation
            size = len(self._sky) if self._sky is not None else 0
            sizes = self._sky.partition_sizes() if self._sky is not None else []
        observe_partition_skew(
            get_metrics(), sizes, prefix=f"partition.skew.{self.name}"
        )
        get_events().emit(
            "store.generation",
            dataset=self.name,
            op=op,
            generation=generation,
            size=size,
            **extra,
        )

    # -- internals --------------------------------------------------------------

    def _use_mr_path(self, pts: np.ndarray) -> bool:
        with self._lock:
            return self._sky is None and pts.shape[0] >= self.mr_bulk_threshold

    def _ensure_sky(self, first_batch: np.ndarray) -> None:
        """Fit the partitioner on the first data to arrive.

        Callers already hold ``self._lock``; it is an RLock, so the
        re-acquisition here is free and keeps every write to ``_sky``
        lexically inside a ``with self._lock`` block (the lock-discipline
        contract ``repro lint`` checks).
        """
        with self._lock:
            if self._sky is None:
                partitioner = make_partitioner(self.scheme, self.num_partitions)
                partitioner.fit(first_batch)
                self._sky = IncrementalSkyline(
                    partitioner,
                    kernel=self._kernel,
                    next_id=self._pending_next_id,
                )
