"""In-process shard fleet: N real TCP shard servers in one process.

``repro serve --cluster N`` and the cluster test suites need a topology
without provisioning machines: a :class:`LocalCluster` boots N fully
independent :class:`~repro.serving.service.SkylineService` instances,
each behind its own :func:`~repro.serving.server.make_tcp_server` on a
loopback port, and the coordinator talks to them over real sockets — the
exact wire path a distributed deployment uses.

Chaos hook: :meth:`LocalCluster.kill` stops a shard's accept loop *and*
severs its established connections (a plain ``server_close`` would leave
the coordinator's pooled connections alive and the "crash" unobservable),
which is what the chaos leg of the differential suite relies on.
"""

from __future__ import annotations

import os
import socket
import threading
from typing import Any, Dict, List

from repro.serving.server import ServingTCPServer
from repro.serving.service import ServeConfig, SkylineService

__all__ = ["LocalCluster"]


class _TrackingTCPServer(ServingTCPServer):
    """A :class:`ServingTCPServer` that can sever live connections."""

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self._conn_lock = threading.Lock()
        self._conns: "set[socket.socket]" = set()

    def process_request(self, request: Any, client_address: Any) -> None:
        with self._conn_lock:
            self._conns.add(request)
        super().process_request(request, client_address)

    def close_connections(self) -> None:
        with self._conn_lock:
            conns = list(self._conns)
            self._conns.clear()
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass  # already torn down by the session thread
            try:
                conn.close()
            except OSError:
                pass  # double close is the expected teardown race


class LocalCluster:
    """N in-process shard servers on loopback ports.

    With ``data_dir`` set, every shard writes its datasets through a
    per-shard durability plane (``data_dir/shard-NN``):
    :meth:`restart` then brings a killed shard back *on its old port*
    with its state recovered from disk, which is the fixture the
    shard-restart continuity suite drives — the coordinator's pooled
    endpoints redial the same address and the recovered shard answers at
    its pre-crash generations, so the generation vector never regresses.
    """

    def __init__(
        self,
        num_shards: int,
        *,
        config: ServeConfig | None = None,
        data_dir: str | None = None,
        fsync: str = "interval",
        snapshot_every: int = 256,
    ):
        if num_shards < 1:
            raise ValueError(f"need at least one shard, got {num_shards}")
        self.services: List[SkylineService] = []
        self.servers: List[_TrackingTCPServer | None] = []
        self._threads: List[threading.Thread] = []
        self._dead: Dict[int, str] = {}
        self._config = config
        self._data_dir = data_dir
        self._fsync = fsync
        self._snapshot_every = snapshot_every
        for i in range(num_shards):
            service = self._make_service(i)
            server = _TrackingTCPServer(("127.0.0.1", 0), service)
            thread = threading.Thread(
                target=server.serve_forever,
                name=f"local-shard-{i}",
                daemon=True,
            )
            thread.start()
            self.services.append(service)
            self.servers.append(server)
            self._threads.append(thread)

    def _make_service(self, index: int) -> SkylineService:
        """One shard's service, with its durability plane when configured;
        recovery runs before the shard takes its first request."""
        durability = None
        if self._data_dir is not None:
            from repro.serving.durability import DurabilityConfig, DurabilityManager

            durability = DurabilityManager(
                DurabilityConfig(
                    os.path.join(self._data_dir, f"shard-{index:02d}"),
                    fsync=self._fsync,
                    snapshot_every=self._snapshot_every,
                )
            )
        service = SkylineService(self._config, durability=durability)
        if durability is not None:
            service.recover_datasets()
        return service

    @property
    def num_shards(self) -> int:
        return len(self.services)

    def addresses(self) -> List[str]:
        """``host:port`` per live shard (killed shards keep their slot —
        the coordinator must see the address and fail to reach it)."""
        out: List[str] = []
        for i, server in enumerate(self.servers):
            if server is None:
                out.append(self._dead[i])
            else:
                host, port = server.server_address[:2]
                out.append(f"{host}:{port}")
        return out

    def kill(self, index: int) -> None:
        """Crash one shard: stop accepting and sever live connections.

        The shard's durability files are left exactly as the "crash"
        found them (every WAL append is already flushed per its fsync
        policy); the open handles are released so :meth:`restart` can
        reopen the same files.  Torn-tail chaos is injected by tests at
        the file level, not here.
        """
        server = self.servers[index]
        if server is None:
            return
        host, port = server.server_address[:2]
        self._dead[index] = f"{host}:{port}"
        self.servers[index] = None
        server.shutdown()
        server.close_connections()
        server.server_close()
        durability = self.services[index].durability
        if durability is not None:
            durability.close()

    def restart(self, index: int) -> str:
        """Bring a killed shard back on its old address, state recovered
        from its ``data_dir`` (an empty shard without one); returns the
        ``host:port`` it rebound."""
        if self.servers[index] is not None:
            raise ValueError(f"shard {index} is still running")
        address = self._dead.pop(index)
        host, _, port = address.rpartition(":")
        service = self._make_service(index)
        server = _TrackingTCPServer((host, int(port)), service)
        thread = threading.Thread(
            target=server.serve_forever,
            name=f"local-shard-{index}",
            daemon=True,
        )
        thread.start()
        self.services[index] = service
        self.servers[index] = server
        self._threads[index] = thread
        return address

    def close(self) -> None:
        for i in range(len(self.servers)):
            self.kill(i)

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
