"""Lint engine: paths in, findings out.

:func:`run_lint` parses every Python file under the given paths into one
:class:`~repro.analysis.project.Project`, runs the selected rules over it,
applies ``# repro: allow[...]`` suppressions and the optional baseline, and
folds pragma hygiene (malformed / unknown-id pragmas) and parse failures
into the result as findings of their own — so nothing the checker could not
verify disappears silently.
"""

from __future__ import annotations

import ast
import os
import subprocess
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.base import Rule, all_rule_ids, all_rules, rules_by_id
from repro.analysis.baseline import load_baseline, split_baselined
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import Module, Project
from repro.analysis.suppressions import PRAGMA_RULE_ID

#: Rule id attached to files the indexer could not parse.
PARSE_RULE_ID = "parse-error"


@dataclass(slots=True)
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    checked_files: int = 0
    suppressed: int = 0
    baselined: int = 0
    rule_ids: List[str] = field(default_factory=list)

    @property
    def error_count(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.ERROR)

    @property
    def exit_code(self) -> int:
        """0 when clean; 1 when any error-severity finding survived."""
        return 1 if self.error_count else 0

    def summary(self) -> dict:
        return {
            "files": self.checked_files,
            "findings": len(self.findings),
            "errors": self.error_count,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "rules": list(self.rule_ids),
            "exit_code": self.exit_code,
        }


def run_lint(
    paths: Sequence[str],
    *,
    rule_ids: Optional[Sequence[str]] = None,
    baseline_path: Optional[str] = None,
) -> LintResult:
    """Run the contract checker over ``paths`` (files or directories)."""
    project = Project.load(paths)
    rules: List[Rule] = (
        rules_by_id(rule_ids) if rule_ids is not None else all_rules()
    )
    result = LintResult(
        checked_files=len(project.modules) + len(project.failures),
        rule_ids=[rule.id for rule in rules],
    )

    raw: List[Finding] = []
    for rule in rules:
        raw.extend(rule.check(project))
    # Rule findings anchor on AST nodes, which for a multi-line statement
    # may sit on a continuation line where no pragma can live.  Normalize
    # each to its statement's first line so an allow-pragma placed on the
    # statement works regardless of how the expression wraps.  (Pragma and
    # parse findings below locate real source lines; they are left alone.)
    span_cache: Dict[str, _SpanIndex] = {}
    raw = [
        _normalize_to_statement(project, finding, span_cache)
        for finding in raw
    ]
    raw.extend(_pragma_findings(project))
    for failure in project.failures:
        raw.append(
            Finding(
                rule_id=PARSE_RULE_ID,
                path=failure.path,
                line=failure.line,
                col=0,
                message=f"cannot parse file: {failure.message}",
            )
        )

    kept: List[Finding] = []
    for finding in raw:
        module = _module_for(project, finding.path)
        if module is not None and module.suppressions.suppresses(
            finding.rule_id, finding.line
        ):
            result.suppressed += 1
        else:
            kept.append(finding)

    if baseline_path is not None:
        fingerprints: Set[str] = load_baseline(baseline_path)
        kept, result.baselined = split_baselined(kept, fingerprints)

    kept.sort(key=Finding.sort_key)
    result.findings = kept
    return result


def _pragma_findings(project: Project) -> List[Finding]:
    """Pragma hygiene: every suppression must carry a known rule id."""
    known = set(all_rule_ids()) | {PRAGMA_RULE_ID, PARSE_RULE_ID}
    findings: List[Finding] = []
    for module in sorted(project.modules.values(), key=lambda m: m.path):
        sup = module.suppressions
        for line, col, message in sup.malformed:
            findings.append(
                Finding(
                    rule_id=PRAGMA_RULE_ID,
                    path=module.path,
                    line=line,
                    col=col,
                    message=f"suppression pragma: {message} "
                    "(write `# repro: allow[rule-id]`)",
                )
            )
        for line, col, rule_id in sup.named_ids:
            if rule_id not in known:
                findings.append(
                    Finding(
                        rule_id=PRAGMA_RULE_ID,
                        path=module.path,
                        line=line,
                        col=col,
                        message=f"suppression pragma names unknown rule "
                        f"{rule_id!r} (known: {', '.join(sorted(known))})",
                    )
                )
    return findings


def _module_for(project: Project, path: str) -> Module | None:
    for module in project.modules.values():
        if module.path == path:
            return module
    return None


#: Statement spans of one module: (first line, last line, column).
_SpanIndex = List[Tuple[int, int, int]]


def _statement_spans(module: Module) -> _SpanIndex:
    spans: _SpanIndex = []
    for node in ast.walk(module.tree):
        # excepthandler rides along: `except Exception:` is a real line a
        # pragma can sit on, and must not re-anchor to the `try:` above.
        if isinstance(node, (ast.stmt, ast.excepthandler)):
            end = getattr(node, "end_lineno", None) or node.lineno
            spans.append((node.lineno, end, node.col_offset))
    return spans


def _normalize_to_statement(
    project: Project, finding: Finding, cache: Dict[str, _SpanIndex]
) -> Finding:
    """Re-anchor a finding to the first line of its enclosing statement.

    The innermost statement wins (the one starting latest, then the
    tighter span), so only continuation lines move — a finding already on
    a statement's first line is returned unchanged.
    """
    module = _module_for(project, finding.path)
    if module is None or finding.line <= 0:
        return finding
    spans = cache.get(finding.path)
    if spans is None:
        spans = cache[finding.path] = _statement_spans(module)
    best: Optional[Tuple[int, int, int]] = None
    for start, end, col in spans:
        if not start <= finding.line <= end:
            continue
        if best is None or (start, -end) > (best[0], -best[1]):
            best = (start, end, col)
    if best is None or best[0] == finding.line:
        return finding
    return replace(finding, line=best[0], col=best[2])


def changed_python_files(
    base: str = "HEAD", *, cwd: Optional[str] = None
) -> List[str]:
    """Absolute paths of ``*.py`` files changed since ``base``.

    The change set is ``git diff base`` (deletions excluded — there is
    nothing left to lint) plus untracked-but-not-ignored files, so a
    freshly added module is linted before its first commit.  Raises
    :class:`ValueError` when ``base`` does not resolve or the working
    directory is not inside a git checkout.
    """

    def git(*args: str) -> str:
        proc = subprocess.run(
            ["git", *args],
            cwd=cwd,
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            detail = proc.stderr.strip() or f"git exited {proc.returncode}"
            raise ValueError(f"cannot compute changed files: {detail}")
        return proc.stdout

    root = git("rev-parse", "--show-toplevel").strip()
    listed = git("diff", "--name-only", "--diff-filter=d", base, "--")
    listed += git("ls-files", "--others", "--exclude-standard")
    return sorted(
        os.path.join(root, line)
        for line in set(listed.splitlines())
        if line.endswith(".py")
    )
