"""Project index: parsed modules, import graph, cross-module name resolution.

The rule packs need more than a single file's AST: a mapper class referenced
at a ``Job(...)`` call site may be *imported* from another module, so the
checker parses every file under the linted paths once, records each module's
top-level bindings and imports, and resolves names through the import graph
(bounded, cycle-safe).  Resolution is best-effort by design — anything it
cannot trace is simply not flagged; the checker never guesses.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.suppressions import SuppressionMap, parse_suppressions

#: Maximum import-graph hops followed when resolving one name.
_MAX_HOPS = 8


@dataclass(slots=True)
class ParseFailure:
    """A file the indexer could not parse (reported, never fatal)."""

    path: str
    line: int
    message: str


@dataclass(slots=True)
class Binding:
    """One top-level name binding inside a module."""

    #: "def" (class/function/assignment in this module) or "import".
    kind: str
    #: For kind == "def": the AST node bound to the name.
    node: Optional[ast.AST] = None
    #: For kind == "import": the source module, and the name there
    #: ("" means the binding is the module object itself).
    module: str = ""
    orig_name: str = ""


@dataclass(slots=True)
class Module:
    """One parsed source file plus its lint-relevant side tables."""

    name: str
    path: str
    tree: ast.Module
    source_lines: List[str]
    suppressions: SuppressionMap
    bindings: Dict[str, Binding] = field(default_factory=dict)

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.source_lines):
            return self.source_lines[lineno - 1]
        return ""


@dataclass(slots=True, frozen=True)
class Resolved:
    """A name resolved to its defining module and AST node."""

    module: "Module"
    node: ast.AST
    #: Fully-qualified dotted name of the resolved symbol.
    qualname: str


class Project:
    """Every module under the linted paths, indexed for resolution."""

    def __init__(self) -> None:
        self.modules: Dict[str, Module] = {}
        self.failures: List[ParseFailure] = []
        self._by_path: Dict[str, Module] = {}

    # -- construction -------------------------------------------------------------

    @classmethod
    def load(cls, paths: Iterable[str]) -> "Project":
        project = cls()
        for path in _python_files(paths):
            project._add_file(path)
        return project

    def _add_file(self, path: str) -> None:
        real = os.path.realpath(path)
        if real in self._by_path:
            return
        try:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
            tree = ast.parse(source, filename=path)
        except (OSError, SyntaxError, ValueError) as exc:
            line = getattr(exc, "lineno", 0) or 0
            self.failures.append(ParseFailure(path, line, str(exc)))
            return
        module = Module(
            name=_module_name(path),
            path=path,
            tree=tree,
            source_lines=source.splitlines(),
            suppressions=parse_suppressions(source),
        )
        _index_bindings(module)
        self.modules[module.name] = module
        self._by_path[real] = module

    # -- resolution ---------------------------------------------------------------

    def resolve_name(self, module: Module, name: str) -> Optional[Resolved]:
        """Resolve a bare name in ``module`` to its defining def, if indexed."""
        seen: set = set()
        current, target = module, name
        for _ in range(_MAX_HOPS):
            key = (current.name, target)
            if key in seen:
                return None
            seen.add(key)
            binding = current.bindings.get(target)
            if binding is None:
                return None
            if binding.kind == "def":
                assert binding.node is not None
                return Resolved(
                    module=current,
                    node=binding.node,
                    qualname=f"{current.name}.{target}",
                )
            # import binding
            if binding.orig_name == "":
                # bound to a module object; nothing further to chase here
                return None
            next_module = self.modules.get(binding.module)
            if next_module is None:
                return None
            current, target = next_module, binding.orig_name
        return None

    def resolve_expr(self, module: Module, node: ast.AST) -> Optional[Resolved]:
        """Resolve a ``Name`` or one-level ``module.attr`` expression."""
        if isinstance(node, ast.Name):
            return self.resolve_name(module, node.id)
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            binding = module.bindings.get(node.value.id)
            if binding is not None and binding.kind == "import":
                target = binding.module
                if binding.orig_name:
                    target = f"{binding.module}.{binding.orig_name}"
                defining = self.modules.get(target)
                if defining is not None:
                    return self.resolve_name(defining, node.attr)
        return None


def dotted_name(node: ast.AST) -> str:
    """Flatten ``a.b.c`` attribute chains; "" for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def enclosing_symbol(tree: ast.Module, target: ast.AST) -> str:
    """Dotted class/function path containing ``target`` ("" at module level).

    Innermost scope wins; resolved by line span, so it also works for nodes
    reached through cross-module resolution rather than a live parent walk.
    """
    line = getattr(target, "lineno", None)
    if line is None:
        return ""
    best: List[str] = []

    def walk(node: ast.AST, trail: Tuple[str, ...]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                deeper = trail + (child.name,)
                if child.lineno <= line <= (child.end_lineno or child.lineno):
                    if len(deeper) > len(best):
                        best[:] = deeper
                walk(child, deeper)
            else:
                walk(child, trail)

    walk(tree, ())
    return ".".join(best)


# ---------------------------------------------------------------------------
# internals
# ---------------------------------------------------------------------------


def _python_files(paths: Iterable[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d not in ("__pycache__", ".git")
                )
                for name in sorted(names):
                    if name.endswith(".py"):
                        files.append(os.path.join(root, name))
        elif path.endswith(".py"):
            files.append(path)
    return files


def _module_name(path: str) -> str:
    """Dotted module name derived from the package layout on disk."""
    abspath = os.path.abspath(path)
    parts = [os.path.splitext(os.path.basename(abspath))[0]]
    parent = os.path.dirname(abspath)
    while os.path.isfile(os.path.join(parent, "__init__.py")):
        parts.append(os.path.basename(parent))
        parent = os.path.dirname(parent)
    name = ".".join(reversed(parts))
    if name.endswith(".__init__"):
        name = name[: -len(".__init__")]
    return name


def _index_bindings(module: Module) -> None:
    """Record the module's top-level name bindings (defs and imports)."""
    for node in module.tree.body:
        if isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            module.bindings[node.name] = Binding(kind="def", node=node)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    module.bindings[target.id] = Binding(kind="def", node=node)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                module.bindings[node.target.id] = Binding(kind="def", node=node)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                module.bindings[bound] = Binding(
                    kind="import", module=target, orig_name=""
                )
        elif isinstance(node, ast.ImportFrom):
            source = _absolute_import(module.name, node)
            if source is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                module.bindings[bound] = Binding(
                    kind="import", module=source, orig_name=alias.name
                )


def _absolute_import(module_name: str, node: ast.ImportFrom) -> Optional[str]:
    """Absolute source module of a (possibly relative) ``from`` import."""
    if node.level == 0:
        return node.module
    parts = module_name.split(".")
    if node.level > len(parts):
        return None
    base = parts[: len(parts) - node.level]
    if node.module:
        base.append(node.module)
    return ".".join(base) if base else None
