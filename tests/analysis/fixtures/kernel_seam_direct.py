"""Violating fixture: hot-path code calling raw dominance primitives."""

import numpy as np

import repro.core.dominance as dom
from repro.core import dominance
from repro.core.dominance import dominated_by_any, dominated_mask
from repro.core.dominance import dominates as dominates_fast


def local_skyline(points: np.ndarray) -> np.ndarray:
    mask = ~dominated_mask(points)  # VIOLATION: kernel-seam
    return np.flatnonzero(mask)


def merge(window: np.ndarray, point: np.ndarray) -> bool:
    if dominates_fast(window[0], point):  # VIOLATION: kernel-seam
        return False
    hits = dominance.dominated_by_any(window, point)  # VIOLATION: kernel-seam
    evicted = dominated_by_any(window, point)  # VIOLATION: kernel-seam
    return bool(hits.any() or evicted.any())


def pairwise(points: np.ndarray) -> np.ndarray:
    return dom.dominance_matrix(points)  # VIOLATION: kernel-seam
