"""Isolation for the process-wide tracer/metrics singletons.

The serving layer reports into the PR-1 observability globals; every test
here starts from the disabled tracer and an empty metrics registry so
counter assertions never see another test's traffic.
"""

import pytest

from repro.observability.events import set_events
from repro.observability.metrics import set_metrics
from repro.observability.tracing import set_tracer


@pytest.fixture(autouse=True)
def _fresh_observability():
    set_tracer(None)
    set_metrics(None)
    set_events(None)
    yield
    set_tracer(None)
    set_metrics(None)
    set_events(None)
