"""blocking-under-lock: blocking operations reachable while a lock is held.

A thread that sleeps, waits on a socket / queue / future / subprocess, or
parks on a semaphore while holding a lock stalls every other thread that
needs that lock — the classic serving-latency killer, and invisible to
single-file inspection when the blocking call sits three frames below the
``with self._lock:`` region.  This rule reports every call site where the
flow layer's may-held set is non-empty and either the call itself blocks
(``time.sleep``, ``.recv()``, ``.result()``, ``.get()`` / ``.join()``
zero-arg forms, non-lock ``.acquire()``, ...) or a resolved callee's
transitive-blocking summary says the callee may block, with the frame
chain in the message.

``blocking=False`` / ``block=False`` try-forms are exempt; lock
``.acquire()`` itself is an ordering event handled by
``lock-order-cycle``, not a blocking finding.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.base import Rule, register
from repro.analysis.findings import Finding
from repro.analysis.flow import flow_for_project
from repro.analysis.project import Project


@register
class BlockingUnderLockRule(Rule):
    """Holding a lock across a blocking call stalls every contender."""

    id = "blocking-under-lock"

    def check(self, project: Project) -> Iterator[Finding]:
        analysis = flow_for_project(project)
        for site in analysis.blocking_under_lock():
            held = ", ".join(lock.label() for lock in site.held)
            via = " -> ".join(site.chain)
            yield self.finding(
                site.module,
                site.node,
                f"blocking operation {site.description} may run while "
                f"holding {held}; path: {via}",
            )
