"""Tests for dataset persistence (CSV / NPZ)."""

import numpy as np
import pytest

from repro.data.io import load_csv, load_npz, save_csv, save_npz
from repro.services.qos import Polarity
from repro.services.qws import generate_qws


@pytest.fixture(scope="module")
def dataset():
    return generate_qws(50, seed=9)


class TestCsv:
    def test_round_trip_values(self, dataset, tmp_path):
        path = tmp_path / "services.csv"
        save_csv(dataset, path)
        back = load_csv(path)
        assert np.allclose(back.raw, dataset.raw)

    def test_round_trip_schema(self, dataset, tmp_path):
        path = tmp_path / "services.csv"
        save_csv(dataset, path)
        back = load_csv(path)
        assert back.schema.names == dataset.schema.names
        for a, b in zip(back.schema, dataset.schema):
            assert a.polarity == b.polarity
            assert a.upper_bound == b.upper_bound
            assert a.unit == b.unit

    def test_header_line_present(self, dataset, tmp_path):
        path = tmp_path / "services.csv"
        save_csv(dataset, path)
        lines = path.read_text().splitlines()
        assert lines[0].startswith("#schema ")
        assert lines[1].split(",") == dataset.schema.names

    def test_missing_schema_line_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError, match="#schema"):
            load_csv(path)

    def test_header_schema_mismatch_rejected(self, dataset, tmp_path):
        path = tmp_path / "services.csv"
        save_csv(dataset, path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace("response_time", "wrong_name")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="header"):
            load_csv(path)

    def test_normalisation_identical_after_reload(self, dataset, tmp_path):
        path = tmp_path / "services.csv"
        save_csv(dataset, path)
        back = load_csv(path)
        assert np.allclose(back.qos_matrix(6), dataset.qos_matrix(6))


class TestNpz:
    def test_round_trip(self, dataset, tmp_path):
        path = tmp_path / "services.npz"
        save_npz(dataset, path)
        back = load_npz(path)
        assert np.array_equal(back.raw, dataset.raw)
        assert back.schema.names == dataset.schema.names
        assert back.name == dataset.name

    def test_polarity_preserved(self, dataset, tmp_path):
        path = tmp_path / "services.npz"
        save_npz(dataset, path)
        back = load_npz(path)
        assert back.schema.attributes[0].polarity is Polarity.LOWER_IS_BETTER
        assert back.schema.attributes[1].polarity is Polarity.HIGHER_IS_BETTER
