"""Tests for the reproduction gate (shape checks)."""

import pytest

from repro.bench.expectations import (
    CheckResult,
    ShapeCheck,
    _angle_fastest,
    _angle_gap_grows,
    _fig6_declines_and_saturates,
    _fig7_eq_width_magnitude,
    _fig7_ordering_at_top_dim,
    _theory_bound_holds,
    reproduction_checks,
)
from repro.bench.reporting import Table


def _fig5_table(dim_vals, grid_vals, angle_vals):
    t = Table(title="t", columns=["dimension", "MR-Dim", "MR-Grid", "MR-Angle"])
    for d, a, b, c in zip((2, 6, 10), dim_vals, grid_vals, angle_vals):
        t.add_row(d, a, b, c)
    return t


class TestPredicates:
    def test_angle_fastest_pass(self):
        t = _fig5_table([10, 20, 30], [11, 22, 33], [5, 6, 7])
        assert _angle_fastest(t) == ""

    def test_angle_fastest_fail(self):
        t = _fig5_table([10, 20, 30], [11, 22, 33], [5, 25, 7])
        assert "slower" in _angle_fastest(t)

    def test_gap_grows_pass(self):
        t = _fig5_table([10, 40, 90], [11, 44, 99], [5, 10, 15])
        assert _angle_gap_grows(t) == ""

    def test_gap_grows_fail_shrinking(self):
        t = _fig5_table([50, 40, 30], [55, 44, 33], [5, 10, 20])
        assert "shrank" in _angle_gap_grows(t)

    def test_gap_grows_fail_small_factor(self):
        t = _fig5_table([10, 11, 12], [10, 11, 12], [9, 10, 10])
        assert "floor" in _angle_gap_grows(t)

    def test_fig6_pass(self):
        t = Table(title="t", columns=["servers", "map_time_s", "reduce_time_s", "total_s"])
        for s, total in zip((4, 8, 16, 32), (100, 80, 72, 70)):
            t.add_row(s, 10, total - 10, total)
        assert _fig6_declines_and_saturates(t) == ""

    def test_fig6_fail_no_speedup(self):
        t = Table(title="t", columns=["servers", "map_time_s", "reduce_time_s", "total_s"])
        for s in (4, 8, 16, 32):
            t.add_row(s, 10, 90, 100)
        assert "no total speedup" in _fig6_declines_and_saturates(t)

    def test_fig6_fail_no_saturation(self):
        t = Table(title="t", columns=["servers", "map_time_s", "reduce_time_s", "total_s"])
        for s, total in zip((4, 8, 16, 32), (100, 99, 98, 50)):
            t.add_row(s, 10, total - 10, total)
        assert "saturate" in _fig6_declines_and_saturates(t)

    def test_fig7_ordering(self):
        t = Table(
            title="t",
            columns=["dimension", "MR-Dim", "MR-Grid", "MR-Angle"],
        )
        t.add_row(10, 0.1, 0.3, 0.4)
        assert _fig7_ordering_at_top_dim(t) == ""
        bad = Table(
            title="t",
            columns=["dimension", "MR-Dim", "MR-Grid", "MR-Angle"],
        )
        bad.add_row(10, 0.1, 0.5, 0.4)
        assert "broken" in _fig7_ordering_at_top_dim(bad)

    def test_eq_width_band(self):
        t = Table(title="t", columns=["dimension", "MR-Angle(eq-width)"])
        t.add_row(10, 0.65)
        assert _fig7_eq_width_magnitude(t) == ""
        low = Table(title="t", columns=["dimension", "MR-Angle(eq-width)"])
        low.add_row(10, 0.2)
        assert "band" in _fig7_eq_width_magnitude(low)

    def test_theory(self):
        t = Table(
            title="t",
            columns=["x", "D_angle_eq3", "D_angle_mc", "bound_holds"],
        )
        t.add_row(0.5, 0.75, 0.751, True)
        assert _theory_bound_holds(t) == ""
        bad = Table(
            title="t",
            columns=["x", "D_angle_eq3", "D_angle_mc", "bound_holds"],
        )
        bad.add_row(0.5, 0.75, 0.80, True)
        assert "diverges" in _theory_bound_holds(bad)


class TestShapeCheck:
    def test_run_pass(self):
        check = ShapeCheck(
            name="x",
            claim="always true",
            predicate=lambda t: "",
            table_fn=lambda: Table(title="t", columns=["a"]),
        )
        result = check.run()
        assert result.passed
        assert result.detail == "always true"
        assert bool(result)

    def test_run_fail(self):
        check = ShapeCheck(
            name="x",
            claim="c",
            predicate=lambda t: "broken",
            table_fn=lambda: Table(title="t", columns=["a"]),
        )
        result = check.run()
        assert not result.passed
        assert result.detail == "broken"

    def test_suite_declares_six_checks(self):
        checks = reproduction_checks(quick=True)
        assert len(checks) == 6
        assert len({c.name for c in checks}) == 6


class TestCliVerify:
    def test_verify_quick(self, capsys):
        from repro.cli import main

        rc = main(["verify", "--quick"])
        out = capsys.readouterr().out
        assert "reproduction gate" in out
        assert rc == 0
        assert "6/6 shape checks passed" in out
