"""Sort-based shuffle: map outputs → grouped, key-sorted reduce inputs.

Two shuffle implementations share one ordering and one stats model:

* :func:`shuffle` — the batch (barrier) form: the runner hands over *every*
  map task's per-partition buffers at once; they are merged per reduce
  partition, sorted by key, and grouped, exactly like Hadoop's merge phase.
* :class:`StreamingShuffle` — the incremental form: each map task's buffers
  are ingested (sorted per segment) *as the task finishes*, so the sort work
  overlaps the map phase; :meth:`StreamingShuffle.finalize` then k-way
  merges the pre-sorted segments of one partition, letting its reduce task
  launch without waiting for the other partitions to be merged.  The two
  forms produce identical grouped output for identical map outputs,
  regardless of ingestion order (segments are always merged in map-task
  order, so value order within a key is stable).

Both support an external-sort spill path through framed temp files for
memory-constrained runs.

Key ordering is total even for heterogeneous or partially-ordered key sets:
keys compare by type name first, then natural ``<`` within a type, falling
back to ``repr`` for same-type keys that raise ``TypeError`` (e.g. the
tuples ``(1, "a")`` and ``("a", 1)``).  Every sort and merge path uses this
one ordering, so spilled and in-memory runs interleave consistently.
"""

from __future__ import annotations

import heapq
import os
import tempfile
import threading
from dataclasses import dataclass
from typing import Any, Hashable, Iterable, List, Tuple

from repro.mapreduce.serialization import (
    PickleCodec,
    estimate_nbytes,
    read_frames,
    write_frames,
)
from repro.observability.metrics import get_metrics

Pair = Tuple[Hashable, Any]
Grouped = List[Tuple[Hashable, List[Any]]]


@dataclass(slots=True)
class ShuffleStats:
    """Volume accounting for one job's shuffle."""

    records: int = 0
    bytes: int = 0
    segments: int = 0
    spilled_segments: int = 0
    #: Map outputs offered more than once (late speculative losers) and
    #: dropped before commit — always 0 in a fault-free run.
    duplicate_segments: int = 0

    def as_dict(self) -> dict:
        """JSON-ready view (attached to the shuffle phase's trace span)."""
        return {
            "records": self.records,
            "bytes": self.bytes,
            "segments": self.segments,
            "spilled_segments": self.spilled_segments,
            "duplicate_segments": self.duplicate_segments,
        }

    def observe(self, registry) -> None:
        """Accumulate this shuffle's volume into a metrics registry."""
        registry.counter("shuffle.records").inc(self.records)
        registry.counter("shuffle.bytes").inc(self.bytes)
        registry.counter("shuffle.segments").inc(self.segments)
        registry.counter("shuffle.spilled_segments").inc(self.spilled_segments)
        registry.counter("shuffle.duplicate_segments").inc(
            self.duplicate_segments
        )


class _SortKey:
    """A totally-ordered proxy for one arbitrary hashable key.

    Ordering: type name first (so mixed-type key sets never compare
    cross-type), then the key's natural ``<`` within a type, and — as the
    docstring of this module promises — a ``repr`` fallback for same-type
    keys whose comparison raises ``TypeError`` (mutually incomparable
    tuples, sets, custom objects).  The repr fallback trades semantic order
    for totality, which is all the shuffle needs: a deterministic order
    that groups equal keys adjacently.
    """

    __slots__ = ("_tname", "_key")

    def __init__(self, key: Hashable):
        self._tname = type(key).__name__
        self._key = key

    def __lt__(self, other: "_SortKey") -> bool:
        if self._tname != other._tname:
            return self._tname < other._tname
        try:
            return bool(self._key < other._key)
        except TypeError:
            return repr(self._key) < repr(other._key)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _SortKey):
            return NotImplemented
        return self._tname == other._tname and self._key == other._key


def _sort_token(key: Hashable) -> _SortKey:
    """The total-order key used by every shuffle sort and merge path."""
    return _SortKey(key)


def _safe_sort(pairs: List[Pair]) -> List[Pair]:
    """Stable-sort pairs by the shuffle's total key order.

    Always sorts through :func:`_sort_token` so in-memory sorts, spilled
    segment sorts, and k-way merges agree on one ordering — a segment sorted
    by natural ``<`` and merged by a different order would interleave
    wrongly.
    """
    return sorted(pairs, key=lambda kv: _sort_token(kv[0]))


def group_sorted(pairs: List[Pair]) -> Grouped:
    """Group a key-sorted pair list into ``(key, [values])`` runs."""
    grouped: Grouped = []
    current_key: Hashable = None
    current_values: List[Any] | None = None
    for key, value in pairs:
        if current_values is not None and key == current_key:
            current_values.append(value)
        else:
            current_values = [value]
            current_key = key
            grouped.append((key, current_values))
    return grouped


def shuffle(
    map_outputs: List[List[List[Pair]]],
    num_partitions: int,
    *,
    sort_keys: bool = True,
    spill_dir: str | None = None,
    spill_threshold_records: int = 0,
) -> Tuple[List[Grouped], ShuffleStats]:
    """Merge map-side buffers into grouped reduce inputs.

    Parameters
    ----------
    map_outputs:
        ``map_outputs[m][p]`` is map task *m*'s buffer destined for reduce
        partition *p*.
    num_partitions:
        Number of reduce partitions ``R``.
    sort_keys:
        Sort each partition's pairs by key before grouping (Hadoop always
        does; disable only for experiments).
    spill_dir / spill_threshold_records:
        When set and a partition exceeds the threshold, its segments are
        staged through framed temp files and k-way merged — an external-sort
        path exercising the same code users would need at scale.

    Returns
    -------
    (per-partition grouped inputs, shuffle statistics)
    """
    stats = ShuffleStats()
    partitions: List[Grouped] = []
    for part in range(num_partitions):
        segments = [out[part] for out in map_outputs if out[part]]
        stats.segments += len(segments)
        n_records = sum(len(seg) for seg in segments)
        stats.records += n_records
        for seg in segments:
            for key, value in seg:
                stats.bytes += estimate_nbytes(key) + estimate_nbytes(value)
        use_spill = (
            spill_dir is not None
            and spill_threshold_records > 0
            and n_records > spill_threshold_records
            and sort_keys
        )
        if use_spill:
            merged = _external_merge(segments, spill_dir, stats)
        else:
            flat = [pair for seg in segments for pair in seg]
            merged = _safe_sort(flat) if sort_keys else flat
        partitions.append(group_sorted(merged))
    stats.observe(get_metrics())
    return partitions, stats


class StreamingShuffle:
    """Incremental shuffle: ingest map outputs as tasks finish.

    The executor-based runner feeds each finished map task's per-partition
    buffers into :meth:`ingest`, where they are sorted *segment by segment*
    — overlapping the sort work with still-running map tasks.  Once every
    map task has been ingested (:attr:`complete`), :meth:`finalize` k-way
    merges one partition's pre-sorted segments and groups it, so a reduce
    task can be launched per partition as soon as that partition is merged,
    without waiting for the rest.

    Output parity with the batch :func:`shuffle` is exact and ingestion-
    order independent: segments are merged in *map-task index* order with a
    stable merge, which reproduces the batch path's stable sort over the
    map-order concatenation — same key order, same value order within a
    key, same :class:`ShuffleStats` accounting.

    The spill path mirrors the batch rules: once a partition's cumulative
    records exceed ``spill_threshold_records`` (and ``sort_keys`` is on),
    all of its segments — buffered and future — are staged through framed
    temp files and stream-merged at finalize.

    Shared state (segment buffers, spill paths, counts, stats) mutates only
    under ``self._lock`` — the engine's lock-discipline contract, enforced
    statically by ``repro lint`` — so a future runner variant may ingest
    from executor callbacks on worker threads without re-auditing this
    class.  The lock is reentrant (spilling happens mid-ingest) and is
    never held across the k-way merge itself, only across buffer handoff.
    """

    def __init__(
        self,
        num_map_tasks: int,
        num_partitions: int,
        *,
        sort_keys: bool = True,
        spill_dir: str | None = None,
        spill_threshold_records: int = 0,
    ):
        if num_map_tasks < 0:
            raise ValueError(f"num_map_tasks must be >= 0, got {num_map_tasks}")
        if num_partitions <= 0:
            raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
        self.num_map_tasks = num_map_tasks
        self.num_partitions = num_partitions
        self.stats = ShuffleStats()
        self._sort_keys = sort_keys
        self._spill_dir = spill_dir
        self._spill_threshold = spill_threshold_records
        self._codec = PickleCodec()
        # Per partition: map-task index → in-memory sorted segment / spill path.
        self._segments: List[dict[int, List[Pair]]] = [
            {} for _ in range(num_partitions)
        ]
        self._spilled: List[dict[int, str]] = [{} for _ in range(num_partitions)]
        self._counts = [0] * num_partitions
        self._ingested: set[int] = set()
        self._lock = threading.RLock()

    @property
    def complete(self) -> bool:
        """True once every map task's buffers have been ingested."""
        return len(self._ingested) >= self.num_map_tasks

    @property
    def _spill_enabled(self) -> bool:
        return (
            self._spill_dir is not None
            and self._spill_threshold > 0
            and self._sort_keys
        )

    def ingest(
        self,
        map_index: int,
        buffers: List[List[Pair]],
        *,
        on_duplicate: str = "raise",
    ) -> None:
        """Absorb one map task's per-partition buffers (sorting them now).

        ``on_duplicate`` controls what a second ingest of the same map index
        does: ``"raise"`` (the default — a duplicate is a runner bug in a
        fault-free world) or ``"discard"`` — the speculative-execution
        contract, where a late losing attempt's output must be dropped
        before commit rather than double-counted.  Discards are tallied in
        ``stats.duplicate_segments``.
        """
        if on_duplicate not in ("raise", "discard"):
            raise ValueError(
                f'on_duplicate must be "raise" or "discard", got {on_duplicate!r}'
            )
        with self._lock:
            if map_index in self._ingested:
                if on_duplicate == "discard":
                    self.stats.duplicate_segments += sum(
                        1 for seg in buffers if seg
                    )
                    return
                raise ValueError(f"map task {map_index} already ingested")
            if len(buffers) != self.num_partitions:
                raise ValueError(
                    f"map task {map_index} produced {len(buffers)} buffers "
                    f"for {self.num_partitions} partitions"
                )
            for part, seg in enumerate(buffers):
                if not seg:
                    continue
                self.stats.segments += 1
                self.stats.records += len(seg)
                for key, value in seg:
                    self.stats.bytes += (
                        estimate_nbytes(key) + estimate_nbytes(value)
                    )
                self._segments[part][map_index] = (
                    _safe_sort(seg) if self._sort_keys else list(seg)
                )
                self._counts[part] += len(seg)
                if (
                    self._spill_enabled
                    and self._counts[part] > self._spill_threshold
                ):
                    self._spill_partition(part)
            self._ingested.add(map_index)

    def finalize(self, part: int) -> Grouped:
        """Merge + group one partition; legal only once :attr:`complete`.

        Frees the partition's buffered segments and spill files, so each
        partition can be finalized exactly once.
        """
        # Detach the partition's buffers under the lock; merge outside it
        # (the k-way merge is the expensive part and touches nothing shared).
        with self._lock:
            if not self.complete:
                raise RuntimeError(
                    f"cannot finalize partition {part}: "
                    f"{self.num_map_tasks - len(self._ingested)} map tasks "
                    "pending"
                )
            segments = self._segments[part]
            spilled = self._spilled[part]
            self._segments[part] = {}
            self._spilled[part] = {}
        indices = sorted(segments.keys() | spilled.keys())
        if self._sort_keys:
            streams: List[Iterable[Pair]] = [
                self._read_spill(spilled[i]) if i in spilled else segments[i]
                for i in indices
            ]
            merged = list(
                heapq.merge(*streams, key=lambda kv: _sort_token(kv[0]))
            )
        else:
            merged = [pair for i in indices for pair in segments[i]]
        for path in spilled.values():
            self._unlink(path)
        return group_sorted(merged)

    def finalize_all(self) -> List[Grouped]:
        """Merge + group every partition, in partition order."""
        return [self.finalize(part) for part in range(self.num_partitions)]

    def close(self) -> None:
        """Release buffered segments and delete any remaining spill files."""
        with self._lock:
            self._segments = [{} for _ in range(self.num_partitions)]
            leftover = self._spilled
            self._spilled = [{} for _ in range(self.num_partitions)]
        for spilled in leftover:
            for path in spilled.values():
                self._unlink(path)

    def __enter__(self) -> "StreamingShuffle":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- internals ---------------------------------------------------------------

    def _spill_partition(self, part: int) -> None:
        """Stage all of one partition's in-memory segments to framed files.

        Reached from :meth:`ingest` with the (reentrant) lock already held;
        it re-acquires so its mutations are lock-guarded in their own right.
        """
        assert self._spill_dir is not None
        os.makedirs(self._spill_dir, exist_ok=True)
        with self._lock:
            for map_index, seg in sorted(self._segments[part].items()):
                fd, path = tempfile.mkstemp(dir=self._spill_dir, suffix=".spill")
                self._spilled[part][map_index] = path
                self.stats.spilled_segments += 1
                with os.fdopen(fd, "wb") as fh:
                    write_frames(fh, (self._codec.encode(p) for p in seg))
            self._segments[part] = {}

    def _read_spill(self, path: str) -> Iterable[Pair]:
        with open(path, "rb") as fh:
            for frame in read_frames(fh):
                yield self._codec.decode(frame)

    @staticmethod
    def _unlink(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass


def _external_merge(
    segments: List[List[Pair]], spill_dir: str, stats: ShuffleStats
) -> List[Pair]:
    """Sort each segment, spill to framed files, then k-way merge."""
    codec = PickleCodec()
    paths: List[str] = []
    os.makedirs(spill_dir, exist_ok=True)
    try:
        for seg in segments:
            fd, path = tempfile.mkstemp(dir=spill_dir, suffix=".spill")
            paths.append(path)
            stats.spilled_segments += 1
            with os.fdopen(fd, "wb") as fh:
                write_frames(fh, (codec.encode(p) for p in _safe_sort(seg)))

        def _stream(path: str):
            with open(path, "rb") as fh:
                for frame in read_frames(fh):
                    yield codec.decode(frame)

        streams = [_stream(p) for p in paths]
        merged = list(
            heapq.merge(*streams, key=lambda kv: _sort_token(kv[0]))
        )
        return merged
    finally:
        for path in paths:
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
