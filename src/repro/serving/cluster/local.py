"""In-process shard fleet: N real TCP shard servers in one process.

``repro serve --cluster N`` and the cluster test suites need a topology
without provisioning machines: a :class:`LocalCluster` boots N fully
independent :class:`~repro.serving.service.SkylineService` instances,
each behind its own :func:`~repro.serving.server.make_tcp_server` on a
loopback port, and the coordinator talks to them over real sockets — the
exact wire path a distributed deployment uses.

Chaos hook: :meth:`LocalCluster.kill` stops a shard's accept loop *and*
severs its established connections (a plain ``server_close`` would leave
the coordinator's pooled connections alive and the "crash" unobservable),
which is what the chaos leg of the differential suite relies on.
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Dict, List

from repro.serving.server import ServingTCPServer
from repro.serving.service import ServeConfig, SkylineService

__all__ = ["LocalCluster"]


class _TrackingTCPServer(ServingTCPServer):
    """A :class:`ServingTCPServer` that can sever live connections."""

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self._conn_lock = threading.Lock()
        self._conns: "set[socket.socket]" = set()

    def process_request(self, request: Any, client_address: Any) -> None:
        with self._conn_lock:
            self._conns.add(request)
        super().process_request(request, client_address)

    def close_connections(self) -> None:
        with self._conn_lock:
            conns = list(self._conns)
            self._conns.clear()
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass  # already torn down by the session thread
            try:
                conn.close()
            except OSError:
                pass  # double close is the expected teardown race


class LocalCluster:
    """N in-process shard servers on loopback ports."""

    def __init__(self, num_shards: int, *, config: ServeConfig | None = None):
        if num_shards < 1:
            raise ValueError(f"need at least one shard, got {num_shards}")
        self.services: List[SkylineService] = []
        self.servers: List[_TrackingTCPServer | None] = []
        self._threads: List[threading.Thread] = []
        self._dead: Dict[int, str] = {}
        for i in range(num_shards):
            service = SkylineService(config)
            server = _TrackingTCPServer(("127.0.0.1", 0), service)
            thread = threading.Thread(
                target=server.serve_forever,
                name=f"local-shard-{i}",
                daemon=True,
            )
            thread.start()
            self.services.append(service)
            self.servers.append(server)
            self._threads.append(thread)

    @property
    def num_shards(self) -> int:
        return len(self.services)

    def addresses(self) -> List[str]:
        """``host:port`` per live shard (killed shards keep their slot —
        the coordinator must see the address and fail to reach it)."""
        out: List[str] = []
        for i, server in enumerate(self.servers):
            if server is None:
                out.append(self._dead[i])
            else:
                host, port = server.server_address[:2]
                out.append(f"{host}:{port}")
        return out

    def kill(self, index: int) -> None:
        """Crash one shard: stop accepting and sever live connections."""
        server = self.servers[index]
        if server is None:
            return
        host, port = server.server_address[:2]
        self._dead[index] = f"{host}:{port}"
        self.servers[index] = None
        server.shutdown()
        server.close_connections()
        server.server_close()

    def close(self) -> None:
        for i in range(len(self.servers)):
            self.kill(i)

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
