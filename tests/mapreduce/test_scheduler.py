"""Tests for the slot scheduler behind the cluster timing model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.scheduler import schedule_tasks


class TestBasics:
    def test_single_slot_is_sequential(self):
        s = schedule_tasks([1.0, 2.0, 3.0], 1)
        assert s.makespan_s == pytest.approx(6.0)
        starts = sorted(t.start_s for t in s.tasks)
        assert starts == pytest.approx([0.0, 1.0, 3.0])

    def test_enough_slots_is_parallel(self):
        s = schedule_tasks([1.0, 2.0, 3.0], 3)
        assert s.makespan_s == pytest.approx(3.0)
        assert all(t.start_s == 0.0 for t in s.tasks)

    def test_two_slots_fifo(self):
        # FIFO: t0->slot0, t1->slot1, t2-> earliest free (slot0 at 3.0)
        s = schedule_tasks([3.0, 1.0, 2.0], 2, policy="fifo")
        assert s.makespan_s == pytest.approx(3.0 + 0.0) or s.makespan_s == pytest.approx(3.0)
        t2 = next(t for t in s.tasks if t.task_index == 2)
        assert t2.start_s == pytest.approx(1.0)  # slot1 frees first

    def test_empty(self):
        s = schedule_tasks([], 4)
        assert s.makespan_s == 0.0
        assert s.busy_s == 0.0
        assert s.utilisation == 1.0

    def test_overhead_added_per_task(self):
        s = schedule_tasks([1.0, 1.0], 2, per_task_overhead_s=0.5)
        assert s.makespan_s == pytest.approx(1.5)

    def test_zero_duration_tasks(self):
        s = schedule_tasks([0.0, 0.0, 0.0], 2)
        assert s.makespan_s == 0.0

    def test_lpt_beats_or_equals_fifo_on_adversarial_order(self):
        durations = [1, 1, 1, 1, 8]  # FIFO puts the 8 last -> makespan 9
        fifo = schedule_tasks(durations, 2, policy="fifo")
        lpt = schedule_tasks(durations, 2, policy="lpt")
        assert lpt.makespan_s <= fifo.makespan_s
        assert lpt.makespan_s == pytest.approx(8.0)

    def test_task_indices_preserved(self):
        s = schedule_tasks([2.0, 1.0], 1, policy="lpt")
        assert [t.task_index for t in s.tasks] == [0, 1]

    def test_slot_timeline_sorted(self):
        s = schedule_tasks([1.0, 1.0, 1.0, 1.0], 2)
        for slot in range(2):
            timeline = s.slot_timeline(slot)
            starts = [t.start_s for t in timeline]
            assert starts == sorted(starts)


class TestValidation:
    def test_zero_slots_rejected(self):
        with pytest.raises(ValueError):
            schedule_tasks([1.0], 0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            schedule_tasks([1.0, -0.1], 2)

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            schedule_tasks([1.0], 1, per_task_overhead_s=-1)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            schedule_tasks([1.0], 1, policy="random")  # type: ignore[arg-type]


class TestProperties:
    @given(
        durations=st.lists(st.floats(0, 100, allow_nan=False), max_size=30),
        slots=st.integers(1, 8),
        policy=st.sampled_from(["fifo", "lpt"]),
    )
    @settings(max_examples=80)
    def test_makespan_bounds(self, durations, slots, policy):
        s = schedule_tasks(durations, slots, policy=policy)
        total = sum(durations)
        longest = max(durations, default=0.0)
        # Classic bounds: max(longest, total/slots) <= makespan <= total
        assert s.makespan_s >= longest - 1e-9
        assert s.makespan_s >= total / slots - 1e-9
        assert s.makespan_s <= total + 1e-9

    @given(
        durations=st.lists(st.floats(0.1, 10, allow_nan=False), min_size=1, max_size=20),
        slots=st.integers(1, 6),
    )
    @settings(max_examples=60)
    def test_no_slot_overlap(self, durations, slots):
        s = schedule_tasks(durations, slots)
        for slot in range(slots):
            timeline = s.slot_timeline(slot)
            for a, b in zip(timeline, timeline[1:]):
                assert a.end_s <= b.start_s + 1e-9

    @given(
        durations=st.lists(st.floats(0.1, 10, allow_nan=False), min_size=1, max_size=20),
        slots=st.integers(1, 6),
    )
    @settings(max_examples=60)
    def test_all_tasks_scheduled_once(self, durations, slots):
        s = schedule_tasks(durations, slots)
        assert sorted(t.task_index for t in s.tasks) == list(range(len(durations)))
        for t in s.tasks:
            assert t.duration_s == pytest.approx(durations[t.task_index])

    @given(slots=st.integers(1, 5))
    def test_more_slots_never_hurts(self, slots):
        durations = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0]
        fewer = schedule_tasks(durations, slots)
        more = schedule_tasks(durations, slots + 1)
        # FIFO list scheduling is not strictly monotone in general, but with
        # this fixed workload the property holds and guards regressions.
        assert more.makespan_s <= fewer.makespan_s + 1e-9
