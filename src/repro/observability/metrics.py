"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the numeric half of the observability layer (spans are
the temporal half).  Three instrument types cover everything the skyline
pipeline reports:

* :class:`Counter` — monotone accumulator (dominance tests, spills).
* :class:`Gauge` — last-written value (partition-skew ratios).
* :class:`Histogram` — fixed-bucket distribution with quantile
  *estimates* by linear interpolation inside the winning bucket; cheap,
  mergeable, and accurate enough to spot task-duration skew.

It also absorbs the engine's Hadoop-style
:class:`~repro.mapreduce.counters.Counters`: every ``(group, name)``
entry lands as a metric counter named ``"group.name"``, so job counters
and first-class metrics end up in one snapshot.
"""

from __future__ import annotations

import bisect
import fnmatch
import math
import threading
from typing import Any, Callable, Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ThresholdWatch",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_DURATION_BUCKETS_S",
    "get_metrics",
    "set_metrics",
    "observe_partition_skew",
]

#: Default histogram buckets for task durations, in seconds: 100 µs … ~2 min
#: on a roughly-geometric grid (the engine's tasks span five decades between
#: a --quick unit test and a Fig. 5b paper-scale run).
DEFAULT_DURATION_BUCKETS_S: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    120.0,
)

#: Default buckets for count-valued histograms (records, dominance tests):
#: a 1–2–5 decade grid from 1 to 10⁹.
DEFAULT_COUNT_BUCKETS: tuple[float, ...] = tuple(
    m * 10**e for e in range(0, 9) for m in (1, 2, 5)
) + (10**9,)


class Counter:
    """A monotonically-growing integer/float accumulator."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount


class Gauge:
    """A point-in-time value: the last write wins.

    A gauge created by a :class:`MetricsRegistry` notifies the registry on
    every write (``_on_set``) so :class:`ThresholdWatch` hooks see each
    old→new transition; a standalone gauge has no observers.
    """

    __slots__ = ("name", "value", "_on_set")

    def __init__(
        self,
        name: str,
        on_set: Callable[[str, float, float], None] | None = None,
    ):
        self.name = name
        self.value: float = 0.0
        self._on_set = on_set

    def set(self, value: float) -> None:
        previous = self.value
        self.value = float(value)
        if self._on_set is not None:
            self._on_set(self.name, previous, self.value)


class Histogram:
    """Fixed-bucket histogram with interpolated quantile estimates.

    ``buckets`` are ascending upper bounds; observations above the last
    bound land in a +inf overflow bucket.  Quantiles interpolate linearly
    within the selected bucket (the overflow bucket reports its lower
    bound — a floor, clearly flagged by ``snapshot()['overflow']``).
    """

    __slots__ = ("name", "bounds", "counts", "overflow", "count", "total", "_min", "_max")

    def __init__(self, name: str, buckets: Sequence[float] | None = None):
        bounds = tuple(buckets if buckets is not None else DEFAULT_DURATION_BUCKETS_S)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly ascending, got {bounds}")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * len(bounds)
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        idx = bisect.bisect_left(self.bounds, value)
        if idx >= len(self.bounds):
            self.overflow += 1
        else:
            self.counts[idx] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 ≤ q ≤ 1) from the bucket counts."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        # Rank of the target observation (1-based, midpoint convention).
        target = q * self.count
        cumulative = 0
        lower = 0.0
        for bound, n in zip(self.bounds, self.counts):
            if n:
                if cumulative + n >= target:
                    # Interpolate within [lower, bound], clamped to the
                    # observed extremes so tiny samples don't extrapolate.
                    frac = (target - cumulative) / n
                    est = lower + frac * (bound - lower)
                    return float(min(max(est, self._min), self._max))
                cumulative += n
            lower = bound
        # Overflow bucket: its lower bound is the best (under)estimate.
        return float(max(self.bounds[-1], self._min))

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """Prometheus-style cumulative ``(upper_bound, count)`` pairs.

        The final pair is the ``+inf`` overflow bucket, whose count equals
        the total observation count (the exposition-format invariant).
        """
        pairs: List[Tuple[float, int]] = []
        cumulative = 0
        for bound, n in zip(self.bounds, self.counts):
            cumulative += n
            pairs.append((bound, cumulative))
        pairs.append((math.inf, cumulative + self.overflow))
        return pairs

    def snapshot(self) -> Dict[str, Any]:
        # min/max default to ±inf before the first observation (and a
        # caller may observe an infinity outright); strict JSON has no
        # Infinity token, so everything non-finite flattens to 0.0 here —
        # `count` disambiguates the empty case.
        return {
            "count": self.count,
            "sum": _json_safe(self.total),
            "mean": _json_safe(self.mean),
            "min": _json_safe(self._min) if self.count else 0.0,
            "max": _json_safe(self._max) if self.count else 0.0,
            "p50": _json_safe(self.quantile(0.5)),
            "p90": _json_safe(self.quantile(0.9)),
            "p99": _json_safe(self.quantile(0.99)),
            "overflow": self.overflow,
        }


def _json_safe(value: float) -> float:
    """A strictly JSON-representable float (no inf/-inf/nan)."""
    return float(value) if math.isfinite(value) else 0.0


class ThresholdWatch:
    """Edge-triggered hook on gauges whose name matches a glob pattern.

    The watch fires its callback **exactly once per crossing**: when a
    matching gauge's value moves from the armed side of ``threshold`` to
    the other side (``direction="above"`` fires on ``value >= threshold``,
    ``"below"`` on ``value <= threshold``).  While the gauge stays beyond
    the bound the watch holds fire; moving back across re-arms it.  This is
    the groundwork the skew-aware re-balancer consumes: register a watch on
    ``partition.skew.*`` and react only to fresh excursions, not to every
    ``set()`` while a dataset stays skewed.

    Callbacks run synchronously on the thread that set the gauge, with the
    signature ``callback(gauge_name, value, watch)``; keep them cheap.
    State is tracked per gauge name, so one watch can monitor a family of
    gauges independently.
    """

    def __init__(
        self,
        pattern: str,
        threshold: float,
        callback: Callable[[str, float, "ThresholdWatch"], None],
        *,
        direction: str = "above",
    ):
        if direction not in ("above", "below"):
            raise ValueError(f"direction must be 'above' or 'below', got {direction!r}")
        self.pattern = pattern
        self.threshold = float(threshold)
        self.callback = callback
        self.direction = direction
        self.fired = 0
        self._lock = threading.RLock()
        self._beyond: Dict[str, bool] = {}

    def matches(self, name: str) -> bool:
        return fnmatch.fnmatchcase(name, self.pattern)

    def _is_beyond(self, value: float) -> bool:
        if self.direction == "above":
            return value >= self.threshold
        return value <= self.threshold

    def observe(self, name: str, value: float) -> None:
        """Feed one gauge write; fires the callback on a fresh crossing."""
        if not self.matches(name):
            return
        with self._lock:
            beyond = self._is_beyond(value)
            was_beyond = self._beyond.get(name, False)
            self._beyond[name] = beyond
            crossed = beyond and not was_beyond
            if crossed:
                self.fired += 1
        if crossed:
            self.callback(name, value, self)


class MetricsRegistry:
    """Named instruments, created on first use, snapshotted as one dict.

    Instrument *creation* is thread-safe: the instrument maps mutate only
    under ``self._lock`` (the engine's lock-discipline contract, enforced
    by ``repro lint``), with a lock-free fast path for the common
    already-created case.  Mutating a returned instrument is the caller's
    concern — counters merged via :meth:`absorb_counters` come from
    per-task :class:`~repro.mapreduce.counters.Counters` and need no
    synchronization; histogram observations from thread-backend task code
    are best-effort.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._watches: List[ThresholdWatch] = []
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            with self._lock:
                inst = self._counters.get(name)
                if inst is None:
                    inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            with self._lock:
                inst = self._gauges.get(name)
                if inst is None:
                    inst = self._gauges[name] = Gauge(name, self._gauge_changed)
        return inst

    def _gauge_changed(self, name: str, old: float, new: float) -> None:
        with self._lock:
            watches = list(self._watches)
        for watch in watches:
            watch.observe(name, new)

    def watch(
        self,
        pattern: str,
        threshold: float,
        callback: Callable[[str, float, ThresholdWatch], None],
        *,
        direction: str = "above",
    ) -> ThresholdWatch:
        """Register an edge-triggered :class:`ThresholdWatch` on gauges
        matching the glob ``pattern`` (e.g. ``"partition.skew.*"``)."""
        watch = ThresholdWatch(pattern, threshold, callback, direction=direction)
        with self._lock:
            self._watches.append(watch)
        # Evaluate current values so a gauge already beyond the bound when
        # the watch arrives counts as its first crossing.
        for gauge in list(self._gauges.values()):
            watch.observe(gauge.name, gauge.value)
        return watch

    def unwatch(self, watch: ThresholdWatch) -> None:
        with self._lock:
            if watch in self._watches:
                self._watches.remove(watch)

    def histogram(self, name: str, buckets: Sequence[float] | None = None) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            with self._lock:
                inst = self._histograms.get(name)
                if inst is None:
                    inst = self._histograms[name] = Histogram(name, buckets)
        return inst

    def absorb_counters(self, counters: Iterable[tuple], prefix: str = "") -> None:
        """Fold a Hadoop-style counter set into this registry.

        Accepts anything iterable as ``(group, name, value)`` triples —
        in particular :class:`repro.mapreduce.counters.Counters` — and
        accumulates each into the metric counter ``"[prefix.]group.name"``.
        """
        for group, name, value in counters:
            key = f"{prefix}.{group}.{name}" if prefix else f"{group}.{name}"
            if value >= 0:
                self.counter(key).inc(value)
            else:  # negative job counters exist (they're allowed); gauge them
                self.gauge(key).set(value)

    def export_view(
        self,
    ) -> Tuple[Dict[str, Counter], Dict[str, Gauge], Dict[str, Histogram]]:
        """Shallow copies of the instrument maps, taken under the lock.

        The exposition renderer (:mod:`repro.observability.export`) needs
        the live :class:`Histogram` objects for their bucket detail, which
        :meth:`snapshot` deliberately flattens away.
        """
        with self._lock:
            return dict(self._counters), dict(self._gauges), dict(self._histograms)

    def snapshot(self) -> Dict[str, Any]:
        """Deep-copy JSON-ready view of every instrument."""
        with self._lock:
            return {
                "counters": {
                    n: c.value for n, c in sorted(self._counters.items())
                },
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: h.snapshot() for n, h in sorted(self._histograms.items())
                },
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


_default_registry = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide registry fed by all engine hooks."""
    return _default_registry


def set_metrics(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install (or, with ``None``, reset to a fresh) process-wide registry."""
    global _default_registry
    _default_registry = registry if registry is not None else MetricsRegistry()
    return _default_registry


def observe_partition_skew(
    registry: MetricsRegistry,
    sizes: Sequence[int],
    *,
    prefix: str = "partition",
) -> Dict[str, float]:
    """Record partition-skew gauges from per-partition record counts.

    Gauges (under ``prefix.``): ``records_max``, ``records_min``,
    ``max_min_ratio`` (max/min over non-empty floor of 1 — the paper's
    skew headline number), and ``imbalance`` (max/mean, the load-balance
    metric of :func:`repro.core.partitioning.load_imbalance`).

    Returns the gauge values so callers can attach them to summaries.
    """
    sizes = [int(s) for s in sizes]
    if not sizes:
        values = {"records_max": 0.0, "records_min": 0.0, "max_min_ratio": 0.0, "imbalance": 0.0}
    else:
        largest = max(sizes)
        smallest = min(sizes)
        mean = sum(sizes) / len(sizes)
        values = {
            "records_max": float(largest),
            "records_min": float(smallest),
            "max_min_ratio": float(largest / max(smallest, 1)),
            "imbalance": float(largest / mean) if mean > 0 else 0.0,
        }
    for name, value in values.items():
        registry.gauge(f"{prefix}.{name}").set(value)
    return values
