"""Data-space partitioning schemes for MapReduce skyline processing.

One class per scheme from the paper plus a random baseline:

* :class:`DimensionalPartitioner` — MR-Dim's 1-D slabs (§III-A)
* :class:`GridPartitioner` — MR-Grid's equal-width grid with dominated-cell
  pruning (§III-B)
* :class:`AngularPartitioner` — MR-Angle's hyperspherical sectors (§III-C,
  the paper's contribution)
* :class:`RandomPartitioner` — hash-based baseline for ablations

All share the :class:`SpacePartitioner` fit/assign protocol and are
picklable after fitting, so they ride to map tasks in the job parameters.
"""

from repro.core.partitioning.angular import AngularPartitioner
from repro.core.partitioning.base import (
    NotFittedError,
    SpacePartitioner,
    load_imbalance,
    partition_sizes,
)
from repro.core.partitioning.dimensional import DimensionalPartitioner
from repro.core.partitioning.grid import GridPartitioner, balanced_axis_counts
from repro.core.partitioning.random_part import RandomPartitioner

__all__ = [
    "AngularPartitioner",
    "DimensionalPartitioner",
    "GridPartitioner",
    "NotFittedError",
    "RandomPartitioner",
    "SpacePartitioner",
    "balanced_axis_counts",
    "load_imbalance",
    "make_partitioner",
    "partition_sizes",
]

_SCHEMES = {
    "dim": DimensionalPartitioner,
    "grid": GridPartitioner,
    "angle": AngularPartitioner,
    "random": RandomPartitioner,
}


def make_partitioner(scheme: str, num_partitions: int, **kwargs) -> SpacePartitioner:
    """Factory: ``make_partitioner("angle", 8)`` → fitted-ready partitioner.

    ``scheme`` is one of ``"dim"``, ``"grid"``, ``"angle"``, ``"random"``.
    """
    try:
        cls = _SCHEMES[scheme]
    except KeyError:
        raise ValueError(
            f"unknown scheme {scheme!r}; choose from {sorted(_SCHEMES)}"
        ) from None
    return cls(num_partitions, **kwargs)
