"""Pluggable task executors for the MapReduce engine.

Execution policy — *where* a task body runs — is isolated here behind the
:class:`Executor` protocol, so the single :class:`~repro.mapreduce.runner.Runner`
handles every orchestration concern (splits, retries, streaming shuffle,
tracing) exactly once, for all backends:

* :class:`SerialExecutor` — inline, deterministic, clean per-task timings
  (the measurement path feeding the Figure-6 cluster simulator),
* :class:`ThreadExecutor` — shared-memory concurrency; wins when the task
  kernels release the GIL (NumPy dominance tests do),
* :class:`ProcessExecutor` — real parallelism over pickled payloads, the
  closest analogue to Hadoop task slots.

Select one by name with :func:`make_executor`; the ``REPRO_EXECUTOR``
environment variable overrides the default (``serial``) — this is how the
CI executor matrix runs the whole test suite under each backend without
touching test code.
"""

from __future__ import annotations

import os
from typing import Tuple

from repro.mapreduce.errors import JobConfigError
from repro.mapreduce.executors.base import Executor
from repro.mapreduce.executors.processes import ProcessExecutor
from repro.mapreduce.executors.serial import SerialExecutor
from repro.mapreduce.executors.threads import ThreadExecutor

__all__ = [
    "EXECUTOR_NAMES",
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "default_executor_name",
    "make_executor",
]

#: Recognised executor names, in documentation order.
EXECUTOR_NAMES: Tuple[str, ...] = ("serial", "threads", "processes")

#: Environment variable naming the default executor.
ENV_EXECUTOR = "REPRO_EXECUTOR"


def default_executor_name() -> str:
    """The executor used when none is requested: ``$REPRO_EXECUTOR`` or serial."""
    return os.environ.get(ENV_EXECUTOR, "").strip().lower() or "serial"


def make_executor(
    name: str | Executor | None = None, *, num_workers: int | None = None
) -> Executor:
    """Build an executor from a name (or pass an instance through).

    ``None`` resolves via :func:`default_executor_name`, so exported
    ``REPRO_EXECUTOR=processes`` flips every default-configured runner in
    the process.  ``num_workers`` sizes the pool backends and is ignored
    by the serial executor.
    """
    if isinstance(name, Executor):
        return name
    resolved = (name or default_executor_name()).strip().lower()
    if resolved == "serial":
        return SerialExecutor()
    if resolved == "threads":
        return ThreadExecutor(num_workers)
    if resolved == "processes":
        return ProcessExecutor(num_workers)
    raise JobConfigError(
        f"unknown executor {name!r}; expected one of {', '.join(EXECUTOR_NAMES)}"
    )
