"""A from-scratch MapReduce execution engine (Hadoop-like substrate).

The paper runs its three skyline algorithms on Hadoop 0.20.2.  This package
is the substitute substrate: a small but complete MapReduce engine with

* input formats and input splits (:mod:`repro.mapreduce.inputs`),
* mapper / combiner / partitioner / reducer task pipeline
  (:mod:`repro.mapreduce.tasks`),
* a sort-based shuffle, batch or streaming (:mod:`repro.mapreduce.shuffle`),
* one runner over pluggable serial / thread-pool / process-pool executors
  (:mod:`repro.mapreduce.runner`, :mod:`repro.mapreduce.executors`),
* per-task timing and counters (:mod:`repro.mapreduce.counters`,
  :class:`repro.mapreduce.types.TaskStats`),
* an in-memory block filesystem standing in for HDFS
  (:mod:`repro.mapreduce.fs`), and
* a deterministic cluster timing simulator used for the server-count
  sweeps of the paper's Figure 6 (:mod:`repro.mapreduce.cluster`,
  :mod:`repro.mapreduce.simulation`).

Quick example::

    from repro.mapreduce import Job, JobConf, Mapper, Reducer, run_job

    class TokenMapper(Mapper):
        def map(self, key, value, ctx):
            for word in value.split():
                ctx.emit(word, 1)

    class SumReducer(Reducer):
        def reduce(self, key, values, ctx):
            ctx.emit(key, sum(values))

    job = Job(name="wordcount", mapper=TokenMapper, reducer=SumReducer,
              conf=JobConf(num_reducers=2))
    result = run_job(job, records=[(None, "a b a"), (None, "b b c")])
    dict(result.output_pairs())   # {'a': 2, 'b': 3, 'c': 1}
"""

from repro.mapreduce.counters import Counters
from repro.mapreduce.errors import (
    EngineError,
    JobConfigError,
    JobFailedError,
    PartitionLostError,
    TaskError,
    TaskTimeoutError,
)
from repro.mapreduce.executors import (
    EXECUTOR_NAMES,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    default_executor_name,
    make_executor,
)
from repro.mapreduce.faults import (
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedFault,
    get_default_fault_plan,
    set_default_fault_plan,
)
from repro.mapreduce.inputs import (
    InputFormat,
    InputSplit,
    SequenceInputFormat,
    TextInputFormat,
    make_splits,
)
from repro.mapreduce.job import Job, JobChain, JobConf, JobResult
from repro.mapreduce.outputs import (
    SequenceOutputFormat,
    TextOutputFormat,
    read_sequence_output,
    read_text_output,
)
from repro.mapreduce.partitioner import (
    HashPartitioner,
    KeyFieldPartitioner,
    Partitioner,
    RangePartitioner,
    SingleReducerPartitioner,
)
from repro.mapreduce.runner import (
    MultiprocessRunner,
    Runner,
    SerialRunner,
    run_job,
)
from repro.mapreduce.tasks import Combiner, MapContext, Mapper, ReduceContext, Reducer
from repro.mapreduce.types import KeyValue, RetryPolicy, TaskKind, TaskStats

__all__ = [
    "Combiner",
    "Counters",
    "EXECUTOR_NAMES",
    "EngineError",
    "Executor",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "HashPartitioner",
    "InjectedFault",
    "InputFormat",
    "InputSplit",
    "Job",
    "JobChain",
    "JobConf",
    "JobConfigError",
    "JobFailedError",
    "JobResult",
    "KeyFieldPartitioner",
    "KeyValue",
    "MapContext",
    "Mapper",
    "MultiprocessRunner",
    "Partitioner",
    "PartitionLostError",
    "ProcessExecutor",
    "RangePartitioner",
    "ReduceContext",
    "Reducer",
    "RetryPolicy",
    "Runner",
    "SequenceInputFormat",
    "SequenceOutputFormat",
    "SerialExecutor",
    "SerialRunner",
    "SingleReducerPartitioner",
    "ThreadExecutor",
    "TaskError",
    "TaskKind",
    "TaskStats",
    "TaskTimeoutError",
    "TextInputFormat",
    "TextOutputFormat",
    "default_executor_name",
    "get_default_fault_plan",
    "make_executor",
    "make_splits",
    "read_sequence_output",
    "read_text_output",
    "run_job",
    "set_default_fault_plan",
]
