"""Tests for input formats and splits."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.errors import JobConfigError
from repro.mapreduce.fs import BlockFileSystem
from repro.mapreduce.inputs import (
    SequenceInputFormat,
    TextInputFormat,
    make_splits,
)


class TestSequenceInputFormat:
    def test_even_split(self):
        records = [(i, i) for i in range(10)]
        splits = SequenceInputFormat(records, 5).splits()
        assert [len(s) for s in splits] == [2, 2, 2, 2, 2]

    def test_uneven_split_sizes_differ_by_at_most_one(self):
        records = [(i, i) for i in range(11)]
        splits = SequenceInputFormat(records, 4).splits()
        sizes = [len(s) for s in splits]
        assert sum(sizes) == 11
        assert max(sizes) - min(sizes) <= 1

    def test_more_splits_than_records(self):
        records = [(0, "a"), (1, "b")]
        splits = SequenceInputFormat(records, 10).splits()
        assert len(splits) == 2  # never emits empty splits

    def test_empty_records_single_empty_split(self):
        splits = SequenceInputFormat([], 4).splits()
        assert len(splits) == 1
        assert len(splits[0]) == 0

    def test_order_preserved(self):
        records = [(i, str(i)) for i in range(7)]
        splits = SequenceInputFormat(records, 3).splits()
        flattened = [r for s in splits for r in s]
        assert flattened == records

    def test_split_indices_sequential(self):
        splits = make_splits([(i, i) for i in range(6)], 3)
        assert [s.index for s in splits] == [0, 1, 2]

    def test_invalid_num_splits(self):
        with pytest.raises(JobConfigError):
            SequenceInputFormat([], 0)

    @given(
        n=st.integers(0, 200),
        k=st.integers(1, 20),
    )
    @settings(max_examples=50)
    def test_property_partition_of_records(self, n, k):
        records = [(i, i * 2) for i in range(n)]
        splits = SequenceInputFormat(records, k).splits()
        flattened = [r for s in splits for r in s]
        assert flattened == records
        sizes = [len(s) for s in splits]
        if n:
            assert max(sizes) - min(sizes) <= 1
            assert len(splits) == min(k, n)


class TestTextInputFormat:
    def _fs_with(self, text: str, block_size: int = 16) -> BlockFileSystem:
        fs = BlockFileSystem(block_size=block_size)
        fs.write_text("/data.txt", text)
        return fs

    def test_single_block(self):
        fs = self._fs_with("a\nb\nc", block_size=1024)
        splits = TextInputFormat(fs, "/data.txt").splits()
        assert len(splits) == 1
        assert [v for _, v in splits[0]] == ["a", "b", "c"]

    def test_lines_crossing_blocks_assigned_once(self):
        # With block_size=8 the second line straddles the block boundary.
        text = "aaaa\nbbbbbbbb\ncc\ndddd"
        fs = self._fs_with(text, block_size=8)
        splits = TextInputFormat(fs, "/data.txt").splits()
        lines = [v for s in splits for _, v in s]
        assert lines == ["aaaa", "bbbbbbbb", "cc", "dddd"]

    def test_offsets_are_byte_positions(self):
        text = "ab\ncdef\ng"
        fs = self._fs_with(text, block_size=1024)
        splits = TextInputFormat(fs, "/data.txt").splits()
        offsets = [k for s in splits for k, _ in s]
        assert offsets == [0, 3, 8]

    @pytest.mark.parametrize("block_size", [1, 2, 3, 5, 7, 16, 64])
    def test_block_size_never_changes_content(self, block_size):
        text = "\n".join(f"line-{i}" * (i % 3 + 1) for i in range(20))
        fs = self._fs_with(text, block_size=block_size)
        splits = TextInputFormat(fs, "/data.txt").splits()
        lines = [v for s in splits for _, v in s]
        assert lines == text.split("\n")

    def test_trailing_newline(self):
        fs = self._fs_with("a\nb\n", block_size=4)
        splits = TextInputFormat(fs, "/data.txt").splits()
        lines = [v for s in splits for _, v in s]
        # Hadoop semantics: a trailing newline does not create an empty record.
        assert lines == ["a", "b"]

    def test_lone_newline_is_one_empty_record(self):
        fs = self._fs_with("\n", block_size=4)
        splits = TextInputFormat(fs, "/data.txt").splits()
        assert [v for s in splits for _, v in s] == [""]

    def test_empty_file(self):
        fs = self._fs_with("", block_size=8)
        splits = TextInputFormat(fs, "/data.txt").splits()
        assert [len(s) for s in splits] == [0]

    @given(
        lines=st.lists(
            st.text(
                alphabet=st.characters(codec="ascii", exclude_characters="\n\r"),
                max_size=12,
            ),
            max_size=15,
        ),
        block_size=st.integers(1, 32),
    )
    @settings(max_examples=60)
    def test_property_all_lines_exactly_once(self, lines, block_size):
        text = "\n".join(lines)
        fs = BlockFileSystem(block_size=block_size)
        fs.write_text("/f", text)
        splits = TextInputFormat(fs, "/f").splits()
        got = [v for s in splits for _, v in s]
        expected = text.split("\n") if text else []
        if expected and text.endswith("\n"):
            expected = expected[:-1]  # Hadoop: no empty record after final \n
        assert got == expected
