"""Engine behaviour: rule selection, baselines, parse failures, exit codes."""

import pytest

from repro.analysis import (
    BaselineError,
    all_rule_ids,
    load_baseline,
    run_lint,
    write_baseline,
)

from tests.analysis.conftest import fixture_path


class TestRuleSelection:
    def test_all_four_packs_are_registered(self):
        assert {
            "udf-purity",
            "pickle-safety",
            "lock-discipline",
            "exception-hygiene",
        } <= set(all_rule_ids())

    def test_rules_filter_runs_only_named_rules(self):
        result = run_lint(
            [fixture_path("except_swallow.py")], rule_ids=["udf-purity"]
        )
        assert result.rule_ids == ["udf-purity"]
        assert result.findings == []  # the swallows are exception-hygiene

    def test_unknown_rule_id_raises(self):
        with pytest.raises(ValueError, match="no-such-rule"):
            run_lint(
                [fixture_path("except_ok.py")], rule_ids=["no-such-rule"]
            )


class TestBaseline:
    def test_round_trip_filters_recorded_findings(self, tmp_path):
        baseline = str(tmp_path / "baseline.json")
        first = run_lint(
            [fixture_path("except_swallow.py")],
            rule_ids=["exception-hygiene"],
        )
        assert first.findings
        count = write_baseline(baseline, first.findings)
        assert count == len({f.fingerprint() for f in first.findings})

        second = run_lint(
            [fixture_path("except_swallow.py")],
            rule_ids=["exception-hygiene"],
            baseline_path=baseline,
        )
        assert second.findings == []
        assert second.baselined == len(first.findings)
        assert second.exit_code == 0

    def test_baseline_survives_line_shifts(self, tmp_path):
        """Fingerprints are line-free: prepending a comment changes nothing."""
        original = open(
            fixture_path("except_swallow.py"), encoding="utf-8"
        ).read()
        v1 = tmp_path / "mod.py"
        v1.write_text(original, encoding="utf-8")
        baseline = str(tmp_path / "baseline.json")
        first = run_lint([str(v1)], rule_ids=["exception-hygiene"])
        write_baseline(baseline, first.findings)

        v1.write_text("# shifted\n# shifted\n" + original, encoding="utf-8")
        second = run_lint(
            [str(v1)], rule_ids=["exception-hygiene"], baseline_path=baseline
        )
        assert second.findings == []
        assert second.baselined == len(first.findings)

    def test_missing_baseline_raises(self, tmp_path):
        with pytest.raises(BaselineError):
            load_baseline(str(tmp_path / "nope.json"))

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]", encoding="utf-8")
        with pytest.raises(BaselineError):
            load_baseline(str(bad))


class TestParseFailures:
    def test_unparsable_file_becomes_a_finding(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def oops(:\n", encoding="utf-8")
        result = run_lint([str(broken)])
        assert [f.rule_id for f in result.findings] == ["parse-error"]
        assert result.exit_code == 1


class TestExitCodes:
    def test_clean_run_exits_zero(self):
        result = run_lint([fixture_path("udf_pure.py")])
        assert result.exit_code == 0
        assert result.summary()["errors"] == 0

    def test_findings_exit_one(self):
        result = run_lint(
            [fixture_path("lock_unsafe.py")], rule_ids=["lock-discipline"]
        )
        assert result.exit_code == 1
        assert result.summary()["findings"] == len(result.findings)
