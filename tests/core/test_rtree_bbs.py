"""Tests for the STR R-tree and the BBS skyline algorithm."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.bbs import bbs_skyline, bbs_skyline_progressive
from repro.core.dominance import DominanceCounter
from repro.core.rtree import RTree
from repro.core.skyline import skyline_numpy

clouds = arrays(
    np.float64,
    st.tuples(st.integers(1, 120), st.integers(1, 5)),
    elements=st.floats(0, 50, allow_nan=False),
)


class TestRTreeStructure:
    def test_small_build(self):
        pts = np.random.default_rng(0).random((10, 3))
        tree = RTree(pts, leaf_capacity=4)
        tree.validate()
        assert len(tree) == 10

    def test_single_point(self):
        tree = RTree(np.array([[1.0, 2.0]]))
        tree.validate()
        assert tree.root.is_leaf
        assert tree.height == 1

    def test_empty(self):
        tree = RTree(np.empty((0, 3)))
        tree.validate()
        assert len(tree) == 0
        assert tree.root.is_leaf

    def test_height_grows_with_size(self):
        rng = np.random.default_rng(1)
        small = RTree(rng.random((10, 2)), leaf_capacity=4)
        large = RTree(rng.random((1000, 2)), leaf_capacity=4)
        assert large.height > small.height

    def test_leaf_capacity_respected(self):
        pts = np.random.default_rng(2).random((200, 3))
        tree = RTree(pts, leaf_capacity=8)

        def check(node):
            if node.is_leaf:
                assert node.point_indices.size <= 8
            else:
                for c in node.children:
                    check(c)

        check(tree.root)

    def test_invalid_params(self):
        pts = np.ones((3, 2))
        with pytest.raises(ValueError):
            RTree(pts, leaf_capacity=0)
        with pytest.raises(ValueError):
            RTree(pts, fanout=1)

    def test_mindist_is_lower_bound(self):
        pts = np.random.default_rng(3).random((300, 3))
        tree = RTree(pts, leaf_capacity=16)

        def check(node):
            if node.is_leaf:
                sums = pts[node.point_indices].sum(axis=1)
                assert node.mindist_key() <= sums.min() + 1e-9
            else:
                for c in node.children:
                    assert node.mindist_key() <= c.mindist_key() + 1e-9
                    check(c)

        check(tree.root)

    @given(clouds, st.integers(2, 16))
    @settings(max_examples=40, deadline=None)
    def test_property_structure_valid(self, pts, capacity):
        tree = RTree(pts, leaf_capacity=capacity)
        tree.validate()


class TestBBSCorrectness:
    def test_matches_reference(self):
        pts = np.random.default_rng(4).random((2000, 3))
        assert np.array_equal(bbs_skyline(pts).indices, skyline_numpy(pts))

    def test_duplicates(self):
        pts = np.vstack([np.ones((50, 2)), [[0.5, 2.0]]])
        result = bbs_skyline(pts)
        assert np.array_equal(result.indices, skyline_numpy(pts))

    def test_quantized_ties(self):
        pts = np.round(np.random.default_rng(5).random((1500, 4)), 1)
        assert np.array_equal(bbs_skyline(pts).indices, skyline_numpy(pts))

    def test_single_point(self):
        assert bbs_skyline(np.array([[3.0, 4.0]])).indices.tolist() == [0]

    def test_reused_tree(self):
        pts = np.random.default_rng(6).random((500, 3))
        tree = RTree(pts)
        a = bbs_skyline(pts, tree=tree)
        b = bbs_skyline(pts)
        assert np.array_equal(a.indices, b.indices)

    def test_foreign_tree_rejected(self):
        pts = np.random.default_rng(7).random((50, 2))
        other = RTree(np.random.default_rng(8).random((50, 2)))
        with pytest.raises(ValueError, match="different points"):
            bbs_skyline(pts, tree=other)

    def test_float_tie_with_dominance(self):
        # Same adversarial pair as the SFS regression: sums round equal.
        pts = np.array([[1e-99, 1.0], [0.0, 1.0]])
        assert bbs_skyline(pts).indices.tolist() == [1]

    @given(clouds)
    @settings(max_examples=60, deadline=None)
    def test_property_matches_bruteforce(self, pts):
        assert np.array_equal(bbs_skyline(pts).indices, skyline_numpy(pts))

    @given(clouds, st.integers(1, 16))
    @settings(max_examples=40, deadline=None)
    def test_property_leaf_capacity_invariant(self, pts, capacity):
        assert np.array_equal(
            bbs_skyline(pts, leaf_capacity=capacity).indices, skyline_numpy(pts)
        )


class TestProgressive:
    def test_same_set_as_batch(self):
        pts = np.random.default_rng(20).random((1000, 3))
        prog = sorted(bbs_skyline_progressive(pts))
        assert prog == bbs_skyline(pts).indices.tolist()

    def test_mindist_order(self):
        pts = np.random.default_rng(21).random((500, 3))
        emitted = list(bbs_skyline_progressive(pts))
        sums = pts[emitted].sum(axis=1)
        assert (np.diff(sums) >= -1e-12).all()

    def test_early_stop_prefix(self):
        import itertools

        pts = np.random.default_rng(22).random((2000, 4))
        full = list(bbs_skyline_progressive(pts))
        first = list(itertools.islice(bbs_skyline_progressive(pts), 5))
        assert first == full[:5]

    def test_empty(self):
        assert list(bbs_skyline_progressive(np.empty((0, 2)))) == []

    @given(clouds)
    @settings(max_examples=30, deadline=None)
    def test_property_matches_batch(self, pts):
        assert sorted(bbs_skyline_progressive(pts)) ==             bbs_skyline(pts).indices.tolist()


class TestBBSEfficiency:
    def test_prunes_subtrees_on_correlated_data(self):
        """On correlated data most of the tree is dominated; BBS must touch
        far fewer entries than the brute-force bound."""
        from repro.data.generators import correlated

        pts = correlated(5_000, 3, seed=9)
        result = bbs_skyline(pts)
        assert result.entries_pruned > 0
        assert result.dominance_tests < 5_000 * max(result.indices.size, 1)

    def test_fewer_tests_than_bnl_low_dim(self):
        from repro.core.bnl import bnl_skyline

        pts = np.random.default_rng(10).random((5_000, 2))
        assert bbs_skyline(pts).dominance_tests < bnl_skyline(pts).dominance_tests

    def test_counter(self):
        counter = DominanceCounter()
        bbs_skyline(np.random.default_rng(11).random((200, 3)), counter=counter)
        assert counter.by_stage.get("bbs", 0) > 0

    def test_stats_consistency(self):
        pts = np.random.default_rng(12).random((1000, 3))
        result = bbs_skyline(pts)
        assert result.nodes_expanded >= 1
        assert result.entries_pruned >= 0
