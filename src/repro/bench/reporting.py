"""Tabular reporting: the harness prints the same rows/series the paper's
figures plot.

A :class:`Table` is an ordered list of column names plus rows; it renders as
aligned ASCII (for the CLI), as Markdown (for EXPERIMENTS.md), and as CSV.
Numeric cells are formatted with a per-table precision.  Non-tabular
sidecar data — notably per-phase trace summaries from a traced benchmark
run — rides along in :attr:`Table.meta` and is emitted by
:meth:`Table.to_json` (the machine-readable export).
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = ["Table"]


def _format_cell(value: Any, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


@dataclass(slots=True)
class Table:
    """A titled grid of results."""

    title: str
    columns: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    precision: int = 3
    notes: List[str] = field(default_factory=list)
    #: Sidecar data that doesn't fit the grid (e.g. ``trace_summaries``:
    #: per-row phase breakdowns attached by the bench layer under tracing).
    meta: Dict[str, Any] = field(default_factory=dict)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells for {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> List[Any]:
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    # -- rendering ---------------------------------------------------------------

    def render(self) -> str:
        """Aligned ASCII table."""
        cells = [
            [_format_cell(v, self.precision) for v in row] for row in self.rows
        ]
        widths = [
            max(len(self.columns[j]), *(len(r[j]) for r in cells), 1)
            if cells
            else len(self.columns[j])
            for j in range(len(self.columns))
        ]
        out = io.StringIO()
        out.write(f"== {self.title} ==\n")
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        out.write(header.rstrip() + "\n")
        out.write("  ".join("-" * w for w in widths).rstrip() + "\n")
        for row in cells:
            out.write(
                "  ".join(c.rjust(w) for c, w in zip(row, widths)).rstrip() + "\n"
            )
        for note in self.notes:
            out.write(f"note: {note}\n")
        return out.getvalue()

    def to_markdown(self) -> str:
        out = io.StringIO()
        out.write(f"**{self.title}**\n\n")
        out.write("| " + " | ".join(self.columns) + " |\n")
        out.write("|" + "|".join("---" for _ in self.columns) + "|\n")
        for row in self.rows:
            out.write(
                "| "
                + " | ".join(_format_cell(v, self.precision) for v in row)
                + " |\n"
            )
        for note in self.notes:
            out.write(f"\n_{note}_\n")
        return out.getvalue()

    def to_csv(self) -> str:
        out = io.StringIO()
        out.write(",".join(self.columns) + "\n")
        for row in self.rows:
            out.write(",".join(_format_cell(v, self.precision) for v in row) + "\n")
        return out.getvalue()

    def to_json(self) -> str:
        """Machine-readable export: title, columns, rows, notes, and meta."""
        return json.dumps(
            {
                "title": self.title,
                "columns": list(self.columns),
                "rows": [list(row) for row in self.rows],
                "notes": list(self.notes),
                "meta": self.meta,
            },
            default=str,
            indent=2,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
