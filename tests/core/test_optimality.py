"""Tests for the §VI local-skyline-optimality metric (Eq. 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mr_skyline import run_mr_skyline
from repro.core.optimality import (
    local_skyline_optimality,
    optimality_of_result,
    per_partition_optimality,
)


class TestPerPartition:
    def test_simple_ratios(self):
        locals_ = {0: np.array([1, 2, 3, 4]), 1: np.array([5, 6])}
        global_ = np.array([1, 2, 5])
        ratios = per_partition_optimality(locals_, global_)
        assert ratios[0] == pytest.approx(0.5)
        assert ratios[1] == pytest.approx(0.5)

    def test_empty_partition_excluded(self):
        locals_ = {0: np.array([1]), 1: np.array([], dtype=int)}
        ratios = per_partition_optimality(locals_, np.array([1]))
        assert 1 not in ratios
        assert ratios[0] == 1.0

    def test_sequence_input(self):
        ratios = per_partition_optimality(
            [np.array([0, 1]), np.array([2])], np.array([0, 2])
        )
        assert ratios == {0: 0.5, 1: 1.0}


class TestEquation5:
    def test_mean_of_ratios(self):
        locals_ = {0: np.array([1, 2]), 1: np.array([3, 4, 5, 6])}
        global_ = np.array([1, 2, 3])
        report = local_skyline_optimality(locals_, global_)
        assert report.optimality == pytest.approx((1.0 + 0.25) / 2)
        assert report.partitions_counted == 2
        assert report.partitions_empty == 0

    def test_all_local_globally_optimal(self):
        locals_ = {0: np.array([1]), 1: np.array([2])}
        report = local_skyline_optimality(locals_, np.array([1, 2]))
        assert report.optimality == 1.0

    def test_disjoint_gives_zero(self):
        report = local_skyline_optimality({0: np.array([9])}, np.array([1]))
        assert report.optimality == 0.0

    def test_no_partitions(self):
        report = local_skyline_optimality({}, np.array([1]))
        assert report.optimality == 0.0
        assert report.partitions_counted == 0

    def test_float_protocol(self):
        report = local_skyline_optimality({0: np.array([1])}, np.array([1]))
        assert float(report) == 1.0

    def test_empty_partitions_counted_separately(self):
        locals_ = {0: np.array([1]), 1: np.array([], dtype=int)}
        report = local_skyline_optimality(locals_, np.array([1]))
        assert report.partitions_empty == 1
        assert report.partitions_counted == 1

    @given(
        k=st.integers(1, 6),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=40)
    def test_property_in_unit_interval(self, k, seed):
        rng = np.random.default_rng(seed)
        locals_ = {
            i: rng.choice(100, size=rng.integers(1, 10), replace=False)
            for i in range(k)
        }
        global_ = rng.choice(100, size=20, replace=False)
        report = local_skyline_optimality(locals_, global_)
        assert 0.0 <= report.optimality <= 1.0


class TestOnRealPipeline:
    def test_metric_from_result(self):
        pts = np.random.default_rng(0).random((2000, 3))
        result = run_mr_skyline(pts, method="angle", num_workers=4)
        report = optimality_of_result(result)
        assert 0.0 < report.optimality <= 1.0

    def test_global_skyline_members_always_local(self):
        """Every global skyline point is in its partition's local skyline,
        so per-partition hits sum to the global skyline size."""
        pts = np.random.default_rng(1).random((2000, 3))
        result = run_mr_skyline(pts, method="grid", num_workers=4)
        hits = sum(
            np.isin(sky, result.global_indices).sum()
            for sky in result.local_skylines.values()
        )
        assert hits == result.global_indices.size

    def test_single_partition_is_perfect(self):
        pts = np.random.default_rng(2).random((500, 3))
        result = run_mr_skyline(pts, method="angle", num_partitions=1)
        assert optimality_of_result(result).optimality == 1.0
