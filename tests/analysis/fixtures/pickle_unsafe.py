"""Violating fixture for pickle-safety (see udf_impure for the marker rules)."""


class Mapper:
    pass


class Job:
    def __init__(self, name, mapper=None, reducer=None):
        self.name = name


class JobConf:
    def __init__(self, partitioner=None, params=None):
        self.partitioner = partitioner
        self.params = params


JOB = Job("bad", mapper=lambda key, value: [(key, value)])  # VIOLATION: pickle-safety

CONF = JobConf(partitioner=lambda key, n: 0)  # VIOLATION: pickle-safety

PARAMS = JobConf(params={"scale": lambda x: x * 2})  # VIOLATION: pickle-safety


def build_local_job():
    class LocalMapper(Mapper):
        def map(self, key, value):
            yield key, value

    return Job("local", LocalMapper)  # VIOLATION: pickle-safety


def run(executor):
    return executor.submit(lambda: 42)  # VIOLATION: pickle-safety
