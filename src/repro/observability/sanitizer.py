"""Runtime lock-order sanitizer for the repro namespace.

The static flow layer (:mod:`repro.analysis.flow`) predicts which lock
orderings *can* happen; this module observes which orderings *do* happen.
When installed (``REPRO_SANITIZE=locks`` or an explicit :func:`install`),
``threading.Lock`` and ``threading.RLock`` constructors called from repro
code hand back instrumented proxies.  Every successful acquisition is
recorded against a per-thread held-stack, and the sanitizer maintains a
process-wide *observed acquisition graph* whose labels use the exact
``module.Class.attr`` identity the static :class:`~repro.analysis.flow.locks.LockId`
uses — so an integration test can assert the observed graph is a subgraph
of the statically predicted one.

Three things are reported, each as a structured event (``sanitizer.*``)
plus a counter plus a persistent record on the sanitizer object:

* **inversions** — lock B acquired while holding A after A-while-holding-B
  was already observed (the runtime shadow of ``lock-order-cycle``),
* **long holds** — a lock held longer than ``hold_threshold`` seconds on
  the injectable clock (the runtime shadow of ``blocking-under-lock``),
* the **edge set** itself, dumped via :meth:`LockOrderSanitizer.report`
  (and to ``$REPRO_SANITIZE_REPORT`` at process exit).

Persistent records survive :func:`~repro.observability.events.set_events`
and :func:`~repro.observability.metrics.set_metrics` swaps: tests rotate
the sinks freely, the sanitizer's own history does not rotate with them.

The proxies only wrap locks whose *creating frame* belongs to a watched
module prefix (``repro`` by default), so third-party and stdlib locks stay
untouched.  Hook processing sets a thread-local guard: acquisitions made
while emitting the sanitizer's own telemetry (the event log's ring lock,
the metrics registry lock) are passed through unrecorded, which breaks
the otherwise-infinite recursion and keeps the sanitizer's sinks out of
its own graph.
"""

from __future__ import annotations

import atexit
import json
import os
import sys
import threading
import time
import weakref
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

__all__ = [
    "Inversion",
    "LockOrderSanitizer",
    "LongHold",
    "active",
    "install",
    "install_from_env",
    "uninstall",
]

# Captured before anything can patch them.
_ORIG_LOCK = threading.Lock
_ORIG_RLOCK = threading.RLock

DEFAULT_HOLD_THRESHOLD = 0.25  # seconds on the sanitizer clock
_THIS_FILE = __file__


@dataclass(frozen=True, slots=True)
class Inversion:
    """Locks taken in both orders: ``second`` acquired under ``first``
    after the opposite nesting was already observed."""

    first: str
    second: str
    witness: str  # "site -> site" for this (first, second) occurrence
    prior: str  # witness for the previously seen (second, first) edge
    thread: str

    def to_dict(self) -> Dict[str, str]:
        return {"first": self.first, "second": self.second,
                "witness": self.witness, "prior": self.prior,
                "thread": self.thread}


@dataclass(frozen=True, slots=True)
class LongHold:
    """One lock held past the threshold."""

    label: str
    duration: float
    site: str
    thread: str

    def to_dict(self) -> Dict[str, Any]:
        return {"label": self.label, "duration": round(self.duration, 6),
                "site": self.site, "thread": self.thread}


@dataclass(slots=True)
class _Held:
    lock: "_SanitizedLock"
    label: str
    since: float
    site: str
    depth: int


def _caller_site() -> str:
    """``qualname:line`` of the nearest frame outside this module."""
    frame = sys._getframe(2)
    while frame is not None and frame.f_code.co_filename == _THIS_FILE:
        frame = frame.f_back
    if frame is None:  # pragma: no cover - only if called at top level
        return "<unknown>"
    return f"{_code_qualname(frame.f_code)}:{frame.f_lineno}"


def _code_qualname(code: Any) -> str:
    # co_qualname arrived in 3.11; co_name is the 3.10 fallback.
    return str(getattr(code, "co_qualname", code.co_name))


class _SanitizedLock:
    """Proxy around one ``_thread.lock`` / ``_thread.RLock``.

    Identity resolution is lazy: at creation the assignment target does
    not exist yet (``self._lock = threading.Lock()`` runs the call before
    the store), so the owning attribute is discovered on first use by
    scanning the owner instance (or owning module) for this object.
    """

    __slots__ = ("_san", "_real", "kind", "_module", "_qual",
                 "_owner_ref", "_label", "__weakref__")

    def __init__(self, san: "LockOrderSanitizer", real: Any, kind: str,
                 module: str, qual: str, owner: Any):
        self._san = san
        self._real = real
        self.kind = kind
        self._module = module
        self._qual = qual  # creating code object's qualname
        self._label: Optional[str] = None
        if owner is not None:
            try:
                self._owner_ref: Optional[weakref.ref] = weakref.ref(owner)
            except TypeError:
                self._owner_ref = None
        else:
            self._owner_ref = None

    def label(self) -> str:
        if self._label is not None:
            return self._label
        owner = self._owner_ref() if self._owner_ref is not None else None
        if owner is not None:
            for attr, value in vars(owner).items():
                if value is self:
                    cls = type(owner)
                    self._label = f"{cls.__module__}.{cls.__qualname__}.{attr}"
                    return self._label
        if self._qual == "<module>":
            module = sys.modules.get(self._module)
            if module is not None:
                for attr, value in vars(module).items():
                    if value is self:
                        self._label = f"{self._module}.{attr}"
                        return self._label
            # Not assigned to a module global we can see yet; don't cache.
            return f"{self._module}.<unbound>"
        # Function-local lock: the static LockId for locals is (fn
        # qualname, variable) — the variable name is unrecoverable at
        # runtime, so the whole function scope is the identity.  Left
        # uncached while an owner candidate exists: a ``self`` in the
        # creating frame may still receive the assignment.
        fallback = f"{self._module}.{self._qual}.<local>"
        if owner is None and self._owner_ref is None:
            self._label = fallback
        return fallback

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got: bool = self._real.acquire(blocking, timeout)
        if got:
            self._san._on_acquire(self, _caller_site())
        return got

    def release(self) -> None:
        self._san._on_release(self)
        self._real.release()

    def locked(self) -> bool:
        return bool(self._real.locked())

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def __getattr__(self, name: str) -> Any:
        return getattr(self._real, name)

    def __repr__(self) -> str:
        return f"<sanitized {self.kind} {self.label()!r} wrapping {self._real!r}>"


class LockOrderSanitizer:
    """Process-wide observer of lock acquisition order.

    One instance is installed at a time (module-level :func:`install`);
    the class itself is plain enough to unit-test unattached.
    """

    def __init__(
        self,
        *,
        time_fn: Callable[[], float] = time.monotonic,
        hold_threshold: float = DEFAULT_HOLD_THRESHOLD,
        prefixes: Tuple[str, ...] = ("repro",),
    ):
        self._time_fn = time_fn
        self.hold_threshold = hold_threshold
        self._prefixes = prefixes
        self._state_lock = _ORIG_LOCK()
        self._tls = threading.local()
        self._installed = False
        self.edges: Dict[Tuple[str, str], str] = {}
        self.inversions: List[Inversion] = []
        self.long_holds: List[LongHold] = []
        self.locks_created = 0

    # -- constructor patching -------------------------------------------

    def _watched(self, module: str) -> bool:
        return any(module == p or module.startswith(p + ".")
                   for p in self._prefixes)

    def _factory(self, kind: str) -> Callable[..., Any]:
        orig = _ORIG_LOCK if kind == "lock" else _ORIG_RLOCK

        def make(*args: Any, **kwargs: Any) -> Any:
            real = orig(*args, **kwargs)
            frame = sys._getframe(1)
            module = frame.f_globals.get("__name__", "")
            if not self._watched(module):
                return real
            with self._state_lock:
                self.locks_created += 1
            return _SanitizedLock(self, real, kind, module,
                                  _code_qualname(frame.f_code),
                                  frame.f_locals.get("self"))

        make.__name__ = f"sanitized_{kind}_factory"
        return make

    def install(self) -> "LockOrderSanitizer":
        if not self._installed:
            threading.Lock = self._factory("lock")  # type: ignore[misc]
            threading.RLock = self._factory("rlock")  # type: ignore[misc]
            self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed:
            threading.Lock = _ORIG_LOCK  # type: ignore[misc]
            threading.RLock = _ORIG_RLOCK  # type: ignore[misc]
            self._installed = False

    # -- acquisition hooks ----------------------------------------------

    def _stack(self) -> List[_Held]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _on_acquire(self, lock: _SanitizedLock, site: str) -> None:
        if getattr(self._tls, "guard", False):
            return
        stack = self._stack()
        for held in stack:
            if held.lock is lock:  # reentrant re-acquire (RLock)
                held.depth += 1
                return
        self._tls.guard = True
        try:
            label = lock.label()
            found: List[Inversion] = []
            with self._state_lock:
                for held in stack:
                    if held.label == label:
                        continue
                    edge = (held.label, label)
                    if edge in self.edges:
                        continue
                    reverse = (label, held.label)
                    if reverse in self.edges:
                        found.append(Inversion(
                            first=held.label, second=label,
                            witness=f"{held.site} -> {site}",
                            prior=self.edges[reverse],
                            thread=threading.current_thread().name,
                        ))
                    self.edges[edge] = f"{held.site} -> {site}"
                self.inversions.extend(found)
            for inv in found:
                self._emit("sanitizer.inversion", "sanitizer.inversions",
                           **inv.to_dict())
        finally:
            self._tls.guard = False
        stack.append(_Held(lock, label, self._time_fn(), site, 1))

    def _on_release(self, lock: _SanitizedLock) -> None:
        if getattr(self._tls, "guard", False):
            return
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            held = stack[index]
            if held.lock is not lock:
                continue
            held.depth -= 1
            if held.depth > 0:
                return
            del stack[index]
            duration = self._time_fn() - held.since
            if duration >= self.hold_threshold:
                record = LongHold(label=held.label, duration=duration,
                                  site=held.site,
                                  thread=threading.current_thread().name)
                self._tls.guard = True
                try:
                    with self._state_lock:
                        self.long_holds.append(record)
                    self._emit("sanitizer.long_hold", "sanitizer.long_holds",
                               **record.to_dict())
                finally:
                    self._tls.guard = False
            return
        # Released a lock this thread never recorded (acquired before
        # install, or under the guard): nothing to unwind.

    def _emit(self, kind: str, counter: str, **attrs: Any) -> None:
        # Late imports keep module import free of circularity; sinks are
        # looked up per call so set_events()/set_metrics() swaps apply.
        from repro.observability.events import get_events
        from repro.observability.metrics import get_metrics

        get_metrics().counter(counter).inc()
        get_events().emit(kind, **attrs)

    # -- reporting -------------------------------------------------------

    def observed_edges(self) -> Set[Tuple[str, str]]:
        with self._state_lock:
            return set(self.edges)

    def report(self) -> Dict[str, Any]:
        with self._state_lock:
            return {
                "locks_created": self.locks_created,
                "edges": [
                    {"first": a, "second": b, "witness": w}
                    for (a, b), w in sorted(self.edges.items())
                ],
                "inversions": [inv.to_dict() for inv in self.inversions],
                "long_holds": [hold.to_dict() for hold in self.long_holds],
            }

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.report(), handle, indent=2, sort_keys=True)
            handle.write("\n")


_active: Optional[LockOrderSanitizer] = None


def active() -> Optional[LockOrderSanitizer]:
    """The currently installed sanitizer, if any."""
    return _active


def install(**kwargs: Any) -> LockOrderSanitizer:
    """Install a sanitizer (idempotent: returns the active one if present)."""
    global _active
    if _active is None:
        _active = LockOrderSanitizer(**kwargs).install()
    return _active


def uninstall() -> Optional[LockOrderSanitizer]:
    """Restore the real lock constructors; returns the removed sanitizer."""
    global _active
    sanitizer, _active = _active, None
    if sanitizer is not None:
        sanitizer.uninstall()
    return sanitizer


def install_from_env(environ: Any = None) -> Optional[LockOrderSanitizer]:
    """Install when ``REPRO_SANITIZE`` asks for ``locks``.

    ``REPRO_SANITIZE`` is a comma-separated feature list (today only
    ``locks`` exists); ``REPRO_SANITIZE_REPORT=<path>`` additionally dumps
    the JSON report at interpreter exit.
    """
    env = os.environ if environ is None else environ
    features = {part.strip() for part in
                env.get("REPRO_SANITIZE", "").split(",") if part.strip()}
    if "locks" not in features:
        return None
    sanitizer = install()
    report_path = env.get("REPRO_SANITIZE_REPORT")
    if report_path:
        atexit.register(sanitizer.dump, report_path)
    return sanitizer
