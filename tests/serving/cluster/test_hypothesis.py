"""Property tests: random insert/remove/query interleavings vs a model.

Hypothesis drives arbitrary mutation/query schedules against a live
3-shard cluster and checks every answer against a per-generation
ground-truth model (a plain ``{global id: row}`` dict evaluated with the
single-node :func:`~repro.serving.queries.evaluate`).  Invariants:

* every query kind equals the model's answer, id for id;
* generation vectors never regress across any step;
* an unchanged generation vector means a repeated query is a cache hit
  with the identical answer.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serving.cluster import (
    SHARD_FUNCTIONS,
    ClusterConfig,
    ClusterCoordinator,
    LocalCluster,
)
from repro.serving.queries import QuerySpec, evaluate

SHARDS = 3
D = 3

_counter = [0]


@pytest.fixture(scope="module")
def cluster():
    with LocalCluster(SHARDS) as fleet:
        yield fleet


def _coords_strategy():
    return st.lists(
        st.floats(0.015625, 1.0, allow_nan=False, width=32),
        min_size=D,
        max_size=D,
    )


@st.composite
def _schedule(draw):
    rows = draw(
        st.lists(_coords_strategy(), min_size=4, max_size=24)
    )
    steps = draw(
        st.lists(
            st.sampled_from(["insert", "remove", "skyline", "skyband",
                             "constrained", "subspace", "repeat"]),
            min_size=3,
            max_size=12,
        )
    )
    shard_fn = draw(st.sampled_from(list(SHARD_FUNCTIONS)))
    return rows, steps, shard_fn


def _spec(dataset, kind):
    if kind == "skyband":
        return QuerySpec(dataset=dataset, kind="skyband", k=2)
    if kind == "constrained":
        return QuerySpec(
            dataset=dataset,
            kind="constrained",
            lower=(0.0,) * D,
            upper=(0.8,) * D,
        )
    if kind == "subspace":
        return QuerySpec(dataset=dataset, kind="subspace", dims=(0, 2))
    return QuerySpec(dataset=dataset, kind="skyline")


def _model_answer(model, spec):
    if not model:
        return []
    ids = np.array(sorted(model), dtype=np.intp)
    rows = np.array([model[i] for i in sorted(model)], dtype=np.float64)
    return list(evaluate(spec, ids, rows))


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(schedule=_schedule())
def test_random_interleavings_match_model(cluster, schedule):
    rows, steps, shard_fn = schedule
    _counter[0] += 1
    dataset = f"hyp-{_counter[0]}"
    model = {i: list(row) for i, row in enumerate(rows)}
    rng = np.random.default_rng(_counter[0])

    with ClusterCoordinator(
        cluster.addresses(), config=ClusterConfig()
    ) as coordinator:
        gvec = coordinator.register(
            dataset, np.asarray(rows, dtype=np.float64), shard_fn=shard_fn
        )
        next_id = len(rows)
        last_answer = None

        for step in steps:
            if step == "insert":
                row = [float(v) for v in rng.uniform(0.01, 1.0, D)]
                gid, new_gvec = coordinator.insert(dataset, row)
                assert gid == next_id, "ids must be arrival-ordered"
                model[gid] = row
                next_id += 1
            elif step == "remove":
                if not model:
                    continue
                victim = int(rng.choice(sorted(model)))
                new_gvec = coordinator.remove(dataset, victim)
                del model[victim]
            elif step == "repeat" and last_answer is not None:
                kind, ids, at_gvec = last_answer
                again = coordinator.query(_spec(dataset, kind))
                if again.generations == at_gvec:
                    assert again.cache_hit, "stable gvec must hit the cache"
                    assert again.ids == ids
                new_gvec = again.generations
            else:
                kind = step if step != "repeat" else "skyline"
                spec = _spec(dataset, kind)
                response = coordinator.query(spec)
                assert not response.degraded
                assert response.ids == _model_answer(model, spec), (
                    kind, shard_fn, model
                )
                last_answer = (kind, response.ids, response.generations)
                new_gvec = response.generations

            assert len(new_gvec) == len(gvec)
            assert all(
                new >= old for new, old in zip(new_gvec, gvec)
            ), "generation vectors must never regress"
            gvec = tuple(new_gvec)
