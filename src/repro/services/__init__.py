"""Web-service / QoS domain layer.

* :mod:`repro.services.qos` — attribute schema, polarity normalisation
* :mod:`repro.services.qws` — synthetic QWS dataset + the paper's extension
  procedure (the evaluation workload)
* :mod:`repro.services.registry` — UDDI-like registry with incremental
  per-category skylines
* :mod:`repro.services.selection` — user-facing skyline selection + ranking
* :mod:`repro.services.composition` — QoS-aware workflow composition with
  per-task skyline pruning
"""

from repro.services.composition import (
    CompositionResult,
    CompositionTask,
    aggregate_qos,
    skyline_compositions,
)
from repro.services.qos import Polarity, QoSAttribute, QoSSchema
from repro.services.qws import (
    QWS_SCHEMA,
    ServiceDataset,
    extend_dataset,
    generate_qws,
)
from repro.services.registry import Service, ServiceRegistry
from repro.services.selection import (
    SelectionResult,
    rank_by_utility,
    select_services,
)

__all__ = [
    "CompositionResult",
    "CompositionTask",
    "Polarity",
    "QWS_SCHEMA",
    "QoSAttribute",
    "QoSSchema",
    "SelectionResult",
    "Service",
    "ServiceDataset",
    "aggregate_qos",
    "ServiceRegistry",
    "extend_dataset",
    "generate_qws",
    "rank_by_utility",
    "select_services",
    "skyline_compositions",
]
