"""QoS attribute schema and orientation normalisation.

Skyline code in :mod:`repro.core` minimises every dimension.  Real QoS
attributes are mixed: response time and latency should be minimised, but
availability or throughput maximised.  A :class:`QoSSchema` records each
attribute's polarity and converts raw service measurements into the
all-minimisation, non-negative matrix the skyline pipeline expects
(non-negativity also being a requirement of the hyperspherical transform).

Maximisation attributes are flipped as ``upper_bound − value``; attributes
with no natural upper bound use the observed maximum (recorded so the same
transform applies to later, unseen services).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Polarity", "QoSAttribute", "QoSSchema"]


class Polarity(enum.Enum):
    """Whether smaller or larger raw values are better."""

    LOWER_IS_BETTER = "min"
    HIGHER_IS_BETTER = "max"


@dataclass(frozen=True, slots=True)
class QoSAttribute:
    """One QoS dimension.

    ``upper_bound`` is the value used to flip maximisation attributes
    (e.g. 100 for percentages); ``None`` means "use the observed maximum".
    """

    name: str
    unit: str
    polarity: Polarity
    upper_bound: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("attribute name must be non-empty")
        if self.upper_bound is not None and self.upper_bound <= 0:
            raise ValueError(
                f"{self.name}: upper_bound must be positive, got {self.upper_bound}"
            )


class QoSSchema:
    """An ordered list of QoS attributes with orientation handling."""

    def __init__(self, attributes: Sequence[QoSAttribute]):
        attrs = list(attributes)
        if not attrs:
            raise ValueError("schema needs at least one attribute")
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate attribute names in {names}")
        self.attributes = attrs

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self):
        return iter(self.attributes)

    @property
    def names(self) -> list[str]:
        return [a.name for a in self.attributes]

    def index_of(self, name: str) -> int:
        for i, attr in enumerate(self.attributes):
            if attr.name == name:
                return i
        raise KeyError(f"no attribute named {name!r}")

    def subset(self, dims: int) -> "QoSSchema":
        """The first ``dims`` attributes (the paper sweeps d = 2 … 10)."""
        if not 1 <= dims <= len(self.attributes):
            raise ValueError(
                f"dims must be in [1, {len(self.attributes)}], got {dims}"
            )
        return QoSSchema(self.attributes[:dims])

    def to_minimization(self, raw: np.ndarray) -> np.ndarray:
        """Convert raw measurements to the all-minimisation orientation.

        Parameters
        ----------
        raw:
            ``(n, len(schema))`` matrix of raw attribute values; negative
            raw values are rejected (QoS measurements are non-negative).

        Returns
        -------
        ``(n, d)`` float64 matrix, non-negative, lower-is-better everywhere.
        """
        data = np.asarray(raw, dtype=np.float64)
        if data.ndim != 2 or data.shape[1] != len(self.attributes):
            raise ValueError(
                f"expected shape (n, {len(self.attributes)}), got {data.shape}"
            )
        if np.isnan(data).any():
            raise ValueError("raw QoS matrix contains NaN")
        if (data < 0).any():
            raise ValueError("raw QoS values must be non-negative")
        out = data.copy()
        for j, attr in enumerate(self.attributes):
            if attr.polarity is Polarity.HIGHER_IS_BETTER:
                bound = attr.upper_bound
                if bound is None:
                    bound = float(data[:, j].max())
                if (data[:, j] > bound).any():
                    raise ValueError(
                        f"{attr.name}: values exceed upper_bound {bound}"
                    )
                out[:, j] = bound - data[:, j]
        return out
