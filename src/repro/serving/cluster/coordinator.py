"""The cluster coordinator: fan-out, candidate merge, degraded answers.

One :class:`ClusterCoordinator` fronts N shard servers (each an ordinary
``repro serve`` speaking the JSON-lines protocol) and serves the same
query/mutation surface as a single-node
:class:`~repro.serving.service.SkylineService`:

* **Reads** fan out as ``shard_query`` legs — one thread per owning shard
  — carrying the coordinator's current **filter points** (live rows of the
  dataset, recomputed from every full skyline merge) so shards prune
  dominated candidates before they cross the wire (Ciaccia–Martinenghi).
  The candidate union is merged exactly
  (:func:`~repro.serving.cluster.merge.merge_candidates`) through the
  kernel seam.
* **Writes** route to the owning shard
  (:class:`~repro.serving.cluster.shards.ShardMap`) and bump that shard's
  component of the dataset's **generation vector** — the versioned leg of
  the cluster result-cache key, so mutation invalidates cached answers
  exactly like the single-node generation counter does.
* **Shard loss degrades, it does not fail**: a refused connection, EOF,
  per-leg timeout, or an injected fault (the PR-4
  :class:`~repro.mapreduce.faults.FaultInjector` plugs in via
  ``ClusterConfig.fault_plan``) marks the leg lost, and the surviving
  legs merge into a partial answer flagged ``degraded`` with the missing
  shards listed — never cached, so a recovered shard immediately restores
  full answers.  ``serve.shard.lost`` counts and events make every loss
  observable; generation vectors fold in with ``max`` and never regress.

Thread-safety: routing/identity state mutates only under ``self._lock``;
no RPC, join, or wait ever runs while it is held.  Each
:class:`ShardEndpoint` hands out pooled connections the same way — the
pool free-list is locked, the socket I/O is not.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.filtering import DEFAULT_FILTER_K, compute_filter_points
from repro.core.kernels import get_kernel
from repro.mapreduce.errors import TaskError
from repro.mapreduce.faults import FaultInjector, FaultPlan, MonotonicClock, apply_fault
from repro.observability.events import get_events
from repro.observability.metrics import Histogram, get_metrics
from repro.observability.slo import SLOTracker, default_objectives
from repro.observability.tracing import get_tracer
from repro.serving.cache import ResultCache
from repro.serving.client import ServingClient, ServingConnectionError
from repro.serving.cluster.merge import merge_candidates
from repro.serving.cluster.shards import DatasetPlacement, ShardMap
from repro.serving.queries import QuerySpec
from repro.serving.service import UnknownDatasetError

__all__ = [
    "ClusterConfig",
    "ClusterCoordinator",
    "ClusterResponse",
    "ClusterUnavailableError",
    "ShardEndpoint",
    "ShardLostError",
]


class ShardLostError(RuntimeError):
    """One shard could not answer (refused, EOF, timeout, injected fault)."""

    def __init__(self, shard: int, reason: str):
        super().__init__(f"shard {shard} lost ({reason})")
        self.shard = shard
        self.reason = reason


class ClusterUnavailableError(RuntimeError):
    """Every owning shard was lost and no stale answer is cached."""


@dataclass(slots=True)
class ClusterConfig:
    """Coordinator knobs (the cluster analogue of ``ServeConfig``)."""

    #: Dominance backend for merges and filter selection.
    kernel: str | None = None
    #: Broadcast filter-set size (0 disables wire pruning).
    filter_k: int = DEFAULT_FILTER_K
    #: Per-leg socket budget for queries and small writes.
    shard_timeout_s: float = 5.0
    #: TCP connect budget per shard.
    connect_timeout_s: float = 5.0
    #: Cluster result-cache capacity (keyed by generation vector).
    cache_entries: int = 256
    #: Deadline applied when a query names none (``None`` = unbounded).
    default_deadline_s: float | None = None
    #: Inject shard faults (chaos tests): consulted once per fan-out leg
    #: with ``job_name="cluster.<dataset>"``, ``kind="map"``,
    #: ``index=<shard id>``.
    fault_plan: FaultPlan | None = None
    #: SLO objectives (same shape as the single-node service).
    slo_latency_target: float = 0.95
    slo_latency_threshold_s: float = 0.5
    slo_availability_target: float = 0.999

    def validate(self) -> None:
        if self.filter_k < 0:
            raise ValueError(f"filter_k must be >= 0, got {self.filter_k}")
        if self.shard_timeout_s <= 0:
            raise ValueError(
                f"shard_timeout_s must be > 0, got {self.shard_timeout_s}"
            )
        if self.connect_timeout_s <= 0:
            raise ValueError(
                f"connect_timeout_s must be > 0, got {self.connect_timeout_s}"
            )
        if self.cache_entries < 0:
            raise ValueError(
                f"cache_entries must be >= 0, got {self.cache_entries}"
            )
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ValueError(
                f"default_deadline_s must be > 0, got {self.default_deadline_s}"
            )


@dataclass(slots=True)
class ClusterResponse:
    """One coordinator answer, labelled with its generation vector."""

    dataset: str
    kind: str
    ids: List[int]
    generations: Tuple[int, ...]
    cache_hit: bool = False
    degraded: bool = False
    missing_shards: List[int] = field(default_factory=list)
    status: str = "ok"
    latency_s: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "dataset": self.dataset,
            "kind": self.kind,
            "ids": list(self.ids),
            "generations": list(self.generations),
            "cache_hit": self.cache_hit,
            "degraded": self.degraded,
            "missing_shards": list(self.missing_shards),
            "status": self.status,
            "latency_s": round(self.latency_s, 9),
        }


class ShardEndpoint:
    """One shard's address plus a small pool of protocol connections.

    ``call`` takes an idle connection (or dials a new one), runs exactly
    one request/response on it with the socket timeout set to the leg
    budget, and returns it to the pool.  Transport failure closes the
    connection, flips ``state`` to ``"lost"`` and raises
    :class:`ShardLostError`; the next call simply dials again — recovery
    is automatic once the shard is back.

    The pool free-list is the only locked state; socket I/O never runs
    under the lock.
    """

    def __init__(
        self,
        index: int,
        host: str,
        port: int,
        *,
        connect_timeout_s: float = 5.0,
    ):
        self.index = index
        self.host = host
        self.port = int(port)
        self.connect_timeout_s = connect_timeout_s
        self.state = "up"
        self._lock = threading.Lock()
        self._idle: List[ServingClient] = []

    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def call(self, timeout_s: float | None, **request: Any) -> Dict[str, Any]:
        """One request/response against this shard, bounded by ``timeout_s``."""
        client: ServingClient | None = None
        with self._lock:
            if self._idle:
                client = self._idle.pop()
        try:
            if client is None:
                client = ServingClient.connect(
                    self.host, self.port, timeout=self.connect_timeout_s
                )
            client.settimeout(timeout_s)
            response = client.call(**request)
        except (ServingConnectionError, OSError) as exc:
            if client is not None:
                _close_quietly(client)
            with self._lock:
                self.state = "lost"
            raise ShardLostError(self.index, str(exc)) from exc
        with self._lock:
            self.state = "up"
            self._idle.append(client)
        return response

    def close(self) -> None:
        with self._lock:
            clients = list(self._idle)
            self._idle.clear()
        for client in clients:
            _close_quietly(client)


def _close_quietly(client: ServingClient) -> None:
    try:
        client.close()
    except (OSError, ValueError):
        pass  # tearing down a dead transport; nothing left to report


def _parse_endpoint(spec: "str | Tuple[str, int]") -> Tuple[str, int]:
    if isinstance(spec, tuple):
        host, port = spec
        return str(host), int(port)
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise ValueError(f"shard endpoint must be host:port, got {spec!r}")
    return host, int(port)


class ClusterCoordinator:
    """Sharded serving front end over N ``repro serve`` shard servers."""

    def __init__(
        self,
        endpoints: Sequence["str | Tuple[str, int]"],
        *,
        config: ClusterConfig | None = None,
        clock: Any = None,
    ):
        if not endpoints:
            raise ValueError("a cluster needs at least one shard endpoint")
        self.config = config or ClusterConfig()
        self.config.validate()
        self.clock = clock if clock is not None else MonotonicClock()
        self._endpoints = [
            ShardEndpoint(
                i, *_parse_endpoint(spec),
                connect_timeout_s=self.config.connect_timeout_s,
            )
            for i, spec in enumerate(endpoints)
        ]
        self._lock = threading.RLock()
        self._map = ShardMap(len(self._endpoints))
        self._cache = ResultCache(self.config.cache_entries)
        #: dataset -> (generation vector the filters are valid at, rows)
        self._filters: Dict[str, Tuple[Tuple[int, ...], np.ndarray]] = {}
        self._lost_counts: Dict[int, int] = {}
        self._attempts: Dict[Tuple[str, int], int] = {}
        self._injector = (
            FaultInjector(self.config.fault_plan)
            if self.config.fault_plan is not None
            else None
        )
        self._started_at = self.clock.monotonic()
        self.slo = SLOTracker(
            default_objectives(
                availability_target=self.config.slo_availability_target,
                latency_threshold_s=self.config.slo_latency_threshold_s,
                latency_target=self.config.slo_latency_target,
            ),
            clock=self.clock,
        )

    @property
    def num_shards(self) -> int:
        return len(self._endpoints)

    def close(self) -> None:
        for endpoint in self._endpoints:
            endpoint.close()

    def __enter__(self) -> "ClusterCoordinator":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- dataset management -----------------------------------------------------

    def register(
        self,
        name: str,
        points: np.ndarray | Sequence[Sequence[float]] | None = None,
        *,
        shard_fn: str | None = None,
        scheme: str = "angle",
        num_partitions: int = 8,
    ) -> Tuple[int, ...]:
        """Place a dataset and register each shard's slice; returns the
        generation vector.

        ``shard_fn=None`` keeps the whole dataset on one shard
        (round-robin); ``"hash"`` / ``"angle"`` / ``"grid"`` / ``"dim"``
        split it across every shard with the matching partitioner.
        ``scheme`` / ``num_partitions`` pass through to each shard's
        *within-shard* store partitioning, unchanged from single-node.
        """
        rows = (
            np.asarray(points, dtype=np.float64) if points is not None else None
        )
        with self._lock:
            replaced = name in self._map
            placement, slices = self._map.place(name, rows, shard_fn=shard_fn)
            self._filters.pop(name, None)
        if replaced:
            # The replacement placement restarts its generation vector; the
            # previous incarnation's cached answers must not be addressable
            # at the recycled (dataset, ..., gvec) keys.
            self._cache.invalidate(name)
        for shard in placement.shard_ids:
            part = slices[shard]
            request: Dict[str, Any] = {
                "op": "register",
                "dataset": name,
                "scheme": scheme,
                "partitions": num_partitions,
            }
            if part is not None and part.shape[0]:
                request["points"] = [[float(v) for v in row] for row in part]
            response = self._call_shard(name, shard, None, request)
            if not response.get("ok"):
                raise RuntimeError(
                    f"shard {shard} rejected register of {name!r}: "
                    f"{response.get('error', response)}"
                )
            with self._lock:
                placement.observe_generation(shard, response["generation"])
        with self._lock:
            gvec = placement.generation_vector()
        if self.config.filter_k and rows is not None and rows.shape[0]:
            flt = compute_filter_points(
                rows, k=self.config.filter_k, kernel=self.config.kernel
            )
            with self._lock:
                self._filters[name] = (gvec, flt)
        get_metrics().gauge("serve.cluster.datasets").set(
            len(self._map.datasets())
        )
        return gvec

    def datasets(self) -> List[str]:
        with self._lock:
            return self._map.datasets()

    def shard_of(self, dataset: str, point_id: int) -> int:
        """The shard currently holding global id ``point_id``.

        Ops/debug surface (and the chaos suite's ground truth for which
        points a killed shard takes down with it)."""
        with self._lock:
            placement = self._placement(dataset)
            try:
                return placement.local_of[int(point_id)][0]
            except KeyError:
                raise KeyError(
                    f"unknown point id {point_id} in dataset {dataset!r}"
                ) from None

    # -- mutations --------------------------------------------------------------

    def insert(
        self, dataset: str, point: Sequence[float] | np.ndarray
    ) -> Tuple[int, Tuple[int, ...]]:
        """Insert one row; returns ``(global id, generation vector)``."""
        row = np.asarray(point, dtype=np.float64).ravel()
        with self._lock:
            placement = self._placement(dataset)
            shard = placement.owner_of(row)
            self._filters.pop(dataset, None)
        response = self._call_shard(
            dataset,
            shard,
            self.config.shard_timeout_s,
            {"op": "insert", "dataset": dataset, "point": [float(v) for v in row]},
        )
        if not response.get("ok"):
            raise RuntimeError(
                f"shard {shard} rejected insert into {dataset!r}: "
                f"{response.get('error', response)}"
            )
        with self._lock:
            placement.observe_generation(shard, response["generation"])
            global_id = placement.bind(shard, int(response["id"]))
            gvec = placement.generation_vector()
        get_metrics().counter("serve.cluster.mutations").inc()
        return global_id, gvec

    def remove(self, dataset: str, point_id: int) -> Tuple[int, ...]:
        """Remove one row by global id; returns the generation vector."""
        with self._lock:
            placement = self._placement(dataset)
            try:
                shard, local_id = placement.local_of[int(point_id)]
            except KeyError:
                raise KeyError(
                    f"unknown point id {point_id} in dataset {dataset!r}"
                ) from None
            self._filters.pop(dataset, None)
        response = self._call_shard(
            dataset,
            shard,
            self.config.shard_timeout_s,
            {"op": "remove", "dataset": dataset, "id": local_id},
        )
        if not response.get("ok"):
            raise KeyError(
                f"shard {shard} rejected remove of {point_id} from "
                f"{dataset!r}: {response.get('error', response)}"
            )
        with self._lock:
            placement.observe_generation(shard, response["generation"])
            placement.release(int(point_id))
            gvec = placement.generation_vector()
        get_metrics().counter("serve.cluster.mutations").inc()
        return gvec

    # -- the serve path ---------------------------------------------------------

    def query(
        self, spec: QuerySpec, *, deadline_s: float | None = None
    ) -> ClusterResponse:
        """Serve one query across the cluster.

        Raises :class:`UnknownDatasetError` for a bad name and
        :class:`ClusterUnavailableError` only when *every* owning shard is
        lost and nothing stale is cached; any partial loss degrades.
        """
        metrics = get_metrics()
        tracer = get_tracer()
        metrics.counter("serve.cluster.requests").inc()
        start = self.clock.monotonic()
        deadline = (
            deadline_s if deadline_s is not None
            else self.config.default_deadline_s
        )
        span = tracer.start_span(
            "serve.cluster.request", kind="serve",
            dataset=spec.dataset, query=spec.kind,
        )
        status = "error"
        try:
            response = self._serve(spec, start, deadline, span)
            status = response.status
            response.latency_s = self.clock.monotonic() - start
            return response
        finally:
            latency_s = self.clock.monotonic() - start
            metrics.histogram("serve.cluster.latency_s").observe(latency_s)
            self.slo.record(latency_s, ok=status in ("ok", "degraded"))
            span.set_attrs(status=status)
            tracer.end_span(
                span, status="ok" if status in ("ok", "degraded") else "error"
            )

    def _serve(
        self,
        spec: QuerySpec,
        start: float,
        deadline: float | None,
        span: Any,
    ) -> ClusterResponse:
        metrics = get_metrics()
        with self._lock:
            placement = self._placement(spec.dataset)
            gvec = placement.generation_vector()
            entry = self._filters.get(spec.dataset)
            filters = entry[1] if entry is not None and entry[0] == gvec else None
        key = (spec.dataset, spec.kind, spec.params_key(), gvec)
        cached = self._cache.get(key)
        if cached is not None:
            metrics.counter("serve.cluster.cache.hits").inc()
            span.set_attrs(cache="hit")
            return ClusterResponse(
                dataset=spec.dataset,
                kind=spec.kind,
                ids=cached,
                generations=gvec,
                cache_hit=True,
            )
        metrics.counter("serve.cluster.cache.misses").inc()
        span.set_attrs(cache="miss", filters=0 if filters is None else len(filters))
        answers, lost = self._fan_out(placement, spec, filters, start, deadline, span)
        gen_of = dict(zip(placement.shard_ids, gvec))
        if filters is not None and any(
            ans["generation"] != gen_of[shard] for shard, ans in answers.items()
        ):
            # A mutation raced past the filter tag: one of the filter rows
            # may no longer be live at the generation a shard answered at,
            # so its pruning cannot be trusted.  Re-fan-out unfiltered.
            metrics.counter("serve.cluster.unfiltered_retries").inc()
            answers, lost = self._fan_out(
                placement, spec, None, start, deadline, span
            )
        # A shard answering *below* the generation the coordinator has
        # already observed for it has restarted without (full) recovery:
        # its answer may silently miss acknowledged mutations, so the leg
        # is treated as lost rather than merged — and the placement's
        # max-merge generation vector never regresses.
        regressed = {
            shard
            for shard, ans in answers.items()
            if ans["generation"] < gen_of[shard]
        }
        if regressed:
            for shard in regressed:
                del answers[shard]
                lost[shard] = "generation-regressed"
            metrics.counter("serve.cluster.generation_regressed").inc(
                len(regressed)
            )
            get_events().emit(
                "cluster.generation_regressed",
                dataset=spec.dataset,
                shards=sorted(regressed),
            )
        with self._lock:
            for shard, ans in answers.items():
                placement.observe_generation(shard, ans["generation"])
            new_gvec = placement.generation_vector()
            mapped = [
                self._map_answer(placement, shard, ans)
                for shard, ans in answers.items()
            ]
        self._note_lost(spec.dataset, lost)
        if not answers:
            return self._all_lost(spec, lost, span)
        ids, rows = merge_candidates(spec, mapped, kernel=self.config.kernel)
        metrics.counter("serve.cluster.points_held").inc(
            sum(ans["held"] for ans in answers.values())
        )
        metrics.counter("serve.cluster.candidates_received").inc(
            sum(ans["sent"] for ans in answers.values())
        )
        metrics.counter("serve.cluster.filter_pruned").inc(
            sum(ans["candidates"] - ans["sent"] for ans in answers.values())
        )
        gen_of_new = dict(zip(placement.shard_ids, new_gvec))
        consistent = not lost and all(
            ans["generation"] == gen_of_new[shard]
            for shard, ans in answers.items()
        )
        if lost:
            metrics.counter("serve.cluster.degraded").inc()
            get_events().emit(
                "cluster.degraded",
                dataset=spec.dataset,
                query=spec.kind,
                missing=sorted(lost),
            )
            span.set_attrs(degraded=True, missing=sorted(lost))
        elif consistent:
            # Degraded or racy answers are never cached: the cache must
            # only ever serve answers that are exact at their key's
            # generation vector.
            self._cache.put(
                (spec.dataset, spec.kind, spec.params_key(), new_gvec), ids
            )
            if self.config.filter_k and spec.kind == "skyline" and len(ids):
                flt = compute_filter_points(
                    rows, k=self.config.filter_k, kernel=self.config.kernel
                )
                with self._lock:
                    self._filters[spec.dataset] = (new_gvec, flt)
        span.set_attrs(results=len(ids))
        return ClusterResponse(
            dataset=spec.dataset,
            kind=spec.kind,
            ids=ids,
            generations=new_gvec,
            degraded=bool(lost),
            missing_shards=sorted(lost),
            status="degraded" if lost else "ok",
        )

    # -- fan-out ----------------------------------------------------------------

    def _fan_out(
        self,
        placement: DatasetPlacement,
        spec: QuerySpec,
        filters: np.ndarray | None,
        start: float,
        deadline: float | None,
        parent_span: Any,
    ) -> Tuple[Dict[int, Dict[str, Any]], Dict[int, str]]:
        """Run one ``shard_query`` leg per owning shard, concurrently.

        Returns ``(answers by shard, lost shards by reason)``.  A leg is
        lost on transport failure, an injected fault, a non-ok response,
        or the query deadline expiring before it finishes.
        """
        tracer = get_tracer()
        request: Dict[str, Any] = {"op": "shard_query", **spec.to_dict()}
        if filters is not None and len(filters):
            request["filters"] = [[float(v) for v in row] for row in filters]
        results: Dict[int, Tuple[str, Any]] = {}
        results_lock = threading.Lock()
        threads: List[Tuple[int, threading.Thread]] = []

        def leg(shard: int, timeout_s: float | None) -> None:
            leg_span = tracer.start_span(
                "serve.shard.call", kind="serve", parent=parent_span,
                shard=shard, dataset=spec.dataset, query=spec.kind,
            )
            leg_status = "ok"
            try:
                response = self._call_shard(
                    spec.dataset, shard, timeout_s, request
                )
                if response.get("ok"):
                    with results_lock:
                        results[shard] = ("ok", response)
                    leg_span.set_attrs(sent=response.get("sent"))
                else:
                    leg_status = "error"
                    reason = str(
                        response.get("error")
                        or response.get("reason")
                        or "rejected"
                    )
                    with results_lock:
                        results[shard] = ("lost", reason)
            except ShardLostError as exc:
                leg_status = "error"
                with results_lock:
                    results[shard] = ("lost", exc.reason)
            finally:
                tracer.end_span(leg_span, status=leg_status)

        for shard in placement.shard_ids:
            timeout_s = self._leg_timeout(start, deadline)
            thread = threading.Thread(
                target=leg,
                args=(shard, timeout_s),
                name=f"cluster-leg-{spec.dataset}-{shard}",
                daemon=True,
            )
            threads.append((shard, thread))
            thread.start()
        answers: Dict[int, Dict[str, Any]] = {}
        lost: Dict[int, str] = {}
        for shard, thread in threads:
            remaining = self._remaining(start, deadline)
            thread.join(remaining)
            if thread.is_alive():
                lost[shard] = "timeout"
                continue
            state, payload = results[shard]
            if state == "ok":
                answers[shard] = payload
            else:
                lost[shard] = payload
        return answers, lost

    def _leg_timeout(self, start: float, deadline: float | None) -> float:
        remaining = self._remaining(start, deadline)
        if remaining is None:
            return self.config.shard_timeout_s
        return max(min(self.config.shard_timeout_s, remaining), 0.001)

    def _remaining(self, start: float, deadline: float | None) -> float | None:
        if deadline is None:
            return None
        return max(deadline - (self.clock.monotonic() - start), 0.0)

    def _call_shard(
        self,
        dataset: str,
        shard: int,
        timeout_s: float | None,
        request: Dict[str, Any],
    ) -> Dict[str, Any]:
        """One shard RPC, with the chaos injector in the loop.

        Faults only ever target query fan-out legs: a lost write must
        surface as an error to the writer (there is no replica to degrade
        to), so injecting into register/insert/remove would just test the
        error path twice.
        """
        decision = None
        if self._injector is not None and request.get("op") == "shard_query":
            with self._lock:
                attempt = self._attempts.get((dataset, shard), 0) + 1
                self._attempts[(dataset, shard)] = attempt
                decision = self._injector.decide(
                    f"cluster.{dataset}", "map", shard, attempt
                )
        endpoint = self._endpoints[shard]
        if decision is None:
            return endpoint.call(timeout_s, **request)
        try:
            return apply_fault(
                decision,
                timeout_s,
                lambda: endpoint.call(timeout_s, **request),
            )
        except TaskError as exc:
            # Injected crash or cooperative hang-past-deadline: the leg is
            # lost exactly as if the shard's transport had died.
            raise ShardLostError(shard, f"injected:{decision.action}") from exc

    # -- degraded paths ---------------------------------------------------------

    def _note_lost(self, dataset: str, lost: Dict[int, str]) -> None:
        if not lost:
            return
        metrics = get_metrics()
        with self._lock:
            for shard in lost:
                self._lost_counts[shard] = self._lost_counts.get(shard, 0) + 1
        for shard, reason in sorted(lost.items()):
            metrics.counter("serve.shard.lost").inc()
            get_events().emit(
                "serve.shard.lost", shard=shard, dataset=dataset, reason=reason
            )

    def _all_lost(
        self, spec: QuerySpec, lost: Dict[int, str], span: Any
    ) -> ClusterResponse:
        """Every owning shard lost: serve the newest stale answer, if any."""
        stale = self._cache.latest(spec.dataset, spec.kind, spec.params_key())
        get_metrics().counter("serve.cluster.degraded").inc()
        get_events().emit(
            "cluster.degraded",
            dataset=spec.dataset,
            query=spec.kind,
            missing=sorted(lost),
            stale=stale is not None,
        )
        span.set_attrs(degraded=True, missing=sorted(lost))
        if stale is None:
            raise ClusterUnavailableError(
                f"query {spec.describe()}: all {len(lost)} owning shards "
                f"lost ({', '.join(f'{s}:{r}' for s, r in sorted(lost.items()))}) "
                "and no stale answer cached"
            )
        generations, ids = stale
        return ClusterResponse(
            dataset=spec.dataset,
            kind=spec.kind,
            ids=ids,
            generations=tuple(generations),
            cache_hit=True,
            degraded=True,
            missing_shards=sorted(lost),
            status="degraded",
        )

    # -- internals --------------------------------------------------------------

    def _placement(self, dataset: str) -> DatasetPlacement:
        try:
            return self._map.placement(dataset)
        except KeyError:
            raise UnknownDatasetError(dataset) from None

    def _map_answer(
        self,
        placement: DatasetPlacement,
        shard: int,
        ans: Dict[str, Any],
    ) -> Tuple[List[int], np.ndarray]:
        """Translate one shard answer to global ids, dropping rows whose
        identity the coordinator already released (a remove racing the
        fan-out: such rows cannot be live at the labelled generations)."""
        rows = np.asarray(ans["rows"], dtype=np.float64)
        global_ids: List[int] = []
        keep: List[int] = []
        for i, local_id in enumerate(ans["ids"]):
            gid = placement.global_of.get((shard, int(local_id)))
            if gid is not None:
                global_ids.append(gid)
                keep.append(i)
        if len(keep) != rows.shape[0]:
            rows = rows[keep] if keep else np.empty((0, rows.shape[1] if rows.ndim == 2 else 0))
        return global_ids, rows

    # -- introspection ----------------------------------------------------------

    def uptime_s(self) -> float:
        return self.clock.monotonic() - self._started_at

    def cache_stats(self) -> Dict[str, int]:
        return self._cache.stats()

    def stats(self) -> Dict[str, Any]:
        """JSON-ready operational snapshot (the cluster ``stats`` op)."""
        snapshot = get_metrics().snapshot()
        with self._lock:
            datasets = {
                name: {
                    "size": p.size,
                    "generation": sum(p.generation_vector()),
                    "generations": list(p.generation_vector()),
                    "shard_fn": p.shard_fn,
                    "shards": len(p.shard_ids),
                }
                for name, p in (
                    (n, self._map.placement(n)) for n in self._map.datasets()
                )
            }
            participation: Dict[int, int] = {}
            for name in self._map.datasets():
                for shard in self._map.placement(name).shard_ids:
                    participation[shard] = participation.get(shard, 0) + 1
            shards = {
                f"shard{ep.index}": {
                    "address": ep.address(),
                    "state": ep.state,
                    "datasets": participation.get(ep.index, 0),
                    "lost": self._lost_counts.get(ep.index, 0),
                }
                for ep in self._endpoints
            }
        return {
            "uptime_s": round(self.uptime_s(), 6),
            "kernel": get_kernel(self.config.kernel).name,
            "cluster": {"shards": self.num_shards},
            "datasets": datasets,
            "shards": shards,
            "cache": self._cache.stats(),
            "counters": {
                name: value
                for name, value in snapshot["counters"].items()
                if name.startswith(("serve.", "prune."))
            },
            "gauges": {
                name: value
                for name, value in snapshot["gauges"].items()
                if name.startswith(("serve.", "partition."))
            },
            "latency": snapshot["histograms"].get(
                "serve.cluster.latency_s",
                Histogram("serve.cluster.latency_s").snapshot(),
            ),
            "events": get_events().counts(),
        }

    def slo_report(self) -> Dict[str, Any]:
        return self.slo.evaluate()

    def health(self) -> Dict[str, Any]:
        """Liveness + burn state + shard reachability (the ``health`` op)."""
        slo_state = self.slo.evaluate()["state"]
        status = {"ok": "healthy", "ticket": "degraded", "page": "unhealthy"}[
            slo_state
        ]
        with self._lock:
            down = [ep.index for ep in self._endpoints if ep.state != "up"]
            datasets = len(self._map.datasets())
        if down and status == "healthy":
            status = "degraded"
        return {
            "status": status,
            "slo_state": slo_state,
            "uptime_s": round(self.uptime_s(), 6),
            "datasets": datasets,
            "shards": self.num_shards,
            "shards_down": down,
        }

    def events_tail(
        self,
        n: int | None = 50,
        *,
        kinds: Sequence[str] | None = None,
        since_seq: int | None = None,
    ) -> List[Dict[str, Any]]:
        return [
            event.to_dict()
            for event in get_events().tail(n, kinds=kinds, since_seq=since_seq)
        ]
