"""§V-B headline claim: MR-Angle 1.7× / 2.3× faster at N=100,000, d=10.

Shape assertion: MR-Angle wins against both baselines by at least 1.5×
(our equal-width baselines overshoot the paper's exact factors — see
EXPERIMENTS.md for the bracketing discussion).
"""

from repro.bench.experiments import headline


def test_headline(benchmark, scale, cache):
    table = benchmark.pedantic(
        lambda: headline(
            n=scale.large_n, d=scale.dims[-1], cluster=scale.cluster, cache=cache
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(table.render())
    speedups = dict(zip(table.column("method"), table.column("speedup_vs_angle")))
    assert speedups["MR-Dim"] >= 1.5
    assert speedups["MR-Grid"] >= 1.5
    # MR-Angle also does the least dominance work.
    tests = dict(zip(table.column("method"), table.column("dominance_tests")))
    assert tests["MR-Angle"] == min(tests.values())
