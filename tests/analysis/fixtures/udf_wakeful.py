"""Clean fixture for udf-no-sleep: UDFs that wait on nothing.

Names containing "sleep" without being a call's final attribute — a
variable, a string, a method *defining* sleep semantics elsewhere — must
not trip the rule; only actual ``...sleep(...)`` call sites do.
"""


class Mapper:
    pass


class Reducer:
    pass


class BriskMapper(Mapper):
    def map(self, key, value):
        sleep_budget = 0.0  # a name mentioning sleep is not a call
        yield key, value + sleep_budget


class BriskReducer(Reducer):
    def reduce(self, key, values):
        note = "no sleep here"
        yield key, (sum(values), note)


class Job:
    def __init__(self, name, mapper, reducer):
        self.name = name


JOB = Job("wakeful", BriskMapper, BriskReducer)
