"""Unit tests for the runtime lock-order sanitizer."""

import threading

import pytest

from repro.observability.events import EventLog, get_events, set_events
from repro.observability.metrics import MetricsRegistry, get_metrics, set_metrics
from repro.observability.sanitizer import (
    _ORIG_LOCK,
    LockOrderSanitizer,
    active,
    install,
    install_from_env,
    uninstall,
)


@pytest.fixture
def sanitizer():
    """Sanitizer watching THIS test module; sinks stay unsanitized."""
    san = LockOrderSanitizer(prefixes=(__name__,)).install()
    log = set_events(EventLog())
    registry = set_metrics(MetricsRegistry())
    try:
        yield san
    finally:
        san.uninstall()
        set_events(log)
        set_metrics(registry)


class _Alpha:
    def __init__(self):
        self._lock = threading.Lock()


class _Beta:
    def __init__(self):
        self._lock = threading.Lock()


def _pair():
    """Two locks with distinct class-level identities."""
    return _Alpha(), _Beta()


class TestAttribution:
    def test_instance_lock_label_matches_static_identity(self, sanitizer):
        holder = _Alpha()
        with holder._lock:
            pass
        cls = type(holder)
        expected = f"{cls.__module__}.{cls.__qualname__}._lock"
        assert holder._lock.label() == expected

    def test_unwatched_module_gets_a_real_lock(self):
        san = LockOrderSanitizer(prefixes=("no.such.package",)).install()
        try:
            lock = threading.Lock()
        finally:
            san.uninstall()
        assert type(lock) is type(_ORIG_LOCK())

    def test_local_lock_label_uses_function_scope(self, sanitizer):
        lock = threading.Lock()
        assert lock.label().endswith("test_local_lock_label_uses_function_scope.<local>")


class TestOrdering:
    def test_consistent_order_records_edges_no_inversion(self, sanitizer):
        a, b = _pair()
        for _ in range(3):
            with a._lock:
                with b._lock:
                    pass
        assert sanitizer.observed_edges() == {(a._lock.label(), b._lock.label())}
        assert sanitizer.inversions == []

    def test_inversion_detected_and_emitted(self, sanitizer):
        a, b = _pair()
        with a._lock:
            with b._lock:
                pass
        with b._lock:
            with a._lock:
                pass
        assert len(sanitizer.inversions) == 1
        inv = sanitizer.inversions[0]
        assert inv.first == b._lock.label()
        assert inv.second == a._lock.label()
        assert "->" in inv.witness and "->" in inv.prior
        events = [e for e in get_events().tail() if e.kind == "sanitizer.inversion"]
        assert len(events) == 1
        assert events[0].attrs["second"] == a._lock.label()
        assert get_metrics().counter("sanitizer.inversions").value == 1

    def test_inversion_reported_once_per_direction(self, sanitizer):
        a, b = _pair()
        with a._lock:
            with b._lock:
                pass
        for _ in range(4):
            with b._lock:
                with a._lock:
                    pass
        assert len(sanitizer.inversions) == 1

    def test_rlock_reentry_is_not_an_edge(self, sanitizer):
        class Recount:
            def __init__(self):
                self._lock = threading.RLock()

        r = Recount()
        with r._lock:
            with r._lock:
                pass
        assert sanitizer.observed_edges() == set()
        assert sanitizer.inversions == []


class TestLongHolds:
    def test_long_hold_detected_on_injectable_clock(self):
        clock = [0.0]
        san = LockOrderSanitizer(
            prefixes=(__name__,), time_fn=lambda: clock[0], hold_threshold=1.0
        ).install()
        log = set_events(EventLog())
        registry = set_metrics(MetricsRegistry())
        try:
            holder = _Alpha()
            holder._lock.acquire()
            clock[0] = 5.0
            holder._lock.release()
        finally:
            san.uninstall()
            set_events(log)
            set_metrics(registry)
        assert len(san.long_holds) == 1
        assert san.long_holds[0].duration == 5.0
        assert san.long_holds[0].label == holder._lock.label()

    def test_quick_hold_is_silent(self, sanitizer):
        holder = _Alpha()
        with holder._lock:
            pass
        assert sanitizer.long_holds == []


class TestRecordsSurviveSinkSwaps:
    def test_history_persists_across_set_events(self, sanitizer):
        a, b = _pair()
        with a._lock:
            with b._lock:
                pass
        set_events(EventLog())  # rotate the sink
        with b._lock:
            with a._lock:
                pass
        assert len(sanitizer.inversions) == 1
        assert len(sanitizer.observed_edges()) == 2


class TestReport:
    def test_report_and_dump_round_trip(self, sanitizer, tmp_path):
        import json

        a, b = _pair()
        with a._lock:
            with b._lock:
                pass
        path = tmp_path / "sanitize.json"
        sanitizer.dump(str(path))
        data = json.loads(path.read_text())
        assert data["locks_created"] >= 2
        assert data["inversions"] == []
        assert len(data["edges"]) == 1
        assert data["edges"][0]["first"] == a._lock.label()


class TestEnvInstall:
    def test_env_gate(self):
        assert install_from_env({"REPRO_SANITIZE": ""}) is None
        assert install_from_env({"REPRO_SANITIZE": "other"}) is None
        san = install_from_env({"REPRO_SANITIZE": "locks"})
        try:
            assert san is active()
            assert install() is san  # idempotent
        finally:
            uninstall()
        assert active() is None
