"""``repro top``: pure frame rendering plus the live ``--once`` path."""

import io
from contextlib import contextmanager

import numpy as np

from repro.cli import main
from repro.serving.queries import QuerySpec
from repro.serving.service import SkylineService
from repro.serving.top import Sample, render_frame, run_top

from tests.serving.harness import tcp_server


def _sample(polled_at=100.0, requests=40, shed=2):
    return Sample(
        stats={
            "uptime_s": 12.5,
            "datasets": {"qws": {"size": 300, "generation": 3}},
            "cache": {
                "hits": 9, "misses": 3, "entries": 3,
                "evictions": 1, "capacity": 128,
            },
            "queued": 1,
            "inflight_computes": 2,
            "counters": {
                "serve.requests": requests,
                "serve.computes": 12,
                "serve.coalesced": 4,
                "serve.shed": shed,
                "serve.degraded": 1,
                "serve.mutations": 5,
            },
            "gauges": {
                "partition.skew.qws.max_min_ratio": 2.5,
                "partition.skew.qws.imbalance": 1.2,
            },
            "latency": {
                "count": 12, "sum": 0.6, "mean": 0.05, "min": 0.001,
                "max": 0.2, "p50": 0.04, "p90": 0.1, "p99": 0.18,
                "overflow": 0,
            },
            "events": {"serve.shed": 2},
        },
        health={"status": "degraded", "slo_state": "ticket"},
        slo={
            "state": "ticket",
            "objectives": [{
                "name": "availability", "target": 0.999,
                "state": "ticket",
                "windows": {
                    "5m": {"total": 40, "good": 39, "error_rate": 0.025,
                           "burn_rate": 25.0},
                    "1h": {"total": 40, "good": 39, "error_rate": 0.025,
                           "burn_rate": 25.0},
                    "6h": {"total": 40, "good": 39, "error_rate": 0.025,
                           "burn_rate": 25.0},
                    "3d": {"total": 40, "good": 39, "error_rate": 0.025,
                           "burn_rate": 25.0},
                },
            }],
        },
        events=[
            {"seq": 7, "ts": 99.0, "kind": "serve.shed",
             "dataset": "qws", "reason": "queue_full"},
        ],
        polled_at=polled_at,
    )


class TestRenderFrame:
    def test_single_frame_shows_every_section(self):
        frame = render_frame(_sample(), target="127.0.0.1:9999")
        assert "[WARN]" in frame  # degraded health tag
        assert "requests 40" in frame
        assert "shed 2" in frame
        assert "cache 75.0% hit" in frame
        assert "p50 40.0ms" in frame and "p99 180.0ms" in frame
        assert "availability" in frame and "[TICKET]" in frame
        assert "25.00x" in frame
        assert "qws" in frame and "2.50" in frame  # skew column
        assert "#7 serve.shed" in frame and "reason=queue_full" in frame
        assert "\x1b" not in frame, "render_frame must stay escape-free"

    def test_rates_computed_from_previous_sample(self):
        previous = _sample(polled_at=100.0, requests=40)
        current = _sample(polled_at=102.0, requests=50)
        frame = render_frame(current, previous)
        assert "(5.0/s)" in frame  # 10 requests over 2s

    def test_counter_reset_clamps_rate_to_zero(self):
        previous = _sample(polled_at=100.0, requests=40)
        current = _sample(polled_at=102.0, requests=3)  # server restarted
        frame = render_frame(current, previous)
        assert "(0.0/s)" in frame

    def test_empty_service_renders(self):
        sample = Sample(
            stats={"counters": {}, "gauges": {}, "cache": {},
                   "datasets": {}, "latency": {}},
            health={"status": "healthy"},
            slo={"state": "ok", "objectives": []},
            events=[],
            polled_at=1.0,
        )
        frame = render_frame(sample)
        assert "(none registered)" in frame
        assert "latency (no samples yet)" in frame
        assert "events: (none)" in frame


@contextmanager
def _live_server():
    service = SkylineService()
    service.register(
        "qws", np.random.default_rng(1).random((80, 3)) + 0.01
    )
    service.query(QuerySpec(dataset="qws"))  # seed latency + counters
    with tcp_server(service) as address:
        yield address


class TestLiveTop:
    def test_run_top_once_against_tcp_server(self):
        with _live_server() as (host, port):
            out = io.StringIO()
            rc = run_top(host, port, once=True, out=out)
        assert rc == 0
        frame = out.getvalue()
        assert "repro top" in frame and "[OK]" in frame
        assert "qws" in frame

    def test_cli_top_once(self, capsys):
        with _live_server() as (host, port):
            rc = main(["top", "--tcp", f"{host}:{port}", "--once"])
        assert rc == 0
        frame = capsys.readouterr().out
        assert "datasets:" in frame and "qws" in frame
        assert "slo:" in frame

    def test_cli_top_count_two_frames(self, capsys):
        with _live_server() as (host, port):
            rc = main([
                "top", "--tcp", f"{host}:{port}",
                "--count", "2", "--interval", "0.05",
            ])
        assert rc == 0
        frames = capsys.readouterr().out
        assert frames.count("repro top") == 2

    def test_connection_refused_exits_nonzero(self, capsys):
        rc = run_top("127.0.0.1", 1, once=True, out=io.StringIO())
        assert rc == 1
        assert "cannot connect" in capsys.readouterr().err

    def test_cli_rejects_bad_target(self, capsys):
        assert main(["top", "--tcp", "no-port", "--once"]) == 2
