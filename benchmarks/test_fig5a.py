"""Figure 5(a): processing time vs dimension, small cardinality (N=1,000).

Regenerates the paper's left-hand time plot.  Shape assertions: MR-Angle's
simulated processing time never exceeds the other two methods at any
dimension (the paper reports MR-Grid 6–16 % and MR-Dim 18–45 % higher).
"""

from repro.bench.experiments import figure5


def test_fig5a(benchmark, scale, cache):
    table = benchmark.pedantic(
        lambda: figure5(
            scale.small_n, dims=scale.dims, cluster=scale.cluster, cache=cache
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(table.render())
    angle = table.column("MR-Angle")
    for other in ("MR-Dim", "MR-Grid"):
        for a, o in zip(angle, table.column(other)):
            assert a <= o * 1.02, f"MR-Angle slower than {other}: {a} vs {o}"
