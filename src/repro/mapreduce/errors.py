"""Exception hierarchy for the MapReduce engine.

All engine-raised exceptions derive from :class:`EngineError`, so callers can
catch one type.  Configuration mistakes raise :class:`JobConfigError` at job
submission time (fail fast, before any task runs); failures inside user map /
reduce code are wrapped in :class:`TaskError` with the task id attached; a job
whose tasks exhausted their retries raises :class:`JobFailedError`.
"""

from __future__ import annotations


class EngineError(Exception):
    """Base class for all MapReduce engine errors."""


class JobConfigError(EngineError):
    """The job configuration is invalid (detected before execution starts)."""


class TaskError(EngineError):
    """A map or reduce task failed while executing user code.

    Attributes
    ----------
    task_id:
        Engine-assigned identifier such as ``"map-3"`` or ``"reduce-0"``.
    cause:
        The original exception raised by user code (also chained via
        ``__cause__`` when re-raised).
    """

    def __init__(self, task_id: str, cause: BaseException | str):
        self.task_id = task_id
        self.cause = cause
        super().__init__(f"task {task_id} failed: {cause!r}")

    def __reduce__(self):
        # Default exception pickling replays __init__ with self.args (the
        # formatted message), which doesn't match this signature — a failed
        # worker task would then break the whole process pool and mask the
        # real error as BrokenProcessPool.  Rebuild from the true fields,
        # degrading an unpicklable cause to its repr.
        import pickle

        cause = self.cause
        if not isinstance(cause, str):
            try:
                pickle.dumps(cause)
            except (pickle.PicklingError, TypeError, AttributeError) as exc:
                # The narrow trio pickle actually raises for unpicklable
                # values: PicklingError (protocol refusals), TypeError
                # (e.g. locks, generators), AttributeError (unimportable
                # qualnames).  Anything else propagates — a swallow here
                # would mask the real failure as BrokenProcessPool.
                cause = f"{cause!r} (unpicklable: {exc})"
        return (type(self), (self.task_id, cause))


class TaskTimeoutError(TaskError):
    """A task attempt exceeded its wall-clock budget.

    Raised worker-side by cooperative hangs (see
    :mod:`repro.mapreduce.faults`) and driver-side when the runner abandons
    a future past its ``RetryPolicy.task_timeout_s`` deadline.  Counts as a
    retryable failure like any other :class:`TaskError`.
    """

    def __init__(self, task_id: str, timeout_s: float):
        self.timeout_s = timeout_s
        # TaskError.__init__ sets task_id/cause and the formatted message.
        super().__init__(task_id, f"timed out after {timeout_s:.3f}s")

    def __reduce__(self):
        # TaskError.__reduce__ replays (task_id, cause), which doesn't match
        # this signature — rebuild from (task_id, timeout_s) instead so the
        # exception survives the process-pool result channel intact.
        return (type(self), (self.task_id, self.timeout_s))


class PartitionLostError(EngineError):
    """A partition's task was terminally lost (retries exhausted).

    Surfaces from :meth:`repro.mapreduce.job.JobResult.require_complete`
    when a caller demands a complete result from a degraded-mode run.
    """

    def __init__(self, job_name: str, lost: list[str]):
        self.job_name = job_name
        self.lost = list(lost)
        super().__init__(
            f"job {job_name!r} lost partitions: {', '.join(self.lost)}"
        )


class JobFailedError(EngineError):
    """A job could not complete because one or more tasks failed terminally.

    Attributes
    ----------
    failures:
        The terminal :class:`TaskError` of every failed task.
    completed_stats:
        ``TaskStats`` of the tasks that *did* finish before the job died
        (same phase), so a failed job still yields partial timing data —
        the runner also emits these as trace spans before raising.
    """

    def __init__(
        self,
        job_name: str,
        failures: list[TaskError],
        completed_stats: list | None = None,
    ):
        self.job_name = job_name
        self.failures = failures
        self.completed_stats = list(completed_stats or [])
        detail = "; ".join(str(f) for f in failures[:3])
        more = "" if len(failures) <= 3 else f" (+{len(failures) - 3} more)"
        super().__init__(f"job {job_name!r} failed: {detail}{more}")


class FileSystemError(EngineError):
    """Raised by :mod:`repro.mapreduce.fs` for missing paths, overwrite
    conflicts, and malformed block operations."""


class SerializationError(EngineError):
    """A record could not be encoded to, or decoded from, bytes."""
