#!/usr/bin/env python
"""Online skyline query service — the serving layer end to end.

The batch pipeline answers one query per run; the serving layer keeps the
per-partition skyline state resident and answers many queries against it.
This demo drives a :class:`repro.serving.SkylineService` in process:

1. register a QWS-like dataset (cold load through the store),
2. show the versioned cache at work (miss -> hit, then a mutation bumps
   the generation and invalidates by construction),
3. answer all four query kinds and check them against the from-scratch
   reference (:func:`repro.serving.evaluate`),
4. show the degraded stale-answer path under induced overload,
5. dump the serve-path counters.

Run:  python examples/serving_demo.py
"""

import numpy as np

from repro.serving import (
    QuerySpec,
    ServeConfig,
    ServiceOverloadedError,
    SkylineService,
    evaluate,
)
from repro.services import generate_qws


def main() -> None:
    service = SkylineService(ServeConfig(max_inflight=2, max_queue=4))
    points = generate_qws(2_000, seed=5).qos_matrix(4)
    service.register("qws", points)
    print(f"registered 'qws': {points.shape[0]} services, "
          f"generation {service.store('qws').generation}")

    # -- versioned cache: miss, hit, invalidation by generation ------------------
    spec = QuerySpec(dataset="qws")
    first = service.query(spec)
    warm = service.query(spec)
    print(f"\nskyline: {len(first.ids)} services "
          f"(cache {'hit' if first.cache_hit else 'miss'} then "
          f"{'hit' if warm.cache_hit else 'miss'}, "
          f"generation {warm.generation})")

    new_id, generation = service.insert("qws", [0.01, 0.01, 0.01, 0.01])
    after = service.query(spec)
    print(f"inserted service {new_id}: generation {generation}, re-query is a "
          f"cache {'hit' if after.cache_hit else 'miss'} "
          f"({len(after.ids)} services)")
    service.remove("qws", new_id)

    # -- all four query kinds vs the from-scratch reference ----------------------
    print("\nquery kinds (served == from-scratch batch computation):")
    snap = service.store("qws").snapshot()
    # QoS constraints: only services in the best 60% of every attribute.
    upper = tuple(float(v) for v in np.quantile(snap.rows, 0.6, axis=0))
    lower = tuple(float(v) for v in snap.rows.min(axis=0))
    for spec in (
        QuerySpec(dataset="qws"),
        QuerySpec(dataset="qws", kind="skyband", k=3),
        QuerySpec(dataset="qws", kind="constrained", lower=lower, upper=upper),
        QuerySpec(dataset="qws", kind="subspace", dims=(0, 2)),
    ):
        response = service.query(spec)
        reference = evaluate(spec, snap.ids, snap.rows)
        ok = "OK" if response.ids == reference else "MISMATCH"
        print(f"  {spec.describe():<42} {len(response.ids):>4} results  {ok}")

    # -- overload: degraded stale answers instead of errors ----------------------
    print("\ninduced overload (admission capacity exhausted):")
    permits = []
    while service._admission.acquire(blocking=False):
        permits.append(1)
    try:
        # With every permit held, the request queues until its deadline
        # expires, then sheds to the newest cached answer.
        shed = service.query(QuerySpec(dataset="qws"), deadline_s=0.1)
        print(f"  degraded={shed.degraded} status={shed.status} "
              f"generation={shed.generation} (newest cached answer)")
    except ServiceOverloadedError as exc:
        print(f"  rejected: {exc}")
    finally:
        for _ in permits:
            service._admission.release()

    print("\nserve-path counters:")
    for name, value in sorted(service.stats()["counters"].items()):
        print(f"  {name:<28} {value}")


if __name__ == "__main__":
    main()
