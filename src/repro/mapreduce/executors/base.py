"""The :class:`Executor` protocol: *where* tasks run, and nothing else.

The unified :class:`~repro.mapreduce.runner.Runner` owns all orchestration —
splits, retries, the streaming shuffle, tracing, stats — and delegates only
the question "run this callable, give me a future" to an executor.  The
lifecycle is deliberately tiny:

* :meth:`Executor.submit` — schedule one task body, return a
  :class:`concurrent.futures.Future` (the runner drains futures with
  :func:`concurrent.futures.wait`),
* :meth:`Executor.shutdown` — release pools/workers,
* the context-manager protocol, equivalent to ``shutdown()`` on exit.

Two capability flags drive the runner's behaviour:

``inline``
    ``True`` means ``submit`` executes the task *during the call*, in the
    caller's thread (the serial executor).  The runner then traces real
    nested task spans and skips all overlap machinery — inline execution
    is what gives the measurement path its clean per-task timings.
``name``
    Stable identifier (``"serial"`` / ``"threads"`` / ``"processes"``)
    recorded on every task span's ``executor`` attribute and in bench
    metadata, so traces and ``BENCH_*.json`` files say where tasks ran.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from concurrent.futures import Future
from typing import Any, Callable

__all__ = ["Executor"]


class Executor(ABC):
    """Task execution strategy consumed by the unified runner."""

    #: Stable identifier stamped on task spans and bench metadata.
    name: str = "abstract"

    #: ``True`` when ``submit`` runs the task synchronously in the caller.
    inline: bool = False

    @abstractmethod
    def submit(self, fn: Callable[..., Any], /, *args: Any) -> Future:
        """Schedule ``fn(*args)``; return a future with its result."""

    def cancel(self, future: Future) -> bool:
        """Best-effort cancellation of one submitted task.

        Returns ``True`` only when the task was prevented from running.
        Pool executors cannot interrupt an *already running* task body —
        ``Future.cancel`` fails then, and the runner simply abandons the
        future (never reads its result) and marks the worker suspect.  The
        serial executor has nothing to cancel: its futures resolve during
        ``submit``.
        """
        return future.cancel()

    def shutdown(self, wait: bool = True) -> None:
        """Release any worker pools; idempotent.  Default: nothing to do."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
