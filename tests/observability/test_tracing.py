"""Tests for repro.observability.tracing."""

import io

import pytest

from repro.observability.tracing import (
    NULL_TRACER,
    JsonLinesExporter,
    Span,
    Tracer,
    get_tracer,
    now_ns,
    read_trace,
    set_tracer,
    spans_of,
)


class TestSpanNesting:
    def test_parent_child_ids(self):
        tracer = Tracer(keep_spans=True)
        with tracer.span("job", kind="job") as job:
            with tracer.span("map", kind="phase") as phase:
                with tracer.span("map-0", kind="task") as task:
                    pass
        assert job.parent_id is None
        assert phase.parent_id == job.span_id
        assert task.parent_id == phase.span_id
        # All three share the root's trace id.
        assert {s.trace_id for s in (job, phase, task)} == {job.trace_id}

    def test_siblings_share_parent(self):
        tracer = Tracer(keep_spans=True)
        with tracer.span("job") as job:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == b.parent_id == job.span_id
        assert a.span_id != b.span_id

    def test_separate_roots_get_separate_traces(self):
        tracer = Tracer(keep_spans=True)
        with tracer.span("one") as one:
            pass
        with tracer.span("two") as two:
            pass
        assert one.trace_id != two.trace_id

    def test_current_span(self):
        tracer = Tracer()
        assert tracer.current_span() is None
        with tracer.span("outer") as outer:
            assert tracer.current_span() is outer
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert tracer.current_span() is None

    def test_deterministic_ids(self):
        ids = []
        for _ in range(2):
            tracer = Tracer(keep_spans=True)
            with tracer.span("a"):
                with tracer.span("b"):
                    pass
            ids.append([(s.trace_id, s.span_id, s.parent_id) for s in tracer.finished])
        assert ids[0] == ids[1]


class TestClocks:
    def test_monotonic_and_nested_containment(self):
        tracer = Tracer(keep_spans=True)
        before = now_ns()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        after = now_ns()
        assert before <= outer.start_ns <= inner.start_ns
        assert inner.end_ns <= outer.end_ns <= after
        assert outer.duration_ns >= inner.duration_ns >= 0
        assert outer.duration_s >= 0.0

    def test_durations_accumulate_across_sequence(self):
        tracer = Tracer(keep_spans=True)
        with tracer.span("job") as job:
            with tracer.span("p1") as p1:
                pass
            with tracer.span("p2") as p2:
                pass
        assert p1.duration_ns + p2.duration_ns <= job.duration_ns


class TestErrorStatus:
    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer(keep_spans=True)
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("job"):
                with tracer.span("task"):
                    raise RuntimeError("boom")
        statuses = {s.name: s.status for s in tracer.finished}
        assert statuses == {"task": "error", "job": "error"}

    def test_spans_exported_despite_error(self):
        buf = io.StringIO()
        tracer = Tracer(JsonLinesExporter(buf))
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("x")
        spans = spans_of(read_trace(io.StringIO(buf.getvalue())))
        assert [s.name for s in spans] == ["doomed"]
        assert spans[0].status == "error"


class TestRecordSpan:
    def test_synthetic_backdated(self):
        tracer = Tracer(keep_spans=True)
        span = tracer.record_span("mp-task", kind="task", duration_ns=5_000_000)
        assert span.attrs["synthetic"] is True
        assert span.duration_ns == 5_000_000
        assert span.end_ns is not None

    def test_parented_under_open_span(self):
        tracer = Tracer(keep_spans=True)
        with tracer.span("phase") as phase:
            child = tracer.record_span("t", kind="task", duration_ns=1)
        assert child.parent_id == phase.span_id

    def test_error_status_and_attrs(self):
        tracer = Tracer(keep_spans=True)
        span = tracer.record_span(
            "t", kind="task", duration_ns=10, status="error", error="died"
        )
        assert span.status == "error"
        assert span.attrs["error"] == "died"


class TestDisabledTracer:
    def test_span_is_shared_noop(self):
        tracer = Tracer(enabled=False)
        cm1 = tracer.span("a", kind="job", foo=1)
        cm2 = tracer.span("b")
        assert cm1 is cm2  # no per-call allocation on the disabled path
        with cm1 as span:
            span.set_attr("x", 1)
            span.set_attrs(y=2)
        assert span.attrs == {}
        assert span.duration_ns == 0

    def test_record_span_noop(self):
        tracer = Tracer(enabled=False, keep_spans=True)
        tracer.record_span("t", duration_ns=123)
        assert tracer.finished == []

    def test_null_tracer_is_default(self):
        assert get_tracer() is NULL_TRACER
        assert not get_tracer().enabled

    def test_set_tracer_roundtrip(self):
        custom = Tracer()
        assert set_tracer(custom) is custom
        assert get_tracer() is custom
        set_tracer(None)
        assert get_tracer() is NULL_TRACER


class TestCapture:
    def test_collects_finished_spans(self):
        tracer = Tracer()
        with tracer.capture() as spans:
            with tracer.span("a"):
                with tracer.span("b"):
                    pass
        assert [s.name for s in spans] == ["b", "a"]  # finish order
        with tracer.capture() as again:
            pass
        assert again == []  # buckets don't leak between captures

    def test_nested_captures_both_see_spans(self):
        tracer = Tracer()
        with tracer.capture() as outer:
            with tracer.capture() as inner:
                with tracer.span("x"):
                    pass
        assert [s.name for s in inner] == ["x"]
        assert [s.name for s in outer] == ["x"]


class TestSerialization:
    def test_to_from_dict_round_trip(self):
        tracer = Tracer(keep_spans=True)
        with tracer.span("job", kind="job", n=1000, label="x"):
            pass
        original = tracer.finished[0]
        restored = Span.from_dict(original.to_dict())
        for attr in (
            "name",
            "kind",
            "trace_id",
            "span_id",
            "parent_id",
            "start_ns",
            "end_ns",
            "status",
            "attrs",
        ):
            assert getattr(restored, attr) == getattr(original, attr)

    def test_read_trace_rejects_bad_json(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            read_trace(io.StringIO("{nope\n"))

    def test_read_trace_rejects_missing_type(self):
        with pytest.raises(ValueError, match="missing a 'type'"):
            read_trace(io.StringIO('{"name": "a"}\n'))

    def test_read_trace_rejects_incomplete_span(self):
        with pytest.raises(ValueError, match="missing"):
            read_trace(io.StringIO('{"type": "span", "name": "a"}\n'))

    def test_read_trace_skips_blank_lines(self):
        buf = io.StringIO()
        tracer = Tracer(JsonLinesExporter(buf))
        with tracer.span("a"):
            pass
        records = read_trace(io.StringIO(buf.getvalue() + "\n\n"))
        assert len(records) == 1
