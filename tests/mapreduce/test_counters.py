"""Tests for repro.mapreduce.counters."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mapreduce.counters import FRAMEWORK_GROUP, Counters


class TestIncrement:
    def test_starts_at_zero(self):
        c = Counters()
        assert c.value("g", "n") == 0

    def test_single_increment(self):
        c = Counters()
        c.increment("g", "n")
        assert c.value("g", "n") == 1

    def test_increment_amount(self):
        c = Counters()
        c.increment("g", "n", 5)
        c.increment("g", "n", 7)
        assert c.value("g", "n") == 12

    def test_negative_amount_allowed(self):
        c = Counters()
        c.increment("g", "n", -3)
        assert c.value("g", "n") == -3

    def test_non_int_amount_rejected(self):
        c = Counters()
        with pytest.raises(TypeError):
            c.increment("g", "n", 1.5)

    def test_bool_amount_rejected(self):
        # bool is an int subclass; passing one is always an upstream bug.
        c = Counters()
        with pytest.raises(TypeError):
            c.increment("g", "n", True)
        with pytest.raises(TypeError):
            c.increment("g", "n", False)
        assert c.value("g", "n") == 0

    def test_groups_are_independent(self):
        c = Counters()
        c.increment("a", "n", 1)
        c.increment("b", "n", 2)
        assert c.value("a", "n") == 1
        assert c.value("b", "n") == 2

    def test_framework_shortcut(self):
        c = Counters()
        c.framework("spills", 3)
        assert c.value(FRAMEWORK_GROUP, "spills") == 3


class TestMerge:
    def test_merge_adds(self):
        a, b = Counters(), Counters()
        a.increment("g", "x", 1)
        b.increment("g", "x", 2)
        b.increment("g", "y", 5)
        a.merge(b)
        assert a.value("g", "x") == 3
        assert a.value("g", "y") == 5

    def test_merge_does_not_mutate_source(self):
        a, b = Counters(), Counters()
        b.increment("g", "x", 2)
        a.merge(b)
        a.increment("g", "x", 10)
        assert b.value("g", "x") == 2

    def test_merge_empty_is_noop(self):
        a = Counters()
        a.increment("g", "x", 4)
        a.merge(Counters())
        assert a.value("g", "x") == 4


_counter_dicts = st.dictionaries(
    keys=st.text(min_size=1, max_size=8),
    values=st.dictionaries(
        keys=st.text(min_size=1, max_size=8),
        values=st.integers(min_value=-(10**12), max_value=10**12),
        max_size=5,
    ),
    max_size=4,
)


def _from_dict(data: dict) -> Counters:
    c = Counters()
    for group, names in data.items():
        for name, val in names.items():
            c.increment(group, name, val)
    return c


class TestMergeProperties:
    @given(_counter_dicts, _counter_dicts)
    def test_merge_round_trip(self, left, right):
        """merge() is exactly per-(group, name) addition: rebuilding a
        Counters from the merged as_dict() reproduces the merge."""
        a, b = _from_dict(left), _from_dict(right)
        expected = {}
        for data in (left, right):
            for group, names in data.items():
                for name, val in names.items():
                    expected.setdefault(group, {})[name] = (
                        expected.get(group, {}).get(name, 0) + val
                    )
        a.merge(b)
        assert a.as_dict() == expected
        assert _from_dict(a.as_dict()) == a

    @given(_counter_dicts, _counter_dicts)
    def test_merge_is_commutative(self, left, right):
        ab = _from_dict(left)
        ab.merge(_from_dict(right))
        ba = _from_dict(right)
        ba.merge(_from_dict(left))
        assert ab == ba


class TestViews:
    def test_group_snapshot_is_copy(self):
        c = Counters()
        c.increment("g", "x", 1)
        snap = c.group("g")
        c.increment("g", "x", 1)
        assert snap["x"] == 1

    def test_as_dict_round_trip(self):
        c = Counters()
        c.increment("g1", "a", 1)
        c.increment("g2", "b", 2)
        assert c.as_dict() == {"g1": {"a": 1}, "g2": {"b": 2}}

    def test_iteration_sorted(self):
        c = Counters()
        c.increment("b", "z", 1)
        c.increment("a", "y", 2)
        c.increment("a", "x", 3)
        assert list(c) == [("a", "x", 3), ("a", "y", 2), ("b", "z", 1)]

    def test_len_counts_names(self):
        c = Counters()
        c.increment("g", "a")
        c.increment("g", "b")
        c.increment("h", "a")
        assert len(c) == 3

    def test_equality(self):
        a, b = Counters(), Counters()
        a.increment("g", "x", 2)
        b.increment("g", "x", 1)
        assert a != b
        b.increment("g", "x", 1)
        assert a == b

    def test_equality_other_type(self):
        assert Counters() != 42
