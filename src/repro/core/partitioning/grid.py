"""Grid partitioning — the MR-Grid scheme (§III-B).

The data space is cut into an equal-width grid using *all* dimensions ("in
the simplest case, two dimensions are utilized, and the 2-dimensional data
space is divided into 4 partitions by setting the range of partition in each
dimension is the half value of the maximum one").

MR-Grid's advantage over MR-Dim is *dominated-cell pruning*: a cell whose
lower corner is dominated by some non-empty cell's upper corner cannot
contain any skyline point, so its local skyline need not be computed at all
("the bottom-left partition dominates the up-right partition").
:meth:`GridPartitioner.pruned_cells` returns those cells, and
:meth:`prunable_mask` flags the points that may be dropped at Map time.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.partitioning.base import SpacePartitioner

__all__ = ["GridPartitioner", "balanced_axis_counts"]


def balanced_axis_counts(target: int, axes: int) -> list[int]:
    """Per-axis cell counts whose product is as close to ``target`` as
    possible without exceeding it, kept as even as possible across axes.

    Greedy: repeatedly increment the axis with the smallest count while the
    product stays within ``target``.  ``axes == 0`` returns ``[]`` (a single
    implicit cell).
    """
    if target < 1:
        raise ValueError(f"target must be >= 1, got {target}")
    if axes < 0:
        raise ValueError(f"axes must be >= 0, got {axes}")
    counts = [1] * axes
    product = 1
    progressed = True
    while progressed:
        progressed = False
        for i in sorted(range(axes), key=lambda j: (counts[j], j)):
            candidate = product // counts[i] * (counts[i] + 1)
            if candidate <= target:
                counts[i] += 1
                product = candidate
                progressed = True
                break
    return counts


class GridPartitioner(SpacePartitioner):
    """Equal-width grid over every dimension.

    Parameters
    ----------
    num_partitions:
        *Requested* cell budget.  The fitted grid uses per-axis counts whose
        product is ≤ this budget (see :func:`balanced_axis_counts`); the
        effective count is ``num_partitions`` after :meth:`fit`.
    cells_per_dim:
        Explicit per-axis counts, overriding the budget heuristic.
    bins:
        ``"equal-width"`` (the paper's Vmax/Np rule) or ``"quantile"``
        (per-axis equal-count boundaries; load-balanced ablation variant —
        dominated-cell pruning stays valid because cells remain axis-aligned
        boxes).
    """

    scheme = "grid"

    def __init__(
        self,
        num_partitions: int,
        *,
        cells_per_dim: Sequence[int] | None = None,
        bins: str = "equal-width",
    ) -> None:
        super().__init__(num_partitions)
        self._requested = num_partitions
        if bins not in ("equal-width", "quantile"):
            raise ValueError(f"unknown bins mode {bins!r}")
        self.bins = bins
        if cells_per_dim is not None:
            counts = [int(c) for c in cells_per_dim]
            if any(c < 1 for c in counts):
                raise ValueError(f"cells_per_dim must be >= 1 each, got {counts}")
            self._counts: list[int] | None = counts
        else:
            self._counts = None
        self._vmax: np.ndarray | None = None
        self._widths: np.ndarray | None = None
        self._edges: list[np.ndarray] | None = None
        self._radix: np.ndarray | None = None
        self._occupied: np.ndarray | None = None

    # -- fitting -----------------------------------------------------------------

    def _fit(self, points: np.ndarray) -> None:
        d = points.shape[1]
        if self._counts is None:
            self._counts = balanced_axis_counts(self._requested, d)
        elif len(self._counts) != d:
            raise ValueError(
                f"cells_per_dim has {len(self._counts)} entries for "
                f"{d}-dimensional data"
            )
        counts = np.array(self._counts, dtype=np.int64)
        self.num_partitions = int(counts.prod())
        self._vmax = points.max(axis=0)
        widths = np.where(self._vmax > 0, self._vmax / counts, np.inf)
        # Subnormal vmax can underflow the division to 0; such a column is
        # effectively degenerate — use one slab for it.
        widths = np.where(widths > 0, widths, np.inf)
        self._widths = widths
        if self.bins == "quantile":
            self._edges = [
                np.quantile(points[:, j], np.linspace(0, 1, counts[j] + 1)[1:-1])
                for j in range(d)
            ]
        else:
            self._edges = None
        # Mixed-radix weights: id = Σ cell_coord[i] * radix[i].
        radix = np.ones(d, dtype=np.int64)
        for i in range(d - 2, -1, -1):
            radix[i] = radix[i + 1] * counts[i + 1]
        self._radix = radix
        self._occupied = np.zeros(self.num_partitions, dtype=bool)
        self._occupied[np.unique(self._assign(points))] = True

    def _cell_coords(self, points: np.ndarray) -> np.ndarray:
        limits = np.array(self._counts, dtype=np.int64) - 1
        if self._edges is not None:
            coords = np.column_stack(
                [
                    np.searchsorted(self._edges[j], points[:, j], side="right")
                    for j in range(points.shape[1])
                ]
            ).astype(np.int64)
        else:
            coords = np.floor(points / self._widths).astype(np.int64)
        return np.clip(coords, 0, limits)

    def _assign(self, points: np.ndarray) -> np.ndarray:
        if points.shape[1] != len(self._counts):
            raise ValueError(
                f"expected {len(self._counts)}-dimensional points, "
                f"got {points.shape[1]}"
            )
        return self._cell_coords(points) @ self._radix

    # -- dominated-cell pruning -----------------------------------------------------

    def cell_coordinates(self, cell_id: int) -> tuple[int, ...]:
        """Inverse of the mixed-radix cell id."""
        coords = []
        remainder = int(cell_id)
        for weight in self._radix:
            coords.append(remainder // int(weight))
            remainder %= int(weight)
        return tuple(coords)

    def pruned_cells(self) -> np.ndarray:
        """Cell ids that cannot contain skyline points.

        A cell ``B`` is pruned when some *non-empty* cell ``A`` satisfies
        ``A_i + 1 ≤ B_i`` in every axis: with half-open cells, every point of
        ``A`` then strictly dominates every point of ``B``.  Occupancy is
        taken from the fit-time data.
        """
        if self._occupied is None:
            raise RuntimeError("call fit() first")
        occupied_ids = np.flatnonzero(self._occupied)
        if occupied_ids.size == 0:
            return np.empty(0, dtype=np.int64)
        occupied_coords = np.array(
            [self.cell_coordinates(c) for c in occupied_ids], dtype=np.int64
        )
        all_coords = np.array(
            [self.cell_coordinates(c) for c in range(self.num_partitions)],
            dtype=np.int64,
        )
        # dominated[b] = any occupied cell a with a + 1 <= b in all axes
        dom = (occupied_coords[:, None, :] + 1 <= all_coords[None, :, :]).all(axis=2)
        return np.flatnonzero(dom.any(axis=0)).astype(np.int64)

    def prunable_mask(self, points: np.ndarray) -> np.ndarray:
        """True for points falling in pruned cells (safe to drop at Map time)."""
        ids = self.assign(points)
        pruned = np.zeros(self.num_partitions, dtype=bool)
        pruned[self.pruned_cells()] = True
        return pruned[ids]

    def _detail(self) -> Mapping[str, object]:
        return {
            "cells_per_dim": list(self._counts) if self._counts else None,
            "requested_partitions": self._requested,
            "vmax": None if self._vmax is None else self._vmax.tolist(),
            "pruned_cells": (
                int(self.pruned_cells().size) if self._occupied is not None else None
            ),
        }

    def _trace_attrs(self) -> Mapping[str, object]:
        return {
            "cells_per_dim": list(self._counts) if self._counts else [],
            "occupied_cells": (
                int(self._occupied.sum()) if self._occupied is not None else 0
            ),
            "pruned_cells": (
                int(self.pruned_cells().size) if self._occupied is not None else 0
            ),
        }
