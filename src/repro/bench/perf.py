"""The perf-trajectory suite behind ``repro bench``.

One fixed, fast set of measurements re-run every PR, so the repository
accumulates a comparable performance record (``BENCH_<pr>.json``) instead
of an empty trajectory:

* **engine** — one :func:`repro.bench.harness.run_point` cell per
  partitioning scheme (MR-Dim / MR-Grid / MR-Angle) at a fixed
  ``(n, d)``: driver wall time, simulated cluster seconds, dominance-test
  counts, skyline sizes, optimality;
* **serving** — the online layer's latencies on a fixed store: cold
  compute, warm cache hit, insert + re-query (the invalidation round
  trip), and a k-skyband compute, measured with
  :func:`time.perf_counter` medians over a few repetitions.

The JSON record is schema-versioned and self-describing; ``repro bench
--json BENCH_5.json`` is how a PR refreshes its point on the trajectory.
"""

from __future__ import annotations

import statistics
import subprocess
import time
from dataclasses import asdict
from typing import Any, Callable, Dict, List

import numpy as np

from repro.bench.harness import default_cache, run_point
from repro.bench.reporting import Table
from repro.core.kernels import get_kernel
from repro.core.mr_skyline import run_mr_skyline

__all__ = ["perf_trajectory", "render_trajectory"]

#: Record schema version; bump on breaking shape changes.
#: v4 adds the ``loadtest`` section (open-loop latency percentiles +
#: crash-recovery measurements from :mod:`repro.bench.loadtest`).
SCHEMA_VERSION = 4

_METHODS = ("dim", "grid", "angle")


def _median_latency_s(fn: Callable[[], Any], repeats: int) -> float:
    samples = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return float(statistics.median(samples))


def _engine_points(
    n: int, d: int, executor: str | None, kernel: str | None
) -> List[Dict[str, Any]]:
    points = []
    for method in _METHODS:
        record = run_point(method, n, d, executor=executor, kernel=kernel)
        row = asdict(record)
        row.pop("trace_summary", None)
        points.append(row)
    return points


def _kernel_showdown(n: int, d: int, *, method: str = "angle") -> Dict[str, Any]:
    """Scalar-vs-block head-to-head at one ``(n, d)`` cell.

    Both runs go through the identical MR pipeline; the scalar side runs
    the reference backend with pruning off (the historical configuration),
    the block side gets the full columnar + filter-pruning treatment.  The
    skylines must match index for index — the speedup is only meaningful
    on identical answers.
    """
    matrix = default_cache().matrix(n, d)
    runs: Dict[str, Any] = {}
    indices: Dict[str, np.ndarray] = {}
    for kernel, filter_k in (("scalar", 0), ("block", None)):
        result = run_mr_skyline(
            matrix, method=method, kernel=kernel, prune_filter_k=filter_k
        )
        indices[kernel] = result.global_indices
        runs[kernel] = {
            "driver_wall_s": round(result.processing_time_s, 6),
            "dominance_tests": result.dominance_tests,
            "points_pruned": result.points_pruned,
            "filter_points": result.filter_points,
            "global_skyline": int(result.global_indices.size),
        }
    return {
        "n": n,
        "d": d,
        "method": method,
        "identical_skyline": bool(
            np.array_equal(indices["scalar"], indices["block"])
        ),
        "speedup": round(
            runs["scalar"]["driver_wall_s"]
            / max(runs["block"]["driver_wall_s"], 1e-9),
            3,
        ),
        "scalar": runs["scalar"],
        "block": runs["block"],
    }


def _serving_latencies(
    n: int, d: int, repeats: int, kernel: str | None = None
) -> Dict[str, Any]:
    from repro.serving.queries import QuerySpec
    from repro.serving.service import ServeConfig, SkylineService

    matrix = default_cache().matrix(n, d)
    service = SkylineService(ServeConfig(cache_entries=64, kernel=kernel))
    service.register("bench", matrix)
    spec = QuerySpec(dataset="bench")
    skyband = QuerySpec(dataset="bench", kind="skyband", k=3)

    cold_s = _median_latency_s(lambda: service.query(spec), 1)
    warm_s = _median_latency_s(lambda: service.query(spec), repeats)

    def _mutate_and_requery() -> None:
        point_id, _ = service.insert("bench", matrix[0] * 1.01)
        service.query(spec)
        service.remove("bench", point_id)

    invalidate_s = _median_latency_s(_mutate_and_requery, repeats)
    skyband_s = _median_latency_s(lambda: service.query(skyband), 1)
    skyline_size = len(service.query(spec).ids)
    return {
        "n": n,
        "d": d,
        "repeats": repeats,
        "skyline_size": skyline_size,
        "cold_skyline_s": round(cold_s, 6),
        "warm_cache_hit_s": round(warm_s, 6),
        "insert_requery_s": round(invalidate_s, 6),
        "cold_skyband_s": round(skyband_s, 6),
        "cache": service.cache_stats(),
    }


def _cluster_traffic(
    n: int, d: int, kernel: str | None = None
) -> Dict[str, Any]:
    """Candidate traffic across the cluster wire on a correlated dataset.

    The communication-efficiency claim of the cluster layer (acceptance
    criterion of the differential suite): with broadcast filter points, the
    shards transmit strictly fewer candidates than they hold.  Correlated
    data is the friendly case — tiny skylines, so the filters dominate
    nearly everything before it crosses the wire.  Runs over a real
    3-shard loopback topology (:class:`LocalCluster`); the skyline query
    seeds the filters, the constrained re-query at the same generation
    vector then pays only the pruned wire cost.
    """
    from repro.data.generators import correlated
    from repro.serving.cluster import (
        ClusterConfig,
        ClusterCoordinator,
        LocalCluster,
    )
    from repro.serving.queries import QuerySpec

    matrix = correlated(n, d, seed=7)
    with LocalCluster(3) as cluster:
        coordinator = ClusterCoordinator(
            cluster.addresses(), config=ClusterConfig(kernel=kernel)
        )
        try:
            coordinator.register("bench", matrix, shard_fn="angle")
            spec = QuerySpec(dataset="bench", kind="skyline")
            cold_s = _median_latency_s(
                lambda: coordinator.query(spec), 1
            )
            constrained = QuerySpec(
                dataset="bench",
                kind="constrained",
                lower=(0.0,) * d,
                upper=(0.6,) * d,
            )
            constrained_s = _median_latency_s(
                lambda: coordinator.query(constrained), 1
            )
            stats = coordinator.stats()
            counters = stats.get("counters", {})
            held = int(counters.get("serve.cluster.points_held", 0))
            sent = int(counters.get("serve.cluster.candidates_received", 0))
            skyline_size = len(coordinator.query(spec).ids)
        finally:
            coordinator.close()
    return {
        "n": n,
        "d": d,
        "shards": 3,
        "shard_fn": "angle",
        "workload": "correlated",
        "skyline_size": skyline_size,
        "points_held": held,
        "candidates_sent": sent,
        "wire_reduction": round(1.0 - sent / held, 4) if held else 0.0,
        "filter_pruned": int(counters.get("serve.cluster.filter_pruned", 0)),
        "cold_skyline_s": round(cold_s, 6),
        "cold_constrained_s": round(constrained_s, 6),
        "communication_efficient": bool(held and sent < held),
    }


def _loadtest_section(quick: bool, kernel: str | None = None) -> Dict[str, Any]:
    """Open-loop traffic + SIGKILL/recovery over the real CLI and wire.

    Runs :func:`repro.bench.loadtest.run_scenario` against a spawned
    ``repro serve --tcp --data-dir`` subprocess: the latency percentiles
    are measured client-side under the configured offered load, the
    server is killed with ``SIGKILL`` mid-state, and recovery time +
    id-for-id parity are measured on the restart.  Failures (e.g. a
    sandbox that forbids subprocesses) degrade to an ``error`` field
    rather than sinking the whole bench run.
    """
    import tempfile

    from repro.bench.loadtest import LoadTestConfig, run_scenario

    config = LoadTestConfig(
        qps=100.0 if quick else 300.0,
        duration_s=1.0 if quick else 3.0,
        workers=4 if quick else 8,
        n_points=200 if quick else 800,
        dims=3,
        mutation_fraction=0.1,
        seed=0,
    )
    serve_args = ["--kernel", kernel] if kernel else []
    try:
        with tempfile.TemporaryDirectory() as tmp:
            return run_scenario(
                config,
                tmp,
                serve_args=serve_args,
                fsync="interval",
                snapshot_every=64,
            )
    except (OSError, RuntimeError, subprocess.SubprocessError) as exc:
        return {
            "error": f"{type(exc).__name__}: {exc}",
            "target_qps": config.qps,
        }


def perf_trajectory(
    *, quick: bool = False, executor: str | None = None, kernel: str | None = None
) -> Dict[str, Any]:
    """Run the fixed suite; returns the JSON-ready trajectory record.

    ``kernel`` selects the dominance backend of the engine and serving
    sections (``None`` resolves the process default).  The ``kernels``
    section always runs both backends head to head — at the paper's full
    scale (100 k × 10) in the full suite, at a small cell in quick mode.
    """
    n, d = (1_500, 4) if quick else (10_000, 6)
    serving_n = 1_000 if quick else 4_000
    repeats = 3 if quick else 5
    showdown_n, showdown_d = (4_000, 6) if quick else (100_000, 10)
    started = time.perf_counter()
    record: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "suite": "repro-bench",
        "quick": quick,
        "executor": executor or "serial",
        "kernel": get_kernel(kernel).name,
        "engine": _engine_points(n, d, executor, kernel),
        "serving": _serving_latencies(serving_n, d, repeats, kernel),
        "kernels": _kernel_showdown(showdown_n, showdown_d),
        "cluster": _cluster_traffic(
            8_000 if quick else 100_000, 4, kernel
        ),
        "loadtest": _loadtest_section(quick, kernel),
    }
    record["suite_wall_s"] = round(time.perf_counter() - started, 3)
    # Embed the process-wide metrics the suite itself generated — the
    # trajectory record then carries the serve/cache/skew series alongside
    # the wall-clock numbers, in the same JSON-safe snapshot shape the
    # `metrics` serving verb returns.
    from repro.observability.export import json_snapshot

    record["metrics"] = json_snapshot()
    return record


def render_trajectory(record: Dict[str, Any]) -> str:
    """Human-readable tables for one trajectory record."""
    engine = Table(
        title=f"perf trajectory — engine (quick={record['quick']})",
        columns=[
            "method", "n", "d", "kernel", "driver_wall_s", "sim_total_s",
            "dominance_tests", "points_pruned", "global_skyline", "optimality",
        ],
        precision=4,
    )
    for row in record["engine"]:
        engine.add_row(
            row["method"], row["n"], row["d"], row.get("kernel", "scalar"),
            row["driver_wall_s"], row["sim_total_s"], row["dominance_tests"],
            row.get("points_pruned", 0), row["global_skyline"],
            row["optimality"],
        )
    serving = record["serving"]
    serve = Table(
        title=f"perf trajectory — serving (n={serving['n']}, d={serving['d']})",
        columns=["metric", "seconds"],
        precision=6,
    )
    for metric in (
        "cold_skyline_s", "warm_cache_hit_s", "insert_requery_s",
        "cold_skyband_s",
    ):
        serve.add_row(metric, serving[metric])
    serve.add_note(
        f"skyline size {serving['skyline_size']}, "
        f"median of {serving['repeats']} repeats"
    )
    sections = [engine.render(), serve.render()]
    showdown = record.get("kernels")
    if showdown:
        kernels = Table(
            title=(
                f"perf trajectory — kernels "
                f"(n={showdown['n']}, d={showdown['d']}, "
                f"method={showdown['method']})"
            ),
            columns=[
                "kernel", "driver_wall_s", "dominance_tests",
                "points_pruned", "filter_points", "global_skyline",
            ],
            precision=4,
        )
        for name in ("scalar", "block"):
            run = showdown[name]
            kernels.add_row(
                name, run["driver_wall_s"], run["dominance_tests"],
                run["points_pruned"], run["filter_points"],
                run["global_skyline"],
            )
        kernels.add_note(
            f"block speedup {showdown['speedup']:g}x, identical skyline: "
            f"{showdown['identical_skyline']}"
        )
        sections.append(kernels.render())
    cluster = record.get("cluster")
    if cluster:
        table = Table(
            title=(
                f"perf trajectory — cluster wire "
                f"(n={cluster['n']}, d={cluster['d']}, "
                f"{cluster['shards']} shards, {cluster['workload']})"
            ),
            columns=["metric", "value"],
            precision=6,
        )
        for metric in (
            "points_held", "candidates_sent", "wire_reduction",
            "filter_pruned", "cold_skyline_s", "cold_constrained_s",
        ):
            table.add_row(metric, cluster[metric])
        table.add_note(
            f"skyline size {cluster['skyline_size']}, communication "
            f"efficient: {cluster['communication_efficient']}"
        )
        sections.append(table.render())
    loadtest = record.get("loadtest")
    if loadtest and "error" not in loadtest:
        table = Table(
            title=(
                f"perf trajectory — loadtest "
                f"(target {loadtest['target_qps']:g} qps, open loop)"
            ),
            columns=["metric", "value"],
            precision=6,
        )
        table.add_row("achieved_qps", loadtest["achieved_qps"])
        for pct in ("p50", "p95", "p99"):
            table.add_row(f"latency_{pct}_ms", loadtest["latency_ms"][pct])
        req = loadtest["requests"]
        for metric in ("sent", "answered", "shed", "degraded", "errors"):
            table.add_row(metric, req[metric])
        recovery = loadtest.get("recovery", {})
        if recovery:
            table.add_row("recovery_time_s", recovery["recovery_time_s"])
        durability = loadtest.get("durability", {})
        notes = []
        if recovery:
            notes.append(
                f"id-for-id recovery parity: {recovery['parity']}"
            )
        if durability:
            notes.append(
                f"{durability['records_replayed']} WAL record(s) replayed, "
                f"snapshot/raw ratio {durability['snapshot_to_raw_ratio']}"
            )
        if notes:
            table.add_note("; ".join(notes))
        sections.append(table.render())
    elif loadtest:
        sections.append(f"loadtest section skipped: {loadtest['error']}")
    return "\n\n".join(sections)
