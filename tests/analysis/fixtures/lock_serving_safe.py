"""Clean fixture for lock-discipline over serving-layer shared state.

The same store/cache/queue shapes as ``lock_serving_unsafe.py`` with every
write to lock-guarded attributes kept lexically under ``with self._lock``
(re-acquiring an RLock in helpers, as the serving store does).
"""

import threading


class GuardedStore:
    def __init__(self):
        self._lock = threading.RLock()
        self._generation = 0
        self._members = {}

    def insert(self, point_id, row):
        with self._lock:
            self._members[point_id] = row
            self._generation += 1

    def remove(self, point_id):
        with self._lock:
            self._members.pop(point_id, None)
            self._bump()

    def _bump(self):
        # Callers hold the RLock already; re-acquiring keeps the write
        # lexically guarded.
        with self._lock:
            self._generation += 1


class GuardedCache:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}

    def put(self, key, ids):
        with self._lock:
            self._entries[key] = ids

    def clear(self):
        with self._lock:
            self._entries = {}

    def peek(self, key):
        # Reads are outside the rule's scope; only writes must be guarded.
        return self._entries.get(key)


class GuardedQueue:
    def __init__(self):
        self._lock = threading.Lock()
        self._queued = 0

    def enter(self):
        with self._lock:
            self._queued += 1

    def leave(self):
        with self._lock:
            self._queued -= 1
