"""A bulk-loaded R-tree (Sort-Tile-Recursive packing).

Substrate for the BBS skyline algorithm (:mod:`repro.core.bbs`) — Papadias
et al.'s branch-and-bound skyline, which the paper cites as the classic
optimal single-machine method, needs a spatial index whose entries can be
visited in mindist order.

The tree is static: built once over a point set with STR bulk loading
(Leutenegger et al., 1997), which packs leaves by sorting points into
tiles along successive dimensions.  Nodes store minimum bounding rectangles
(MBRs); leaves store point indices into the input array.  That is all BBS
requires, and it keeps the structure simple enough to verify exhaustively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.core.dominance import validate_points

__all__ = ["RTree", "RTreeNode", "DEFAULT_LEAF_CAPACITY"]

DEFAULT_LEAF_CAPACITY = 32


@dataclass(slots=True)
class RTreeNode:
    """One R-tree node: an MBR plus either children or point indices."""

    lower: np.ndarray  # (d,) MBR lower corner
    upper: np.ndarray  # (d,) MBR upper corner
    children: List["RTreeNode"] = field(default_factory=list)
    point_indices: np.ndarray | None = None  # leaves only

    @property
    def is_leaf(self) -> bool:
        return self.point_indices is not None

    def mindist_key(self) -> float:
        """L1 mindist of the MBR from the origin — the BBS priority.

        For minimisation skylines the relevant corner is the MBR's lower
        corner; its coordinate sum is a lower bound on ``Σ coords`` of any
        point inside (a monotone score, so dominance-safe for pruning).
        """
        return float(self.lower.sum())

    def __len__(self) -> int:
        if self.is_leaf:
            return int(self.point_indices.size)
        return sum(len(c) for c in self.children)


class RTree:
    """Static STR-packed R-tree over an ``(n, d)`` point array."""

    def __init__(
        self,
        points: np.ndarray,
        *,
        leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
        fanout: int | None = None,
    ) -> None:
        self.points = validate_points(points)
        if leaf_capacity < 1:
            raise ValueError(f"leaf_capacity must be >= 1, got {leaf_capacity}")
        self.leaf_capacity = leaf_capacity
        self.fanout = fanout if fanout is not None else max(2, leaf_capacity)
        if self.fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {self.fanout}")
        self.root = self._build()

    # -- construction ------------------------------------------------------------

    def _build(self) -> RTreeNode:
        n, d = self.points.shape
        if n == 0:
            return RTreeNode(
                lower=np.full(d, np.inf),
                upper=np.full(d, -np.inf),
                point_indices=np.empty(0, dtype=np.intp),
            )
        leaves = self._pack_leaves(np.arange(n, dtype=np.intp))
        level = leaves
        while len(level) > 1:
            level = self._pack_internal(level)
        return level[0]

    def _pack_leaves(self, indices: np.ndarray) -> List[RTreeNode]:
        """STR: recursively sort-and-slice along each dimension."""
        d = self.points.shape[1]
        groups = self._str_slices(indices, axis=0, dims=d, capacity=self.leaf_capacity)
        leaves = []
        for group in groups:
            pts = self.points[group]
            leaves.append(
                RTreeNode(
                    lower=pts.min(axis=0),
                    upper=pts.max(axis=0),
                    point_indices=np.sort(group),
                )
            )
        return leaves

    def _str_slices(
        self, indices: np.ndarray, axis: int, dims: int, capacity: int
    ) -> List[np.ndarray]:
        if indices.size <= capacity:
            return [indices] if indices.size else []
        if axis == dims - 1:
            order = indices[np.argsort(self.points[indices, axis], kind="stable")]
            return [
                order[i : i + capacity] for i in range(0, order.size, capacity)
            ]
        # Number of vertical slabs so each slab recursively tiles the rest.
        n_groups = int(np.ceil(indices.size / capacity))
        per_axis = int(np.ceil(n_groups ** (1.0 / (dims - axis))))
        slab = int(np.ceil(indices.size / per_axis))
        order = indices[np.argsort(self.points[indices, axis], kind="stable")]
        out: List[np.ndarray] = []
        for i in range(0, order.size, slab):
            out.extend(
                self._str_slices(order[i : i + slab], axis + 1, dims, capacity)
            )
        return out

    def _pack_internal(self, nodes: List[RTreeNode]) -> List[RTreeNode]:
        """Group a level's nodes by their centre along dim 0 (simple STR)."""
        centres = np.array([(n.lower[0] + n.upper[0]) / 2 for n in nodes])
        order = np.argsort(centres, kind="stable")
        out: List[RTreeNode] = []
        for i in range(0, len(nodes), self.fanout):
            group = [nodes[j] for j in order[i : i + self.fanout]]
            lower = np.min([g.lower for g in group], axis=0)
            upper = np.max([g.upper for g in group], axis=0)
            out.append(RTreeNode(lower=lower, upper=upper, children=group))
        return out

    # -- queries -----------------------------------------------------------------

    def __len__(self) -> int:
        return self.points.shape[0]

    @property
    def height(self) -> int:
        h, node = 1, self.root
        while not node.is_leaf:
            node = node.children[0]
            h += 1
        return h

    def validate(self) -> None:
        """Structural invariants: MBR containment and full coverage.

        Raises AssertionError on violation; used by tests.
        """
        seen: list[int] = []

        def check(node: RTreeNode) -> None:
            if node.is_leaf:
                pts = self.points[node.point_indices]
                assert (pts >= node.lower - 1e-12).all()
                assert (pts <= node.upper + 1e-12).all()
                seen.extend(node.point_indices.tolist())
                return
            assert node.children, "internal node without children"
            for child in node.children:
                assert (child.lower >= node.lower - 1e-12).all()
                assert (child.upper <= node.upper + 1e-12).all()
                check(child)

        if len(self):
            check(self.root)
            assert sorted(seen) == list(range(len(self)))
