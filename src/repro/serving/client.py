"""Client helper for the JSON-lines serving protocol.

A :class:`ServingClient` speaks the :mod:`repro.serving.protocol` over
either transport the server offers:

* :meth:`ServingClient.spawn` — start ``repro serve`` as a subprocess and
  drive it over its stdio pipes (what the tests, the CI smoke job and the
  demo use: no ports, no races on bind);
* :meth:`ServingClient.connect` — connect to a running TCP server.

Methods mirror the protocol ops and return the decoded response dict;
transport failures raise :class:`ServingConnectionError`.  Application
errors stay data (``response["ok"] is False``) so callers can distinguish
a 429-style rejection from a broken server.
"""

from __future__ import annotations

import json
import socket
import subprocess
import sys
from typing import IO, Any, Dict, List, Sequence

__all__ = [
    "DEFAULT_MAX_LINE_BYTES",
    "ServingClient",
    "ServingConnectionError",
]


class ServingConnectionError(RuntimeError):
    """The transport died (EOF, closed socket, dead subprocess) or the
    peer wrote something that is not a protocol response (garbage JSON,
    an over-long line) — anything that means *this connection is not
    speaking the protocol anymore*."""


#: Response lines longer than this are treated as a broken peer, not
#: buffered without bound.  Generous: a 100k-row shard answer fits.
DEFAULT_MAX_LINE_BYTES = 64 * 1024 * 1024


class ServingClient:
    """Blocking request/response client over stdio pipes or a socket."""

    def __init__(
        self,
        reader: IO[str],
        writer: IO[str],
        *,
        proc: subprocess.Popen | None = None,
        sock: socket.socket | None = None,
        max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
    ):
        if max_line_bytes < 2:
            raise ValueError(f"max_line_bytes must be >= 2, got {max_line_bytes}")
        self._reader = reader
        self._writer = writer
        self._proc = proc
        self._sock = sock
        self.max_line_bytes = max_line_bytes

    # -- constructors -----------------------------------------------------------

    @classmethod
    def spawn(
        cls,
        *serve_args: str,
        python: str = sys.executable,
        **popen_kwargs: Any,
    ) -> "ServingClient":
        """Launch ``repro serve`` as a subprocess and attach to its pipes."""
        proc = subprocess.Popen(
            [python, "-m", "repro.cli", "serve", *serve_args],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            **popen_kwargs,
        )
        assert proc.stdin is not None and proc.stdout is not None
        return cls(proc.stdout, proc.stdin, proc=proc)

    @classmethod
    def connect(cls, host: str, port: int, *, timeout: float | None = None) -> "ServingClient":
        """Connect to a running ``repro serve --tcp`` server."""
        sock = socket.create_connection((host, port), timeout=timeout)
        fh = sock.makefile("rw", encoding="utf-8", newline="\n")
        return cls(fh, fh, sock=sock)

    # -- transport --------------------------------------------------------------

    def call(self, **request: Any) -> Dict[str, Any]:
        """Send one request object; return the decoded response.

        Any way the peer can fail to answer — EOF, a closed socket, a
        read timeout, a line that is not JSON, a line longer than
        ``max_line_bytes`` — raises :class:`ServingConnectionError`;
        application-level failures come back as ``{"ok": false, ...}``
        response objects instead.
        """
        try:
            self._writer.write(json.dumps(request) + "\n")
            self._writer.flush()
            line = self._reader.readline(self.max_line_bytes)
        except (OSError, ValueError) as exc:
            raise ServingConnectionError(f"transport failed: {exc}") from exc
        if not line:
            raise ServingConnectionError(
                "server closed the connection (no response)"
            )
        if len(line) >= self.max_line_bytes and not line.endswith("\n"):
            raise ServingConnectionError(
                f"response line exceeded {self.max_line_bytes} bytes"
            )
        try:
            response = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServingConnectionError(
                f"malformed response (bad JSON): {exc}"
            ) from exc
        if not isinstance(response, dict):
            raise ServingConnectionError(f"malformed response: {response!r}")
        return response

    def settimeout(self, timeout: float | None) -> None:
        """Bound every subsequent socket read/write (TCP clients only).

        A timed-out call surfaces as :class:`ServingConnectionError` —
        the cluster coordinator's per-shard deadline hook.  No-op over
        stdio pipes.
        """
        if self._sock is not None:
            self._sock.settimeout(timeout)

    def close(self) -> None:
        if self._proc is not None:
            for fh in (self._proc.stdin, self._proc.stdout):
                if fh is not None:
                    fh.close()
            self._proc.wait(timeout=30)
        if self._sock is not None:
            self._reader.close()
            self._sock.close()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    @property
    def returncode(self) -> int | None:
        """The subprocess exit code (None while running / for TCP clients)."""
        return self._proc.poll() if self._proc is not None else None

    # -- protocol ops -----------------------------------------------------------

    def register(
        self,
        dataset: str,
        points: Sequence[Sequence[float]] | None = None,
        *,
        generate: Dict[str, int] | None = None,
        scheme: str = "angle",
        partitions: int = 8,
        shard_fn: str | None = None,
    ) -> Dict[str, Any]:
        request: Dict[str, Any] = {
            "op": "register",
            "dataset": dataset,
            "scheme": scheme,
            "partitions": partitions,
        }
        if points is not None:
            request["points"] = [list(map(float, row)) for row in points]
        if generate is not None:
            request["generate"] = generate
        if shard_fn is not None:
            request["shard_fn"] = shard_fn
        return self.call(**request)

    def query(self, dataset: str, kind: str = "skyline", **params: Any) -> Dict[str, Any]:
        return self.call(op="query", dataset=dataset, kind=kind, **params)

    def shard_query(
        self,
        dataset: str,
        kind: str = "skyline",
        *,
        filters: Sequence[Sequence[float]] | None = None,
        **params: Any,
    ) -> Dict[str, Any]:
        """One cluster fan-out leg: candidate ids *and* rows, filter-pruned."""
        request: Dict[str, Any] = {
            "op": "shard_query",
            "dataset": dataset,
            "kind": kind,
            **params,
        }
        if filters is not None:
            request["filters"] = [list(map(float, row)) for row in filters]
        return self.call(**request)

    def insert(self, dataset: str, point: Sequence[float]) -> Dict[str, Any]:
        return self.call(op="insert", dataset=dataset, point=list(map(float, point)))

    def remove(self, dataset: str, point_id: int) -> Dict[str, Any]:
        return self.call(op="remove", dataset=dataset, id=int(point_id))

    def stats(self) -> Dict[str, Any]:
        return self.call(op="stats")

    def health(self) -> Dict[str, Any]:
        return self.call(op="health")

    def slo(self) -> Dict[str, Any]:
        return self.call(op="slo")

    def events(
        self,
        n: int | None = 50,
        *,
        kinds: Sequence[str] | None = None,
        since_seq: int | None = None,
    ) -> Dict[str, Any]:
        """Tail of the server's structured event log (newest last)."""
        request: Dict[str, Any] = {"op": "events", "n": n}
        if kinds is not None:
            request["kinds"] = list(kinds)
        if since_seq is not None:
            request["since_seq"] = since_seq
        return self.call(**request)

    def metrics(self, format: str = "json") -> Dict[str, Any]:
        """The server's metrics registry (``json`` or ``prometheus``)."""
        return self.call(op="metrics", format=format)

    def ping(self) -> Dict[str, Any]:
        return self.call(op="ping")

    def shutdown(self) -> Dict[str, Any]:
        response = self.call(op="shutdown")
        return response

    def session_ids(self, response: Dict[str, Any]) -> List[int]:
        """The result ids of a query response (empty on failure)."""
        return list(response.get("ids", []))
