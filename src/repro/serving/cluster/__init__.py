"""Sharded multi-node serving (``docs/cluster.md``).

A :class:`ClusterCoordinator` fronts N ordinary ``repro serve`` shard
servers: datasets place across shards via a :class:`ShardMap` (whole-
dataset or partitioner-keyed with the paper's schemes as shard
functions), queries fan out as filter-pruned ``shard_query`` legs and
merge exactly through the kernel seam, writes route to the owning shard
and advance per-shard generation vectors, and shard loss degrades to a
partial answer instead of failing.  :class:`LocalCluster` boots the whole
topology in-process over real loopback sockets for tests and
``repro serve --cluster N``.
"""

from repro.serving.cluster.coordinator import (
    ClusterConfig,
    ClusterCoordinator,
    ClusterResponse,
    ClusterUnavailableError,
    ShardEndpoint,
    ShardLostError,
)
from repro.serving.cluster.local import LocalCluster
from repro.serving.cluster.merge import merge_candidates
from repro.serving.cluster.protocol import handle_cluster_request
from repro.serving.cluster.shards import SHARD_FUNCTIONS, DatasetPlacement, ShardMap

__all__ = [
    "SHARD_FUNCTIONS",
    "ClusterConfig",
    "ClusterCoordinator",
    "ClusterResponse",
    "ClusterUnavailableError",
    "DatasetPlacement",
    "LocalCluster",
    "ShardEndpoint",
    "ShardLostError",
    "ShardMap",
    "handle_cluster_request",
    "merge_candidates",
]
