"""Differential recovery: the chaos leg of the durability plane.

The contract under test — a store recovered from ``data_dir`` answers
every query kind **id-for-id identically** to a reference store that
applied the surviving mutation prefix — checked across both dominance
kernels and the three crash shapes the WAL design claims to survive:

* crash mid-append (the final frame is physically cut short);
* a torn final record (garbage bytes past the last good frame);
* stale snapshot + long tail (checkpoint long ago, many deltas since) —
  including the crash *between* snapshot replace and WAL truncate, where
  frames the snapshot already covers are still on disk.

Chaos offsets are drawn from the PR-4 :func:`stable_rng`, so every cut
point is reproducible across runs and platforms.
"""

import os

import numpy as np
import pytest

from repro.mapreduce.faults import stable_rng
from repro.serving.durability import (
    DurabilityConfig,
    DurabilityManager,
    read_wal,
    recover_dataset,
)
from repro.serving.queries import QuerySpec, evaluate
from repro.serving.store import SkylineStore

KERNELS = ("scalar", "block")
DATASET = "dur"
DIMS = 3
N_BULK = 60
N_OPS = 30


def query_specs():
    """One spec per query kind — the full id-for-id parity surface."""
    return [
        QuerySpec(dataset=DATASET),
        QuerySpec(dataset=DATASET, kind="skyband", k=2),
        QuerySpec(
            dataset=DATASET,
            kind="constrained",
            lower=(0.0,) * DIMS,
            upper=(0.7,) * DIMS,
        ),
        QuerySpec(dataset=DATASET, kind="subspace", dims=(0, 1)),
    ]


def answers_of(store):
    """Generation plus every query kind's ids, from one snapshot."""
    snap = store.snapshot()
    return {
        "generation": snap.generation,
        **{
            spec.kind: evaluate(spec, snap.ids, snap.rows)
            for spec in query_specs()
        },
    }


def bulk_points():
    return np.random.default_rng(42).random((N_BULK, DIMS)) + 0.01


def apply_ops(store, n_ops, *, seed=7):
    """A deterministic insert/remove mix (op ``i`` depends only on the
    rng stream and the state the first ``i`` ops produced, so replaying a
    prefix of this generator reproduces the store at that prefix)."""
    rng = stable_rng(seed, "durability-ops")
    for _ in range(n_ops):
        ids = store.snapshot().ids
        if rng.random() < 0.25 and len(ids) > 1:
            store.remove(int(ids[rng.randrange(len(ids))]))
        else:
            store.insert([rng.random() + 0.01 for _ in range(DIMS)])


def reference_store(kernel, n_ops):
    """The surviving-prefix oracle: same bulk + first ``n_ops`` ops, no
    durability attached."""
    store = SkylineStore(DATASET, num_partitions=4, kernel=kernel)
    store.bulk_load(bulk_points())
    apply_ops(store, n_ops)
    return store


def durable_store(data_dir, *, kernel, snapshot_every=10_000, fsync="never"):
    """A registered, durability-attached store over ``data_dir`` — the
    same wiring order as ``SkylineService.register``."""
    manager = DurabilityManager(
        DurabilityConfig(data_dir, fsync=fsync, snapshot_every=snapshot_every)
    )
    store = SkylineStore(DATASET, num_partitions=4, kernel=kernel)
    log = manager.dataset_log(DATASET)
    store.attach_durability(log)
    log.log_register(store.store_config())
    store.bulk_load(bulk_points())
    return manager, store


def recover(data_dir, *, kernel=None, snapshot_every=10_000):
    manager = DurabilityManager(
        DurabilityConfig(data_dir, fsync="never", snapshot_every=snapshot_every)
    )
    store, report = recover_dataset(manager, DATASET, kernel=kernel)
    return manager, store, report


def assert_parity(recovered, reference):
    got, want = answers_of(recovered), answers_of(reference)
    assert got == want, f"recovery parity broken: {got} != {want}"
    # Id-allocation discipline: the next insert draws the same id and
    # lands on the same generation in both worlds.
    point = [0.005] * DIMS
    assert recovered.insert(point) == reference.insert(point)


class TestCleanRecovery:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_wal_only_replay_is_id_for_id(self, tmp_path, kernel):
        data_dir = str(tmp_path / "data")
        manager, store = durable_store(data_dir, kernel=kernel)
        apply_ops(store, N_OPS)
        pre = answers_of(store)
        manager.close()

        manager2, recovered, report = recover(data_dir, kernel=kernel)
        assert recovered is not None
        assert not report.torn_tail
        assert report.snapshot_generation is None  # never checkpointed
        assert report.records_replayed == 2 + N_OPS  # register + bulk + ops
        assert answers_of(recovered) == pre
        assert_parity(recovered, reference_store(kernel, N_OPS))
        manager2.close()

    def test_recovered_store_keeps_logging(self, tmp_path):
        data_dir = str(tmp_path / "data")
        manager, store = durable_store(data_dir, kernel="scalar")
        apply_ops(store, 5)
        manager.close()

        manager2, recovered, _ = recover(data_dir)
        recovered.insert([0.002] * DIMS)
        pre = answers_of(recovered)
        manager2.close()

        manager3, again, report = recover(data_dir)
        assert answers_of(again) == pre, "post-recovery mutations must persist"
        manager3.close()

    def test_failed_remove_is_never_logged(self, tmp_path):
        data_dir = str(tmp_path / "data")
        manager, store = durable_store(data_dir, kernel="scalar")
        with pytest.raises(KeyError):
            store.remove(10_000)
        manager.close()
        ops = [r.payload["op"] for r in read_wal(
            os.path.join(data_dir, DATASET, "wal.log")).records]
        assert "remove" not in ops


class TestCrashMidAppend:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_cut_final_frame_loses_exactly_one_mutation(self, tmp_path, kernel):
        data_dir = str(tmp_path / "data")
        manager, store = durable_store(data_dir, kernel=kernel)
        apply_ops(store, N_OPS)
        manager.close()

        # Crash mid-append: cut the final frame at a deterministic chaos
        # offset strictly inside it.
        wal_path = os.path.join(data_dir, DATASET, "wal.log")
        scan = read_wal(wal_path)
        last_frame = os.path.getsize(wal_path) - _frame_start(scan, -1)
        cut = stable_rng(0, "mid-append", kernel).randrange(1, last_frame)
        with open(wal_path, "r+b") as fh:
            fh.truncate(os.path.getsize(wal_path) - cut)

        manager2, recovered, report = recover(data_dir, kernel=kernel)
        assert report.torn_tail
        # Generation arithmetic: bulk = 1, each surviving op = +1; the
        # torn final op is gone, so exactly one mutation was lost.
        assert recovered.generation == 1 + N_OPS - 1
        assert_parity(recovered, reference_store(kernel, N_OPS - 1))
        manager2.close()

    def test_torn_garbage_tail_loses_nothing(self, tmp_path):
        data_dir = str(tmp_path / "data")
        manager, store = durable_store(data_dir, kernel="scalar")
        apply_ops(store, N_OPS)
        pre = answers_of(store)
        manager.close()

        wal_path = os.path.join(data_dir, DATASET, "wal.log")
        garbage = bytes(
            stable_rng(0, "garbage-tail").randrange(256) for _ in range(37)
        )
        with open(wal_path, "ab") as fh:
            fh.write(garbage)

        manager2, recovered, report = recover(data_dir)
        assert report.torn_tail
        assert answers_of(recovered) == pre, "every framed mutation survives"
        manager2.close()


class TestSnapshotRecovery:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_stale_snapshot_plus_long_tail(self, tmp_path, kernel):
        data_dir = str(tmp_path / "data")
        manager, store = durable_store(data_dir, kernel=kernel)
        apply_ops(store, 10)
        assert store.checkpoint(), "forced checkpoint must write a snapshot"
        # A long post-checkpoint tail the snapshot knows nothing about.
        apply_ops(store, N_OPS, seed=8)
        pre = answers_of(store)
        manager.close()

        manager2, recovered, report = recover(data_dir, kernel=kernel)
        assert report.snapshot_generation == 1 + 10
        assert report.records_replayed == N_OPS
        assert report.generation == 1 + 10 + N_OPS
        assert answers_of(recovered) == pre
        manager2.close()

    def test_crash_between_snapshot_and_truncate(self, tmp_path):
        """The checkpoint ordering's worst case: the new snapshot is
        durable but the WAL still holds every frame it covers.  Replay
        must skip the covered prefix and apply only the tail."""
        data_dir = str(tmp_path / "data")
        manager, store = durable_store(data_dir, kernel="scalar")
        apply_ops(store, 10)
        wal_path = os.path.join(data_dir, DATASET, "wal.log")
        pre_ckpt_frames = open(wal_path, "rb").read()
        assert store.checkpoint()
        apply_ops(store, 5, seed=9)
        pre = answers_of(store)
        manager.close()

        # Re-prepend the frames the truncate dropped, recreating the
        # crashed-before-truncate file image.
        tail = open(wal_path, "rb").read()
        open(wal_path, "wb").write(pre_ckpt_frames + tail)

        manager2, recovered, report = recover(data_dir)
        assert report.records_replayed == 5, "covered frames must be skipped"
        assert answers_of(recovered) == pre
        manager2.close()

    def test_empty_membership_snapshot_restores_id_cursor(self, tmp_path):
        """Remove-everything then checkpoint: the snapshot holds zero
        members but the id cursor must still survive."""
        data_dir = str(tmp_path / "data")
        manager = DurabilityManager(DurabilityConfig(data_dir, fsync="never"))
        store = SkylineStore(DATASET, num_partitions=4)
        log = manager.dataset_log(DATASET)
        store.attach_durability(log)
        log.log_register(store.store_config())
        for _ in range(3):
            store.insert([0.5] * DIMS)
        for pid in (0, 1, 2):
            store.remove(pid)
        assert store.checkpoint()
        manager.close()

        manager2, recovered, report = recover(data_dir)
        assert len(recovered) == 0 and report.members == 0
        new_id, generation = recovered.insert([0.4] * DIMS)
        assert new_id == 3, "id cursor must survive an empty snapshot"
        assert generation == 7
        manager2.close()

    def test_automatic_checkpoint_truncates_wal(self, tmp_path):
        data_dir = str(tmp_path / "data")
        manager, store = durable_store(
            data_dir, kernel="scalar", snapshot_every=8
        )
        apply_ops(store, 20)
        pre = answers_of(store)
        wal_path = os.path.join(data_dir, DATASET, "wal.log")
        snap_path = os.path.join(data_dir, DATASET, "snapshot.bin")
        assert os.path.exists(snap_path)
        assert len(read_wal(wal_path).records) < 22, "WAL must have turned over"
        manager.close()

        manager2, recovered, report = recover(data_dir, snapshot_every=8)
        assert report.snapshot_generation is not None
        assert answers_of(recovered) == pre
        manager2.close()


class TestRecoveryEdges:
    def test_register_only_dataset_recovers_empty(self, tmp_path):
        data_dir = str(tmp_path / "data")
        manager = DurabilityManager(DurabilityConfig(data_dir, fsync="never"))
        store = SkylineStore(DATASET, num_partitions=4)
        log = manager.dataset_log(DATASET)
        store.attach_durability(log)
        log.log_register(store.store_config())
        manager.close()

        manager2, recovered, report = recover(data_dir)
        assert recovered is not None and len(recovered) == 0
        assert recovered.insert([0.3] * DIMS) == (0, 1)
        manager2.close()

    def test_nothing_on_disk_recovers_none(self, tmp_path):
        manager = DurabilityManager(
            DurabilityConfig(str(tmp_path / "data"), fsync="never")
        )
        store, report = recover_dataset(manager, "ghost")
        assert store is None
        assert report.members == 0 and report.records_replayed == 0
        manager.close()

    def test_reregister_record_supersedes_history(self, tmp_path):
        data_dir = str(tmp_path / "data")
        manager, store = durable_store(data_dir, kernel="scalar")
        apply_ops(store, 5)
        # Live re-registration: fresh store through the same log.
        log = manager.dataset_log(DATASET)
        fresh = SkylineStore(DATASET, num_partitions=4)
        fresh.attach_durability(log)
        log.log_register(fresh.store_config())
        fresh.insert([0.9] * DIMS)
        pre = answers_of(fresh)
        manager.close()

        manager2, recovered, _ = recover(data_dir)
        assert answers_of(recovered) == pre
        assert len(recovered) == 1
        manager2.close()

    def test_store_config_roundtrips_kernel(self, tmp_path):
        data_dir = str(tmp_path / "data")
        manager, store = durable_store(data_dir, kernel="block")
        manager.close()
        manager2, recovered, _ = recover(data_dir)  # no kernel override
        assert recovered.kernel_name == "block"
        manager2.close()


def _frame_start(scan, index):
    """Byte offset where frame ``index`` starts (via cumulative sizes)."""
    from repro.serving.durability.wal import encode_record

    offsets = [0]
    for record in scan.records:
        offsets.append(offsets[-1] + len(encode_record(record.payload)))
    return offsets[index - 1 if index < 0 else index]
