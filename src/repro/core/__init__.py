"""Skyline query processing core — the paper's contribution.

Layout:

* :mod:`repro.core.dominance` — Pareto-dominance primitives (minimisation)
* :mod:`repro.core.blocks` — columnar :class:`PointBlock` batches
* :mod:`repro.core.kernels` — pluggable dominance backends
  (``scalar`` reference / ``block`` columnar)
* :mod:`repro.core.filtering` — Ciaccia–Martinenghi filter-point selection
* :mod:`repro.core.bnl` / :mod:`repro.core.sfs` / :mod:`repro.core.dnc` —
  single-machine skyline algorithms
* :mod:`repro.core.skyline` — unified single-machine API
* :mod:`repro.core.hyperspherical` — Eq. (1) coordinate transform
* :mod:`repro.core.partitioning` — dimensional / grid / angular / random
  data-space partitioners
* :mod:`repro.core.mr_skyline` — MR-Dim, MR-Grid, MR-Angle drivers
  (Algorithm 1) on the MapReduce engine
* :mod:`repro.core.optimality` — the §VI local-skyline-optimality metric
* :mod:`repro.core.dominance_ability` — §IV Theorems 1–2 + Monte-Carlo
* :mod:`repro.core.incremental` — dynamic service insertion/removal (§II)
"""

from repro.core.bbs import BBSResult, bbs_skyline, bbs_skyline_progressive
from repro.core.blocks import PointBlock, concat_blocks
from repro.core.bnl import BNLResult, bnl_merge, bnl_skyline
from repro.core.dnc import DNCResult, dnc_skyline
from repro.core.dominance import (
    DominanceCounter,
    dominance_matrix,
    dominated_mask,
    dominates,
    dominates_any,
    incomparable,
    validate_points,
)
from repro.core.dominance_ability import (
    delta_dominance,
    delta_lower_bound,
    dominance_ability_angle,
    dominance_ability_grid,
    empirical_dominance_ability,
)
from repro.core.hyperspherical import (
    MAX_ANGLE,
    angular_coordinates,
    from_hyperspherical,
    to_hyperspherical,
)
from repro.core.filtering import (
    DEFAULT_FILTER_K,
    DEFAULT_FILTER_SAMPLE,
    compute_filter_points,
)
from repro.core.incremental import IncrementalSkyline
from repro.core.kernels import (
    KERNEL_NAMES,
    BlockKernel,
    DominanceKernel,
    ScalarKernel,
    default_kernel_name,
    get_kernel,
    make_kernel,
    set_default_kernel,
    sort_first_order,
)
from repro.core.mr_skyline import (
    MRSkylineResult,
    default_partition_count,
    run_mr_skyline,
    update_mr_skyline,
)
from repro.core.optimality import (
    OptimalityReport,
    local_skyline_optimality,
    optimality_of_result,
    per_partition_optimality,
)
from repro.core.partitioning import (
    AngularPartitioner,
    DimensionalPartitioner,
    GridPartitioner,
    RandomPartitioner,
    SpacePartitioner,
    load_imbalance,
    make_partitioner,
    partition_sizes,
)
from repro.core.representative import (
    RepresentativeResult,
    distance_representatives,
    max_dominance_representatives,
)
from repro.core.rtree import RTree
from repro.core.sfs import SFSResult, monotone_score, sfs_skyline
from repro.core.skyband import dominator_counts, k_skyband, top_k_dominating
from repro.core.skyline import is_skyline, skyline, skyline_numpy, skyline_points

__all__ = [
    "AngularPartitioner",
    "BBSResult",
    "BNLResult",
    "BlockKernel",
    "DEFAULT_FILTER_K",
    "DEFAULT_FILTER_SAMPLE",
    "DimensionalPartitioner",
    "DNCResult",
    "DominanceCounter",
    "DominanceKernel",
    "GridPartitioner",
    "IncrementalSkyline",
    "KERNEL_NAMES",
    "PointBlock",
    "ScalarKernel",
    "MAX_ANGLE",
    "MRSkylineResult",
    "OptimalityReport",
    "RandomPartitioner",
    "RepresentativeResult",
    "SFSResult",
    "SpacePartitioner",
    "RTree",
    "angular_coordinates",
    "bbs_skyline",
    "bbs_skyline_progressive",
    "bnl_merge",
    "bnl_skyline",
    "compute_filter_points",
    "concat_blocks",
    "default_kernel_name",
    "default_partition_count",
    "delta_dominance",
    "delta_lower_bound",
    "dnc_skyline",
    "dominance_ability_angle",
    "dominance_ability_grid",
    "distance_representatives",
    "dominance_matrix",
    "dominated_mask",
    "dominates",
    "dominates_any",
    "dominator_counts",
    "empirical_dominance_ability",
    "from_hyperspherical",
    "get_kernel",
    "incomparable",
    "is_skyline",
    "k_skyband",
    "make_kernel",
    "load_imbalance",
    "local_skyline_optimality",
    "make_partitioner",
    "max_dominance_representatives",
    "monotone_score",
    "optimality_of_result",
    "partition_sizes",
    "per_partition_optimality",
    "run_mr_skyline",
    "set_default_kernel",
    "sfs_skyline",
    "skyline",
    "sort_first_order",
    "skyline_numpy",
    "skyline_points",
    "to_hyperspherical",
    "top_k_dominating",
    "update_mr_skyline",
    "validate_points",
]
