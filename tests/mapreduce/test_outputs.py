"""Tests for job output formats and commit semantics."""

import numpy as np
import pytest

from repro.mapreduce import (
    Job,
    JobConf,
    Mapper,
    Reducer,
    SequenceOutputFormat,
    TextOutputFormat,
    read_sequence_output,
    read_text_output,
    run_job,
)
from repro.mapreduce.errors import FileSystemError
from repro.mapreduce.fs import BlockFileSystem
from repro.mapreduce.outputs import SUCCESS_MARKER


class TokenMapper(Mapper):
    def map(self, key, value, ctx):
        for word in value.split():
            ctx.emit(word, 1)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


# Module-level so the jobs below stay picklable under REPRO_EXECUTOR=processes.
class NoneKeyMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(None, value)


class ArrayMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(key, np.asarray(value))


class PassReducer(Reducer):
    def reduce(self, key, values, ctx):
        for v in values:
            ctx.emit(key, v)


class NullMapper(Mapper):
    def map(self, key, value, ctx):
        pass


@pytest.fixture
def fs():
    return BlockFileSystem()


@pytest.fixture
def result():
    job = Job(
        name="wc",
        mapper=TokenMapper,
        reducer=SumReducer,
        conf=JobConf(num_reducers=3),
    )
    return run_job(job, records=[(None, "a b a"), (None, "b c")])


class TestTextOutput:
    def test_write_and_read_back(self, fs, result):
        fmt = TextOutputFormat(fs, "/out/wc")
        paths = fmt.write(result)
        assert len(paths) == 3
        pairs = dict(read_text_output(fs, "/out/wc"))
        assert pairs == {"a": "2", "b": "2", "c": "1"}

    def test_success_marker(self, fs, result):
        fmt = TextOutputFormat(fs, "/out/wc")
        assert not fmt.is_committed()
        fmt.write(result)
        assert fmt.is_committed()
        assert fs.exists(f"/out/wc/{SUCCESS_MARKER}")

    def test_no_temporary_left_behind(self, fs, result):
        TextOutputFormat(fs, "/out/wc").write(result)
        assert not any("_temporary" in p for p in fs.ls("/out/wc"))

    def test_double_write_needs_overwrite(self, fs, result):
        fmt = TextOutputFormat(fs, "/out/wc")
        fmt.write(result)
        with pytest.raises(FileSystemError, match="committed"):
            fmt.write(result)
        fmt.write(result, overwrite=True)  # allowed

    def test_read_uncommitted_rejected(self, fs):
        with pytest.raises(FileSystemError, match="no committed output"):
            read_text_output(fs, "/nowhere")

    def test_abort_removes_temp(self, fs, result):
        fmt = TextOutputFormat(fs, "/out/wc")
        # Simulate a failure mid-write by staging then aborting.
        fs.write("/out/wc/_temporary/part-r-00000", b"partial")
        fmt.abort()
        assert fs.ls("/out/wc") == []

    def test_none_key_rendered_empty(self, fs):
        job = Job(name="p", mapper=NoneKeyMapper, reducer=PassReducer)
        res = run_job(job, records=[(None, "x")])
        TextOutputFormat(fs, "/out/p").write(res)
        assert read_text_output(fs, "/out/p") == [("", "x")]


class TestSequenceOutput:
    def test_preserves_types(self, fs):
        job = Job(name="arr", mapper=ArrayMapper, reducer=PassReducer)
        res = run_job(job, records=[(7, [1.0, 2.0])])
        SequenceOutputFormat(fs, "/out/arr").write(res)
        pairs = read_sequence_output(fs, "/out/arr")
        assert pairs[0][0] == 7
        assert np.array_equal(pairs[0][1], [1.0, 2.0])

    def test_round_trip_counts(self, fs, result):
        SequenceOutputFormat(fs, "/out/seq").write(result)
        pairs = read_sequence_output(fs, "/out/seq")
        assert dict(pairs) == {"a": 2, "b": 2, "c": 1}

    def test_empty_partitions_ok(self, fs):
        job = Job(
            name="empty",
            mapper=NullMapper,
            reducer=SumReducer,
            conf=JobConf(num_reducers=2),
        )
        res = run_job(job, records=[(None, "ignored")])
        SequenceOutputFormat(fs, "/out/empty").write(res)
        assert read_sequence_output(fs, "/out/empty") == []
