"""Client helper for the JSON-lines serving protocol.

A :class:`ServingClient` speaks the :mod:`repro.serving.protocol` over
either transport the server offers:

* :meth:`ServingClient.spawn` — start ``repro serve`` as a subprocess and
  drive it over its stdio pipes (what the tests, the CI smoke job and the
  demo use: no ports, no races on bind);
* :meth:`ServingClient.connect` — connect to a running TCP server.

Methods mirror the protocol ops and return the decoded response dict;
transport failures raise :class:`ServingConnectionError`.  Application
errors stay data (``response["ok"] is False``) so callers can distinguish
a 429-style rejection from a broken server.
"""

from __future__ import annotations

import json
import socket
import subprocess
import sys
from typing import IO, Any, Dict, List, Sequence

__all__ = ["ServingClient", "ServingConnectionError"]


class ServingConnectionError(RuntimeError):
    """The transport died (EOF, closed socket, dead subprocess)."""


class ServingClient:
    """Blocking request/response client over stdio pipes or a socket."""

    def __init__(
        self,
        reader: IO[str],
        writer: IO[str],
        *,
        proc: subprocess.Popen | None = None,
        sock: socket.socket | None = None,
    ):
        self._reader = reader
        self._writer = writer
        self._proc = proc
        self._sock = sock

    # -- constructors -----------------------------------------------------------

    @classmethod
    def spawn(
        cls,
        *serve_args: str,
        python: str = sys.executable,
        **popen_kwargs: Any,
    ) -> "ServingClient":
        """Launch ``repro serve`` as a subprocess and attach to its pipes."""
        proc = subprocess.Popen(
            [python, "-m", "repro.cli", "serve", *serve_args],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            **popen_kwargs,
        )
        assert proc.stdin is not None and proc.stdout is not None
        return cls(proc.stdout, proc.stdin, proc=proc)

    @classmethod
    def connect(cls, host: str, port: int, *, timeout: float | None = None) -> "ServingClient":
        """Connect to a running ``repro serve --tcp`` server."""
        sock = socket.create_connection((host, port), timeout=timeout)
        fh = sock.makefile("rw", encoding="utf-8", newline="\n")
        return cls(fh, fh, sock=sock)

    # -- transport --------------------------------------------------------------

    def call(self, **request: Any) -> Dict[str, Any]:
        """Send one request object; return the decoded response."""
        try:
            self._writer.write(json.dumps(request) + "\n")
            self._writer.flush()
            line = self._reader.readline()
        except (OSError, ValueError) as exc:
            raise ServingConnectionError(f"transport failed: {exc}") from exc
        if not line:
            raise ServingConnectionError(
                "server closed the connection (no response)"
            )
        response = json.loads(line)
        if not isinstance(response, dict):
            raise ServingConnectionError(f"malformed response: {response!r}")
        return response

    def close(self) -> None:
        if self._proc is not None:
            for fh in (self._proc.stdin, self._proc.stdout):
                if fh is not None:
                    fh.close()
            self._proc.wait(timeout=30)
        if self._sock is not None:
            self._reader.close()
            self._sock.close()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    @property
    def returncode(self) -> int | None:
        """The subprocess exit code (None while running / for TCP clients)."""
        return self._proc.poll() if self._proc is not None else None

    # -- protocol ops -----------------------------------------------------------

    def register(
        self,
        dataset: str,
        points: Sequence[Sequence[float]] | None = None,
        *,
        generate: Dict[str, int] | None = None,
        scheme: str = "angle",
        partitions: int = 8,
    ) -> Dict[str, Any]:
        request: Dict[str, Any] = {
            "op": "register",
            "dataset": dataset,
            "scheme": scheme,
            "partitions": partitions,
        }
        if points is not None:
            request["points"] = [list(map(float, row)) for row in points]
        if generate is not None:
            request["generate"] = generate
        return self.call(**request)

    def query(self, dataset: str, kind: str = "skyline", **params: Any) -> Dict[str, Any]:
        return self.call(op="query", dataset=dataset, kind=kind, **params)

    def insert(self, dataset: str, point: Sequence[float]) -> Dict[str, Any]:
        return self.call(op="insert", dataset=dataset, point=list(map(float, point)))

    def remove(self, dataset: str, point_id: int) -> Dict[str, Any]:
        return self.call(op="remove", dataset=dataset, id=int(point_id))

    def stats(self) -> Dict[str, Any]:
        return self.call(op="stats")

    def health(self) -> Dict[str, Any]:
        return self.call(op="health")

    def slo(self) -> Dict[str, Any]:
        return self.call(op="slo")

    def events(
        self,
        n: int | None = 50,
        *,
        kinds: Sequence[str] | None = None,
        since_seq: int | None = None,
    ) -> Dict[str, Any]:
        """Tail of the server's structured event log (newest last)."""
        request: Dict[str, Any] = {"op": "events", "n": n}
        if kinds is not None:
            request["kinds"] = list(kinds)
        if since_seq is not None:
            request["since_seq"] = since_seq
        return self.call(**request)

    def metrics(self, format: str = "json") -> Dict[str, Any]:
        """The server's metrics registry (``json`` or ``prometheus``)."""
        return self.call(op="metrics", format=format)

    def ping(self) -> Dict[str, Any]:
        return self.call(op="ping")

    def shutdown(self) -> Dict[str, Any]:
        response = self.call(op="shutdown")
        return response

    def session_ids(self, response: Dict[str, Any]) -> List[int]:
        """The result ids of a query response (empty on failure)."""
        return list(response.get("ids", []))
