"""Tests for the Eq. (1) hyperspherical coordinate transform."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.hyperspherical import (
    MAX_ANGLE,
    angular_coordinates,
    from_hyperspherical,
    to_hyperspherical,
)

nonneg_points = arrays(
    np.float64,
    st.tuples(st.integers(1, 30), st.integers(2, 6)),
    elements=st.floats(0, 1000, allow_nan=False),
)


class TestForward:
    def test_2d_matches_eq2(self):
        # Paper Eq. (2): r = sqrt(x²+y²), tan(ø) = y/x.
        pts = np.array([[3.0, 4.0]])
        r, angles = to_hyperspherical(pts)
        assert r[0] == pytest.approx(5.0)
        assert np.tan(angles[0, 0]) == pytest.approx(4.0 / 3.0)

    def test_known_3d(self):
        pts = np.array([[1.0, 1.0, 1.0]])
        r, angles = to_hyperspherical(pts)
        assert r[0] == pytest.approx(np.sqrt(3))
        assert np.tan(angles[0, 0]) == pytest.approx(np.sqrt(2) / 1.0)
        assert np.tan(angles[0, 1]) == pytest.approx(1.0)

    def test_axis_points(self):
        # A point on the first axis has every angle 0.
        r, angles = to_hyperspherical(np.array([[5.0, 0.0, 0.0]]))
        assert r[0] == pytest.approx(5.0)
        assert np.allclose(angles, 0.0)

    def test_last_axis_point(self):
        # A point on the last axis has every angle π/2.
        r, angles = to_hyperspherical(np.array([[0.0, 0.0, 7.0]]))
        assert np.allclose(angles, MAX_ANGLE)

    def test_origin_angles_zero(self):
        r, angles = to_hyperspherical(np.zeros((1, 4)))
        assert r[0] == 0.0
        assert np.allclose(angles, 0.0)

    def test_angle_count(self):
        _, angles = to_hyperspherical(np.ones((3, 6)))
        assert angles.shape == (3, 5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            to_hyperspherical(np.array([[1.0, -0.1]]))

    def test_1d_rejected(self):
        with pytest.raises(ValueError, match="2 dimensions"):
            to_hyperspherical(np.array([[1.0]]))

    def test_angular_coordinates_shortcut(self):
        pts = np.random.default_rng(0).random((10, 4))
        _, angles = to_hyperspherical(pts)
        assert np.array_equal(angular_coordinates(pts), angles)

    @given(nonneg_points)
    @settings(max_examples=80)
    def test_property_ranges(self, pts):
        r, angles = to_hyperspherical(pts)
        assert (r >= 0).all()
        assert (angles >= 0).all()
        assert (angles <= MAX_ANGLE + 1e-12).all()
        norms = np.linalg.norm(pts, axis=1)
        assert np.allclose(r, norms)


class TestInverse:
    def test_round_trip_small(self):
        pts = np.array([[3.0, 4.0], [1.0, 0.0], [0.0, 2.0]])
        r, angles = to_hyperspherical(pts)
        assert np.allclose(from_hyperspherical(r, angles), pts)

    def test_scalar_shapes(self):
        out = from_hyperspherical(np.array(5.0), np.array([np.pi / 4]))
        assert out.shape == (1, 2)
        assert np.allclose(out, [[5 / np.sqrt(2), 5 / np.sqrt(2)]])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            from_hyperspherical(np.ones(3), np.ones((2, 2)))

    @given(nonneg_points)
    @settings(max_examples=80)
    def test_property_round_trip(self, pts):
        r, angles = to_hyperspherical(pts)
        back = from_hyperspherical(r, angles)
        assert np.allclose(back, pts, atol=1e-8)

    @given(
        r=arrays(np.float64, 5, elements=st.floats(0.1, 100, allow_nan=False)),
        angles=arrays(
            np.float64, (5, 3), elements=st.floats(0.01, np.pi / 2 - 0.01)
        ),
    )
    @settings(max_examples=60)
    def test_property_inverse_round_trip(self, r, angles):
        # Going the other way: angles -> cartesian -> angles.
        pts = from_hyperspherical(r, angles)
        r2, angles2 = to_hyperspherical(pts)
        assert np.allclose(r2, r, rtol=1e-9)
        assert np.allclose(angles2, angles, atol=1e-9)


class TestScaleInvariance:
    @given(
        pts=arrays(
            np.float64, (8, 4), elements=st.floats(0.01, 100, allow_nan=False)
        ),
        scale=st.floats(0.1, 1000),
    )
    @settings(max_examples=60)
    def test_property_angles_scale_invariant(self, pts, scale):
        """Scaling all coordinates uniformly leaves the angles unchanged —
        the geometric property that makes cones radial partitions."""
        _, angles = to_hyperspherical(pts)
        _, scaled_angles = to_hyperspherical(pts * scale)
        assert np.allclose(angles, scaled_angles, atol=1e-9)
