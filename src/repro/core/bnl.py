"""Block-Nested-Loops (BNL) skyline — Börzsönyi, Kossmann & Stocker, ICDE'01.

The paper uses BNL for both the local-skyline stage and the global merge
("We choose the BNL algorithm at Step 2 for its simplicity").  This module
implements the faithful multi-pass algorithm:

* a *window* of incomparable points is kept in memory;
* each candidate is compared against the window — if dominated it is
  discarded, if it dominates window points those are evicted, otherwise it
  joins the window;
* when the window is full the candidate is spilled to a temp file (here: a
  list) and handled in the next pass;
* a window point can only be emitted as skyline once every candidate that
  entered the algorithm *after* it has been compared against it, which the
  classic algorithm tracks with timestamps.

With an unbounded window (the default) one pass suffices and the timestamp
machinery degenerates, but the bounded mode is exercised by tests and by the
window-size ablation benchmark.

The inner comparison is vectorised: one broadcast test of the candidate
against the whole window (see :mod:`repro.core.dominance`), which is what
makes 100 k-point runs tractable in Python.

Dominance work routes through the :mod:`repro.core.kernels` seam: under the
``block`` kernel an *unbounded-window* run takes the columnar sort-first
sweep (identical result — the skyline is unique — with passes pinned at 1,
which is also what an unbounded window guarantees here); the bounded-window
ablation and the ``scalar`` kernel keep the classic candidate-at-a-time
loop below, which is itself the scalar reference semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dominance import DominanceCounter, validate_points
from repro.core.kernels import DominanceKernel, get_kernel

__all__ = ["BNLResult", "bnl_skyline", "bnl_merge"]


@dataclass(slots=True)
class BNLResult:
    """Outcome of one BNL run."""

    indices: np.ndarray  # skyline positions in the input, ascending
    passes: int
    dominance_tests: int

    def points(self, points: np.ndarray) -> np.ndarray:
        return np.asarray(points, dtype=np.float64)[self.indices]


def bnl_skyline(
    points: np.ndarray,
    *,
    window_size: int | None = None,
    counter: DominanceCounter | None = None,
    stage: str = "bnl",
    kernel: str | DominanceKernel | None = None,
) -> BNLResult:
    """Compute the skyline of ``points`` with BNL.

    Parameters
    ----------
    points:
        ``(n, d)`` array, minimisation in every dimension.
    window_size:
        Maximum window occupancy; ``None`` means unbounded (single pass).
    counter:
        Optional shared :class:`DominanceCounter` to accumulate test counts
        across stages (the paper's "redundant computation" metric).
    kernel:
        Dominance backend name or instance; ``None`` resolves the process
        default (``--kernel`` / ``$REPRO_KERNEL``, else ``scalar``).  The
        ``block`` kernel vectorises the unbounded-window case; results are
        identical either way.

    Returns
    -------
    :class:`BNLResult` with ascending input indices of the skyline.
    """
    pts = validate_points(points)
    knl = get_kernel(kernel)
    if window_size is None and knl.batch:
        # Columnar fast path: sort-first sweep over whole chunks.  The
        # skyline is unique, so indices match the loop below exactly; an
        # unbounded window means one pass in both worlds.
        local = DominanceCounter()
        indices = knl.skyline(pts, counter=local, stage=stage)
        if counter is not None:
            counter.merge(local)
        return BNLResult(
            indices=indices, passes=1 if pts.shape[0] else 0,
            dominance_tests=local.tests,
        )
    n = pts.shape[0]
    if window_size is not None and window_size < 1:
        raise ValueError(f"window_size must be >= 1, got {window_size}")

    tests = 0
    passes = 0
    confirmed: list[int] = []

    # Candidates for the current pass, as (input_index, entry_timestamp).
    candidates = list(range(n))
    timestamps = np.zeros(n, dtype=np.int64)  # when each point entered a pass
    clock = 0

    d = pts.shape[1]

    while candidates:
        passes += 1
        window: list[int] = []  # input indices currently in the window
        # Capacity-doubling buffer: rows [0:len(window)] mirror `window`.
        capacity = 64 if window_size is None else min(window_size, 64)
        window_buf = np.empty((capacity, d))
        overflow: list[int] = []
        window_entry: dict[int, int] = {}  # index -> timestamp at window entry

        for idx in candidates:
            clock += 1
            timestamps[idx] = clock
            w = len(window)
            if w:
                view = window_buf[:w]
                tests += w
                # One fused comparison pass gives both dominance directions:
                # window row dominates p   ⟺ le_all & lt_any
                # p dominates window row   ⟺ ~lt_any & ~le_all
                le = view <= pts[idx]
                le_all = le.all(axis=1)
                lt_any = (view < pts[idx]).any(axis=1)
                if bool(np.any(le_all & lt_any)):
                    continue
                evict = ~lt_any & ~le_all
                if evict.any():
                    keep = ~evict
                    window = [wi for wi, k in zip(window, keep) if k]
                    w = len(window)
                    window_buf[:w] = view[keep]
            if window_size is None or w < window_size:
                if w == window_buf.shape[0]:
                    grown = np.empty((window_buf.shape[0] * 2, d))
                    grown[:w] = window_buf[:w]
                    window_buf = grown
                window_buf[w] = pts[idx]
                window.append(idx)
                window_entry[idx] = clock
            else:
                overflow.append(idx)

        if not overflow:
            # Every remaining window point survived all comparisons.
            confirmed.extend(window)
            break

        # A window point is confirmed skyline iff it entered the window
        # before the first overflowed candidate was written (it has then been
        # compared with every point of the data set); otherwise it must be
        # replayed against the overflow in the next pass.
        first_spill_clock = timestamps[overflow[0]]
        next_candidates: list[int] = []
        for widx in window:
            if window_entry[widx] < first_spill_clock:
                confirmed.append(widx)
            else:
                next_candidates.append(widx)
        # Confirmed points still prune the next pass's candidates implicitly:
        # anything they dominate was already discarded when compared against
        # the window. Overflowed candidates were never compared to each
        # other, so they all go around again, after the carried window points.
        candidates = next_candidates + overflow

    if counter is not None:
        counter.add(tests, stage)
    indices = np.array(sorted(confirmed), dtype=np.intp)
    return BNLResult(indices=indices, passes=passes, dominance_tests=tests)


def bnl_merge(
    local_skylines: list[np.ndarray],
    *,
    counter: DominanceCounter | None = None,
    kernel: str | DominanceKernel | None = None,
) -> BNLResult:
    """Merge local skylines into a global skyline (the Reduce-stage BNL).

    ``local_skylines`` is a list of ``(k_i, d)`` arrays; the result's indices
    refer to their vertical concatenation.
    """
    if not local_skylines:
        return BNLResult(
            indices=np.empty(0, dtype=np.intp), passes=0, dominance_tests=0
        )
    stacked = np.vstack([validate_points(s) for s in local_skylines])
    return bnl_skyline(stacked, counter=counter, stage="merge", kernel=kernel)
