"""Benchmark harness: experiment drivers, dataset cache, reporting.

``python -m repro.cli <experiment>`` is the command-line front end; the
pytest-benchmark suites under ``benchmarks/`` call the same drivers with
scaled-down parameters.
"""

from repro.bench.experiments import (
    PAPER_DIMS,
    PAPER_METHODS,
    ablations,
    figure5,
    figure6,
    figure7,
    headline,
    stragglers,
    theory,
)
from repro.bench.harness import (
    DEFAULT_CLUSTER,
    DatasetCache,
    PointRecord,
    default_cache,
    run_point,
    sweep,
)
from repro.bench.reporting import Table
from repro.bench.timing import Timer, best_of

__all__ = [
    "DEFAULT_CLUSTER",
    "DatasetCache",
    "PAPER_DIMS",
    "PAPER_METHODS",
    "PointRecord",
    "Table",
    "Timer",
    "ablations",
    "best_of",
    "default_cache",
    "figure5",
    "figure6",
    "figure7",
    "headline",
    "run_point",
    "stragglers",
    "sweep",
    "theory",
]
