"""Local skyline optimality — the paper's §VI quality metric (Eq. 5).

For each partition ``i`` with local skyline ``sky_i`` and the global skyline
``sky_global``::

    LocalSkylineOptimality = (1/N) Σ_i |sky_i ∩ sky_global| / |sky_i|

i.e. the mean, over partitions, of the fraction of locally-selected services
that are also globally optimal.  High optimality means little Reduce-stage
pruning — the mechanism behind MR-Angle's shorter Reduce time.

The paper's summation index ("1 < i < N") is read as "over all partitions";
partitions with an *empty* local skyline contribute nothing and are excluded
from the average (their ratio is undefined), matching the metric's intent of
averaging "the distribution of global skyline services in different
partitions".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

import numpy as np

from repro.core.mr_skyline import MRSkylineResult

__all__ = [
    "OptimalityReport",
    "local_skyline_optimality",
    "optimality_of_result",
    "per_partition_optimality",
]


@dataclass(frozen=True, slots=True)
class OptimalityReport:
    """Optimality metric plus its per-partition breakdown."""

    optimality: float
    per_partition: Mapping[int, float]
    partitions_counted: int
    partitions_empty: int

    def __float__(self) -> float:  # allows float(report)
        return self.optimality


def per_partition_optimality(
    local_skylines: Mapping[int, np.ndarray] | Sequence[np.ndarray],
    global_skyline: np.ndarray,
) -> Dict[int, float]:
    """``|sky_i ∩ sky_global| / |sky_i|`` per non-empty partition.

    ``local_skylines`` maps partition id → point-index array (or is a
    sequence, taken as partitions 0..k-1); ``global_skyline`` is the global
    skyline's point-index array.  Indices must refer to the same point set.
    """
    if not isinstance(local_skylines, Mapping):
        local_skylines = {i: sky for i, sky in enumerate(local_skylines)}
    global_set = np.asarray(global_skyline, dtype=np.intp)
    ratios: Dict[int, float] = {}
    for pid, local in local_skylines.items():
        local = np.asarray(local, dtype=np.intp)
        if local.size == 0:
            continue
        hits = np.isin(local, global_set, assume_unique=False).sum()
        ratios[int(pid)] = float(hits / local.size)
    return ratios


def local_skyline_optimality(
    local_skylines: Mapping[int, np.ndarray] | Sequence[np.ndarray],
    global_skyline: np.ndarray,
) -> OptimalityReport:
    """Eq. (5): the mean per-partition optimality."""
    if not isinstance(local_skylines, Mapping):
        local_skylines = {i: sky for i, sky in enumerate(local_skylines)}
    ratios = per_partition_optimality(local_skylines, global_skyline)
    empty = sum(
        1 for sky in local_skylines.values() if np.asarray(sky).size == 0
    )
    optimality = float(np.mean(list(ratios.values()))) if ratios else 0.0
    return OptimalityReport(
        optimality=optimality,
        per_partition=ratios,
        partitions_counted=len(ratios),
        partitions_empty=empty,
    )


def optimality_of_result(result: MRSkylineResult) -> OptimalityReport:
    """Optimality of an :func:`~repro.core.mr_skyline.run_mr_skyline` run."""
    return local_skyline_optimality(result.local_skylines, result.global_indices)
