"""Output formats: committing job results to the block filesystem.

Mirrors Hadoop's ``FileOutputFormat`` + ``OutputCommitter`` protocol:

* each reduce partition writes ``part-r-NNNNN`` into a hidden temporary
  directory (``<out>/_temporary``),
* a successful job *commits* by renaming every part file into the output
  directory and writing a ``_SUCCESS`` marker,
* an aborted job leaves no partial output behind (the temporary prefix is
  deleted).

Two record encodings are provided: tab-separated text (Hadoop's
``TextOutputFormat``) and a framed binary sequence format preserving
arbitrary Python values (``SequenceFileOutputFormat``-flavoured).
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, List, Tuple

from repro.mapreduce.errors import FileSystemError, SerializationError
from repro.mapreduce.fs import BlockFileSystem
from repro.mapreduce.job import JobResult
from repro.mapreduce.serialization import PickleCodec, dump_records, load_records

__all__ = [
    "TextOutputFormat",
    "SequenceOutputFormat",
    "SUCCESS_MARKER",
    "read_text_output",
    "read_sequence_output",
]

SUCCESS_MARKER = "_SUCCESS"
_TEMP_DIR = "_temporary"

Pair = Tuple[Hashable, Any]


def _part_name(partition: int) -> str:
    return f"part-r-{partition:05d}"


class _OutputFormatBase:
    """Shared commit/abort machinery."""

    def __init__(self, fs: BlockFileSystem, output_dir: str):
        if output_dir.endswith("/"):
            output_dir = output_dir[:-1]
        self.fs = fs
        self.output_dir = output_dir

    # -- encoding hooks -----------------------------------------------------------

    def _encode(self, pairs: List[Pair]) -> bytes:
        raise NotImplementedError

    # -- protocol -----------------------------------------------------------------

    def write(self, result: JobResult, *, overwrite: bool = False) -> List[str]:
        """Write a job's outputs with temporary-then-commit semantics.

        Returns the committed part-file paths.  Raises
        :class:`FileSystemError` if the output directory already holds a
        committed result and ``overwrite`` is False.
        """
        success_path = f"{self.output_dir}/{SUCCESS_MARKER}"
        if self.fs.exists(success_path):
            if not overwrite:
                raise FileSystemError(
                    f"output directory already committed: {self.output_dir}"
                )
            self.fs.delete_prefix(self.output_dir)

        temp_prefix = f"{self.output_dir}/{_TEMP_DIR}"
        committed: List[str] = []
        try:
            for partition, pairs in enumerate(result.outputs):
                temp_path = f"{temp_prefix}/{_part_name(partition)}"
                self.fs.write(temp_path, self._encode(pairs), overwrite=True)
            # Commit: rename every part out of the temporary directory.
            for partition in range(len(result.outputs)):
                src = f"{temp_prefix}/{_part_name(partition)}"
                dst = f"{self.output_dir}/{_part_name(partition)}"
                self.fs.rename(src, dst)
                committed.append(dst)
            self.fs.write(success_path, b"", overwrite=True)
        except (FileSystemError, SerializationError, OSError, ValueError):
            # Exactly what the encode/write/rename path can raise: engine
            # filesystem errors, record-encoding failures, and the OS-level
            # errors a real filesystem backend may surface.  Clean up the
            # temporary prefix, then re-raise — a partial commit must never
            # look like a committed result.
            self.abort()
            raise
        return committed

    def abort(self) -> None:
        """Remove any temporary output (idempotent)."""
        self.fs.delete_prefix(f"{self.output_dir}/{_TEMP_DIR}")

    def is_committed(self) -> bool:
        return self.fs.exists(f"{self.output_dir}/{SUCCESS_MARKER}")


class TextOutputFormat(_OutputFormatBase):
    """Tab-separated ``key<TAB>value`` lines, one per output pair."""

    def _encode(self, pairs: List[Pair]) -> bytes:
        lines = []
        for key, value in pairs:
            text_key = "" if key is None else str(key)
            lines.append(f"{text_key}\t{value}")
        body = "\n".join(lines)
        if body:
            body += "\n"
        return body.encode("utf-8")


class SequenceOutputFormat(_OutputFormatBase):
    """Framed binary records preserving arbitrary Python pair values."""

    def _encode(self, pairs: List[Pair]) -> bytes:
        return dump_records(pairs, PickleCodec())


def read_text_output(fs: BlockFileSystem, output_dir: str) -> List[Tuple[str, str]]:
    """Read back a committed text output as ``(key, value)`` string pairs."""
    _require_committed(fs, output_dir)
    pairs: List[Tuple[str, str]] = []
    for path in _part_paths(fs, output_dir):
        for line in fs.iter_lines(path):
            if not line:
                continue
            key, _, value = line.partition("\t")
            pairs.append((key, value))
    return pairs


def read_sequence_output(fs: BlockFileSystem, output_dir: str) -> List[Pair]:
    """Read back a committed sequence output with original value types."""
    _require_committed(fs, output_dir)
    pairs: List[Pair] = []
    for path in _part_paths(fs, output_dir):
        pairs.extend(load_records(fs.read(path), PickleCodec()))
    return pairs


def _require_committed(fs: BlockFileSystem, output_dir: str) -> None:
    if not fs.exists(f"{output_dir.rstrip('/')}/{SUCCESS_MARKER}"):
        raise FileSystemError(f"no committed output at {output_dir}")


def _part_paths(fs: BlockFileSystem, output_dir: str) -> Iterable[str]:
    prefix = output_dir.rstrip("/")
    return [
        p
        for p in fs.ls(prefix)
        if p.rsplit("/", 1)[-1].startswith("part-r-")
    ]
