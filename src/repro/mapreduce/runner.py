"""One job runner, pluggable executors, streaming shuffle.

Orchestration lives in a single :class:`Runner`; *where* task bodies run is
delegated to an :class:`~repro.mapreduce.executors.Executor` (serial inline,
thread pool, or process pool — ``Runner("threads", num_workers=8)`` or the
``REPRO_EXECUTOR`` environment variable select one).  The former split into
a ``SerialRunner`` and a ``MultiprocessRunner`` with duplicated map/reduce
loops is gone; both names survive as thin aliases that pin an executor.

The shuffle is incremental: each map task's per-partition buffers are
ingested into a :class:`~repro.mapreduce.shuffle.StreamingShuffle` as the
task completes, so segment sorting overlaps still-running map tasks, and
with a pool executor each reduce partition is submitted the moment it is
merged — the next partition's merge overlaps the previous partition's
reduce.  ``Runner(streaming=False)`` restores the old barrier shuffle
(output is identical either way).

:meth:`Runner.run_chain` additionally supports *pipelined* chains
(``JobChain(..., pipelined=True)``): job *k+1*'s map task *i* consumes job
*k*'s reduce partition *i* as soon as it finishes, overlapping the two jobs
— the §IV pipeline shape the paper's Figure 6 reduce-dominance claim turns
on.

Every run is traced through :mod:`repro.observability`: a ``job`` span
nests ``phase`` spans (map / shuffle / reduce), which nest ``task`` spans,
every task span tagged with its ``executor``.  Inline (serial) execution
produces real nested task spans; pool executors produce synthetic
back-dated spans recorded as futures drain (tasks execute in workers, so
only measured durations travel back).  Pipelined chains use detached spans,
so overlapping phases render truthfully in ``repro trace``.  Spans export
as they finish — a job that dies mid-phase still leaves a partial trace,
and the raised :class:`JobFailedError` carries the completed tasks' stats.
With the default disabled tracer all hooks are no-ops.

Fault tolerance is policy-driven (see ``docs/fault_tolerance.md``): a
:class:`~repro.mapreduce.types.RetryPolicy` sets the retry budget,
exponential backoff with seeded jitter, per-attempt wall-clock timeouts
(cooperative inline; driver-side future abandonment on pools), speculative
backup attempts for stragglers (first finisher wins, the loser's output is
discarded before commit), and the degraded mode that swaps a terminal
:class:`JobFailedError` for a result flagged ``partial=True``.  A
:class:`~repro.mapreduce.faults.FaultPlan` — passed explicitly, embedded in
the policy resolution, or installed process-wide by the CLI's ``--faults``
— injects deterministic chaos into the same machinery; every retry,
timeout, and speculation decision emits ``decision`` trace spans and
metrics counters either way.
"""

from __future__ import annotations

import statistics
import time
from concurrent.futures import FIRST_COMPLETED, Future, wait
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterator, List, Sequence, Tuple

from repro.mapreduce.counters import Counters
from repro.mapreduce.errors import (
    JobConfigError,
    JobFailedError,
    TaskError,
    TaskTimeoutError,
)
from repro.mapreduce.executors import Executor, SerialExecutor, make_executor
from repro.mapreduce.faults import (
    FaultDecision,
    FaultInjector,
    FaultPlan,
    MonotonicClock,
    apply_fault,
    get_default_fault_plan,
)
from repro.mapreduce.inputs import InputFormat, InputSplit, SequenceInputFormat
from repro.mapreduce.job import ChainResult, Job, JobChain, JobResult
from repro.mapreduce.shuffle import Grouped, StreamingShuffle, shuffle
from repro.mapreduce.tasks import JobSpec, execute_map_task, execute_reduce_task
from repro.mapreduce.types import PhaseStats, RetryPolicy, TaskKind, TaskStats
from repro.observability.events import get_events
from repro.observability.metrics import get_metrics, observe_partition_skew
from repro.observability.tracing import Span, Tracer, get_tracer

Pair = Tuple[Hashable, Any]

#: pending-future bookkeeping: future -> (task index, payload, attempt).
_Pending = Dict[Future, Tuple[int, Any, int]]


def _task_span_attrs(stats: TaskStats) -> Dict[str, Any]:
    """Span annotations shared by real and synthetic task spans."""
    return {
        "task_kind": str(stats.kind),
        "records_in": stats.records_in,
        "records_out": stats.records_out,
        "bytes_out": stats.bytes_out,
        "attempt": stats.attempt,
        "measured_s": round(stats.duration_s, 9),
    }


def _observe_task(stats: TaskStats) -> None:
    """Feed one finished task into the duration histograms."""
    get_metrics().histogram(f"task.{stats.kind}.duration_s").observe(
        stats.duration_s
    )


@dataclass
class _StageState:
    """Driver-side bookkeeping for one in-flight stage of a pipelined chain."""

    job: Job
    spec: JobSpec
    num_maps: int
    streaming: StreamingShuffle | None = None
    job_span: Any = None
    reduce_span: Any = None
    reduce_pending: _Pending = field(default_factory=dict)
    reduce_results: List[Any] = field(default_factory=list)
    counters: Counters = field(default_factory=Counters)
    map_stats: PhaseStats = field(
        default_factory=lambda: PhaseStats(kind=TaskKind.MAP)
    )
    map_wall: float = 0.0
    shuffle_wall: float = 0.0
    reduce_t0: int = 0
    #: Task ids lost terminally under degraded mode, both phases.
    lost: List[str] = field(default_factory=list)


class Runner:
    """Drives jobs and chains over any task executor.

    Parameters
    ----------
    executor:
        An :class:`~repro.mapreduce.executors.Executor` instance, an
        executor name (``"serial"`` / ``"threads"`` / ``"processes"``), or
        ``None`` for the process default (``$REPRO_EXECUTOR``, else
        serial).  Named executors are created fresh per :meth:`run` /
        :meth:`run_chain` and shut down afterwards; an instance is reused
        across runs and released by :meth:`close` (or leaving the runner's
        ``with`` block).  A pool is shared across map and reduce phases —
        and across every job of a chain — so worker spin-up is paid once.
    num_workers:
        Pool size for named pool executors (default: CPU count).
    max_task_retries:
        Shorthand alias for ``RetryPolicy(max_retries=...)`` — kept from
        the pre-policy engine.  Ignored when ``retry_policy`` is given.
    retry_policy:
        Full fault-tolerance policy (:class:`RetryPolicy`): retry budget,
        backoff + jitter, per-attempt timeouts, speculation, and the
        ``on_lost`` contract.  Defaults to the fault plan's embedded
        policy (if any), else ``RetryPolicy(max_retries=max_task_retries)``.
    fault_plan:
        A :class:`~repro.mapreduce.faults.FaultPlan` (a fresh injector is
        built per run, so each run replays the same schedule) or a
        :class:`~repro.mapreduce.faults.FaultInjector` instance (reused
        across runs so tests can inspect its event log).  ``None`` falls
        back to the process-wide plan installed by ``--faults`` (see
        :func:`~repro.mapreduce.faults.set_default_fault_plan`).
    clock:
        Time source for backoff scheduling, deadlines, and speculation
        (``monotonic()`` / ``sleep()``).  Defaults to real monotonic time;
        tests substitute a fake to assert retry spacing instantly.
    tracer:
        Explicit tracer; defaults to the process-wide tracer, late-bound.
    streaming:
        Use the incremental :class:`StreamingShuffle` (default).  ``False``
        restores the barrier shuffle; outputs are identical either way.
    """

    def __init__(
        self,
        executor: Executor | str | None = None,
        *,
        num_workers: int | None = None,
        max_task_retries: int = 0,
        retry_policy: RetryPolicy | None = None,
        fault_plan: FaultPlan | FaultInjector | None = None,
        clock: Any = None,
        tracer: Tracer | None = None,
        streaming: bool = True,
    ):
        if max_task_retries < 0:
            raise JobConfigError(
                f"max_task_retries must be >= 0, got {max_task_retries}"
            )
        if num_workers is not None and num_workers <= 0:
            raise JobConfigError(f"num_workers must be >= 1, got {num_workers}")
        if retry_policy is not None:
            try:
                retry_policy.validate()
            except ValueError as exc:
                raise JobConfigError(str(exc)) from exc
        self.max_task_retries = (
            retry_policy.max_retries if retry_policy is not None else max_task_retries
        )
        self.num_workers = num_workers
        self.streaming = streaming
        self._tracer = tracer
        self._retry_policy = retry_policy
        self._fault_plan = fault_plan
        self._clock = clock if clock is not None else MonotonicClock()
        # Per-run context, refreshed by each public run()/run_chain() call.
        self._active_policy: RetryPolicy = retry_policy or RetryPolicy(
            max_retries=max_task_retries
        )
        self._active_injector: FaultInjector | None = None
        if isinstance(executor, Executor):
            self._executor: Executor | None = executor
            self._executor_name: str | None = executor.name
        else:
            self._executor = None
            self._executor_name = executor

    def _begin_run(self) -> None:
        """Resolve the retry policy and fault injector for one run.

        Precedence: explicit ``retry_policy`` > the fault plan's embedded
        policy > ``RetryPolicy(max_retries=max_task_retries)``.  The plan
        itself resolves explicit-plan > process-wide default.  A plan gets
        a *fresh* injector per run (same schedule every run); an injector
        instance is reused so its event log accumulates for inspection.
        """
        source = self._fault_plan
        if source is None:
            source = get_default_fault_plan()
        injector: FaultInjector | None = None
        plan: FaultPlan | None = None
        if isinstance(source, FaultInjector):
            injector, plan = source, source.plan
        elif source is not None:
            plan = source
            injector = FaultInjector(plan)
        policy = self._retry_policy
        if policy is None and plan is not None and plan.policy is not None:
            policy = plan.policy
        if policy is None:
            policy = RetryPolicy(max_retries=self.max_task_retries)
        self._active_policy = policy
        self._active_injector = injector

    @property
    def tracer(self) -> Tracer:
        """This runner's tracer (late-bound to the process default)."""
        return self._tracer if self._tracer is not None else get_tracer()

    @property
    def executor_name(self) -> str:
        """The executor this runner resolves to (for display/metadata)."""
        if self._executor is not None:
            return self._executor.name
        if self._executor_name is not None:
            return self._executor_name
        from repro.mapreduce.executors import default_executor_name

        return default_executor_name()

    def close(self) -> None:
        """Shut down an executor instance held by this runner."""
        if self._executor is not None:
            self._executor.shutdown()

    def __enter__(self) -> "Runner":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- public API -------------------------------------------------------------

    def run(
        self,
        job: Job,
        *,
        records: Sequence[Pair] | None = None,
        input_format: InputFormat | None = None,
    ) -> JobResult:
        """Execute one job over in-memory records or an input format."""
        job.validate()
        if (records is None) == (input_format is None):
            raise JobConfigError("provide exactly one of records / input_format")
        if input_format is None:
            input_format = SequenceInputFormat(records, job.conf.num_map_tasks)
        splits = input_format.splits()
        self._begin_run()
        with self._lease_executor() as ex:
            return self._run_job(ex, job, splits)

    def run_chain(
        self,
        chain: JobChain,
        records: Sequence[Pair],
        *,
        pipelined: bool | None = None,
    ) -> ChainResult:
        """Execute a job chain, feeding each job the previous job's output.

        ``pipelined`` (default: the chain's own flag) overlaps adjacent
        jobs: job *k+1*'s map task *i* runs over job *k*'s reduce partition
        *i* as soon as that partition's reducer finishes, instead of
        waiting for the whole job and re-splitting its concatenated output.
        Stage builders after the first are called with an empty record list
        (the data is still in flight), and the downstream job's
        ``num_map_tasks`` is overridden by the upstream reducer count.
        """
        if pipelined is None:
            pipelined = getattr(chain, "pipelined", False)
        self._begin_run()
        with self._lease_executor() as ex:
            if pipelined:
                return self._run_chain_pipelined(ex, chain, records)
            current: List[Pair] = list(records)
            results: List[JobResult] = []
            with self.tracer.span(
                chain.name, kind="chain", stages=len(chain), executor=ex.name
            ):
                for builder in chain.stages:
                    job = builder(current)
                    job.validate()
                    splits = SequenceInputFormat(
                        current, job.conf.num_map_tasks
                    ).splits()
                    result = self._run_job(ex, job, splits)
                    results.append(result)
                    current = list(result.output_pairs())
            return ChainResult(results=results)

    # -- single-job orchestration -------------------------------------------------

    def _run_job(self, ex: Executor, job: Job, splits: List[InputSplit]) -> JobResult:
        spec = JobSpec.of(job)
        counters = Counters()
        tracer = self.tracer
        streaming = (
            StreamingShuffle(
                len(splits),
                job.conf.num_reducers,
                sort_keys=job.conf.sort_keys,
                spill_dir=job.conf.spill_dir,
                spill_threshold_records=job.conf.spill_threshold_records,
            )
            if self.streaming
            else None
        )

        with tracer.span(
            job.name,
            kind="job",
            num_map_tasks=len(splits),
            num_reducers=job.conf.num_reducers,
            executor=ex.name,
        ) as job_span:
            try:
                with tracer.span("map", kind="phase", phase="map") as map_span:
                    t0 = time.perf_counter_ns()
                    map_results, lost = self._run_tasks(
                        ex,
                        execute_map_task,
                        spec,
                        "map",
                        splits,
                        on_done=_ingest_into(
                            streaming, self._active_policy.speculation
                        ),
                        counters=counters,
                    )
                    map_wall = (time.perf_counter_ns() - t0) / 1e9
                    map_span.set_attrs(tasks=len(map_results))

                map_stats = PhaseStats(kind=TaskKind.MAP)
                for _, task_counters, stats in map_results:
                    counters.merge(task_counters)
                    map_stats.tasks.append(stats)
                    _observe_task(stats)

                num_reducers = job.conf.num_reducers
                reduce_pending: _Pending = {}
                reduce_results: List[Any] = [None] * num_reducers
                partitions: List[Grouped] = []
                partition_records: List[int] = []
                with tracer.span("shuffle", kind="phase", phase="shuffle") as sh_span:
                    t1 = time.perf_counter_ns()
                    if streaming is not None:
                        shuffle_stats = streaming.stats
                        shuffle_stats.observe(get_metrics())
                        # With a pool executor, launch each partition's
                        # reduce as soon as it is merged; the next
                        # partition's merge overlaps it.  Inline executors
                        # gain nothing and would mis-parent task spans, so
                        # they defer submission to the reduce phase.
                        overlap = not ex.inline
                        for part in range(num_reducers):
                            grouped = streaming.finalize(part)
                            partition_records.append(
                                sum(len(vs) for _, vs in grouped)
                            )
                            if overlap:
                                future = self._submit_task(
                                    ex, execute_reduce_task, spec, "reduce",
                                    part, grouped, 1,
                                )
                                reduce_pending[future] = (part, grouped, 1)
                            else:
                                partitions.append(grouped)
                    else:
                        map_outputs = [buffers for buffers, _, _ in map_results]
                        partitions, shuffle_stats = shuffle(
                            map_outputs,
                            num_reducers,
                            sort_keys=job.conf.sort_keys,
                            spill_dir=job.conf.spill_dir,
                            spill_threshold_records=job.conf.spill_threshold_records,
                        )
                        partition_records = [
                            sum(len(vs) for _, vs in grouped)
                            for grouped in partitions
                        ]
                    shuffle_wall = (time.perf_counter_ns() - t1) / 1e9
                    sh_span.set_attrs(**shuffle_stats.as_dict())

                # Per-reduce-partition record counts: the skew the paper's
                # partitioning schemes compete on.
                observe_partition_skew(get_metrics(), partition_records)

                with tracer.span("reduce", kind="phase", phase="reduce") as red_span:
                    t2 = time.perf_counter_ns()
                    if reduce_pending:
                        lost.extend(
                            self._drain(
                                ex, execute_reduce_task, spec, "reduce",
                                reduce_pending, reduce_results,
                                counters=counters,
                            )
                        )
                    else:
                        reduce_results, reduce_lost = self._run_tasks(
                            ex, execute_reduce_task, spec, "reduce", partitions,
                            counters=counters,
                        )
                        lost.extend(reduce_lost)
                    reduce_wall = (time.perf_counter_ns() - t2) / 1e9
                    red_span.set_attrs(tasks=len(reduce_results))

                reduce_stats = PhaseStats(kind=TaskKind.REDUCE)
                outputs: List[List[Pair]] = []
                for output, task_counters, stats in reduce_results:
                    outputs.append(output)
                    counters.merge(task_counters)
                    reduce_stats.tasks.append(stats)
                    _observe_task(stats)

                job_span.set_attrs(
                    map_wall_s=round(map_wall, 9),
                    shuffle_wall_s=round(shuffle_wall, 9),
                    reduce_wall_s=round(reduce_wall, 9),
                    output_records=sum(len(p) for p in outputs),
                )
                if lost:
                    job_span.set_attrs(partial=True, lost_partitions=list(lost))
            finally:
                if streaming is not None:
                    streaming.close()

        get_metrics().absorb_counters(counters)
        return JobResult(
            job_name=job.name,
            outputs=outputs,
            counters=counters,
            map_stats=map_stats,
            reduce_stats=reduce_stats,
            shuffle_stats=shuffle_stats,
            map_wall_s=map_wall,
            shuffle_wall_s=shuffle_wall,
            reduce_wall_s=reduce_wall,
            executor=ex.name,
            partial=bool(lost),
            lost_partitions=list(lost),
        )

    # -- pipelined chains ---------------------------------------------------------

    def _run_chain_pipelined(
        self, ex: Executor, chain: JobChain, records: Sequence[Pair]
    ) -> ChainResult:
        """Overlapped chain execution.

        Stage *k*'s reduce futures are drained *inside* stage *k+1*'s map
        phase: each completed reduce partition *i* immediately becomes map
        task *i* of the next job, so with a pool executor the two jobs'
        work is in flight together.  Task indices are pinned to partition
        indices, which keeps outputs deterministic regardless of completion
        order.  All spans are detached (explicitly parented) because the
        overlapping phases cannot nest on the tracer's stack.
        """
        tracer = self.tracer
        chain_span = tracer.start_span(
            chain.name,
            kind="chain",
            stages=len(chain),
            executor=ex.name,
            pipelined=True,
        )
        open_spans: List[Any] = [chain_span]
        results: List[JobResult] = []
        prev: _StageState | None = None
        try:
            for stage_index, builder in enumerate(chain.stages):
                job = builder(list(records) if stage_index == 0 else [])
                job.validate()
                spec = JobSpec.of(job)
                if stage_index == 0:
                    splits = SequenceInputFormat(
                        list(records), job.conf.num_map_tasks
                    ).splits()
                    num_maps = len(splits)
                else:
                    # One downstream map task per upstream reduce partition.
                    num_maps = len(prev.reduce_results)
                state = _StageState(job=job, spec=spec, num_maps=num_maps)
                state.streaming = StreamingShuffle(
                    num_maps,
                    job.conf.num_reducers,
                    sort_keys=job.conf.sort_keys,
                    spill_dir=job.conf.spill_dir,
                    spill_threshold_records=job.conf.spill_threshold_records,
                )
                state.job_span = tracer.start_span(
                    job.name,
                    kind="job",
                    parent=chain_span,
                    num_map_tasks=num_maps,
                    num_reducers=job.conf.num_reducers,
                    executor=ex.name,
                    pipelined=True,
                )
                open_spans.append(state.job_span)

                # Map phase — overlaps the previous stage's reduce drain.
                map_span = tracer.start_span(
                    "map", kind="phase", parent=state.job_span, phase="map"
                )
                open_spans.append(map_span)
                t0 = time.perf_counter_ns()
                map_pending: _Pending = {}
                map_results: List[Any] = [None] * num_maps
                if stage_index == 0:
                    for index, split in enumerate(splits):
                        future = self._submit_task(
                            ex, execute_map_task, spec, "map",
                            index, split, 1, map_span,
                        )
                        map_pending[future] = (index, split, 1)
                else:

                    def _feed(part: int, result: Any) -> Any:
                        output = result[0]
                        split = InputSplit(index=part, records=list(output))
                        future = self._submit_task(
                            ex, execute_map_task, spec, "map",
                            part, split, 1, map_span,
                        )
                        map_pending[future] = (part, split, 1)
                        return result

                    prev.lost.extend(
                        self._drain(
                            ex, execute_reduce_task, prev.spec, "reduce",
                            prev.reduce_pending, prev.reduce_results,
                            on_done=_feed, parent=prev.reduce_span,
                            counters=prev.counters,
                        )
                    )
                    self._finish_stage(ex, prev, results, open_spans)
                state.lost.extend(
                    self._drain(
                        ex, execute_map_task, spec, "map",
                        map_pending, map_results,
                        on_done=_ingest_into(
                            state.streaming, self._active_policy.speculation
                        ),
                        parent=map_span,
                        counters=state.counters,
                    )
                )
                state.map_wall = (time.perf_counter_ns() - t0) / 1e9
                map_span.set_attrs(tasks=num_maps)
                tracer.end_span(map_span)
                open_spans.remove(map_span)
                for _, task_counters, stats in map_results:
                    state.counters.merge(task_counters)
                    state.map_stats.tasks.append(stats)
                    _observe_task(stats)

                # Shuffle: finalize each partition, launch its reduce at
                # once.  The reduce span opens alongside the shuffle span —
                # the two genuinely overlap in pipelined mode.
                sh_span = tracer.start_span(
                    "shuffle", kind="phase", parent=state.job_span, phase="shuffle"
                )
                open_spans.append(sh_span)
                state.reduce_span = tracer.start_span(
                    "reduce", kind="phase", parent=state.job_span, phase="reduce"
                )
                open_spans.append(state.reduce_span)
                state.reduce_t0 = time.perf_counter_ns()
                t1 = time.perf_counter_ns()
                state.streaming.stats.observe(get_metrics())
                state.reduce_results = [None] * job.conf.num_reducers
                partition_records: List[int] = []
                for part in range(job.conf.num_reducers):
                    grouped = state.streaming.finalize(part)
                    partition_records.append(sum(len(vs) for _, vs in grouped))
                    future = self._submit_task(
                        ex, execute_reduce_task, spec, "reduce",
                        part, grouped, 1, state.reduce_span,
                    )
                    state.reduce_pending[future] = (part, grouped, 1)
                state.shuffle_wall = (time.perf_counter_ns() - t1) / 1e9
                sh_span.set_attrs(**state.streaming.stats.as_dict())
                tracer.end_span(sh_span)
                open_spans.remove(sh_span)
                observe_partition_skew(get_metrics(), partition_records)
                prev = state

            prev.lost.extend(
                self._drain(
                    ex, execute_reduce_task, prev.spec, "reduce",
                    prev.reduce_pending, prev.reduce_results,
                    parent=prev.reduce_span,
                    counters=prev.counters,
                )
            )
            self._finish_stage(ex, prev, results, open_spans)
            tracer.end_span(chain_span)
            open_spans.remove(chain_span)
            return ChainResult(results=results)
        except BaseException:
            for span in reversed(open_spans):
                tracer.end_span(span, status="error")
            raise

    def _finish_stage(
        self,
        ex: Executor,
        state: _StageState,
        results: List[JobResult],
        open_spans: List[Any],
    ) -> None:
        """Aggregate a pipelined stage whose reduces have fully drained."""
        tracer = self.tracer
        reduce_stats = PhaseStats(kind=TaskKind.REDUCE)
        outputs: List[List[Pair]] = []
        for output, task_counters, stats in state.reduce_results:
            outputs.append(output)
            state.counters.merge(task_counters)
            reduce_stats.tasks.append(stats)
            _observe_task(stats)
        reduce_wall = (time.perf_counter_ns() - state.reduce_t0) / 1e9
        state.reduce_span.set_attrs(tasks=len(state.reduce_results))
        tracer.end_span(state.reduce_span)
        open_spans.remove(state.reduce_span)
        state.job_span.set_attrs(
            map_wall_s=round(state.map_wall, 9),
            shuffle_wall_s=round(state.shuffle_wall, 9),
            reduce_wall_s=round(reduce_wall, 9),
            output_records=sum(len(p) for p in outputs),
        )
        if state.lost:
            state.job_span.set_attrs(partial=True, lost_partitions=list(state.lost))
        tracer.end_span(state.job_span)
        open_spans.remove(state.job_span)
        state.streaming.close()
        get_metrics().absorb_counters(state.counters)
        results.append(
            JobResult(
                job_name=state.job.name,
                outputs=outputs,
                counters=state.counters,
                map_stats=state.map_stats,
                reduce_stats=reduce_stats,
                shuffle_stats=state.streaming.stats,
                map_wall_s=state.map_wall,
                shuffle_wall_s=state.shuffle_wall,
                reduce_wall_s=reduce_wall,
                executor=ex.name,
                partial=bool(state.lost),
                lost_partitions=list(state.lost),
            )
        )

    # -- task submission and draining ---------------------------------------------

    @contextmanager
    def _lease_executor(self) -> Iterator[Executor]:
        """Yield the runner's executor; named executors live per lease."""
        if self._executor is not None:
            yield self._executor
            return
        ex = make_executor(self._executor_name, num_workers=self.num_workers)
        try:
            yield ex
        finally:
            ex.shutdown()

    def _submit_task(
        self,
        ex: Executor,
        fn: Callable[..., Any],
        spec: JobSpec,
        kind: str,
        index: int,
        payload: Any,
        attempt: int,
        parent: Span | None = None,
    ) -> Future:
        """Submit one task attempt; inline executors trace it right here.

        The fault injector (when armed) is consulted per attempt *in the
        driver* — where decisions are deterministic — and its verdict rides
        to the task body through the picklable
        :func:`~repro.mapreduce.faults.apply_fault` wrapper.
        """
        decision: FaultDecision | None = None
        if self._active_injector is not None:
            decision = self._active_injector.decide(spec.name, kind, index, attempt)
            if decision is not None:
                get_metrics().counter(f"task.{kind}.faults_injected").inc()
        timeout_s = self._active_policy.task_timeout_s
        if ex.inline:
            return ex.submit(
                self._run_attempt_inline,
                fn, spec, kind, index, payload, attempt, ex.name, parent,
                decision, timeout_s,
            )
        if decision is not None:
            return ex.submit(apply_fault, decision, timeout_s, fn, spec, index, payload)
        return ex.submit(fn, spec, index, payload)

    def _run_attempt_inline(
        self,
        fn: Callable[..., Any],
        spec: JobSpec,
        kind: str,
        index: int,
        payload: Any,
        attempt: int,
        executor_name: str,
        parent: Span | None,
        decision: FaultDecision | None = None,
        timeout_s: float | None = None,
    ) -> Any:
        """Execute one attempt in the driver under a real task span."""
        task_id = f"{kind}-{index}"
        with self.tracer.span(
            task_id,
            kind="task",
            parent=parent,
            attempt=attempt,
            executor=executor_name,
        ) as span:
            if decision is not None:
                result = apply_fault(decision, timeout_s, fn, spec, index, payload)
            else:
                result = fn(spec, index, payload)
            _, _, stats = result
            if attempt > 1:
                stats.attempt = attempt
            span.set_attrs(**_task_span_attrs(stats))
        return result

    def _drain(
        self,
        ex: Executor,
        fn: Callable[..., Any],
        spec: JobSpec,
        kind: str,
        pending: _Pending,
        results: List[Any],
        *,
        on_done: Callable[[int, Any], Any] | None = None,
        parent: Span | None = None,
        counters: Counters | None = None,
    ) -> List[str]:
        """Drive pending futures to completion under the active RetryPolicy.

        Successful pool tasks are recorded as synthetic spans; every failed
        attempt is traced, counted, and — within the retry budget —
        rescheduled after its backoff delay (``decision="retry"`` spans
        mark each reschedule).  Futures past ``task_timeout_s`` are
        abandoned (pool executors only; the worker is marked suspect) and
        retried as timeouts; stragglers get speculative backups whose
        losing attempt is discarded before commit.  ``on_done`` fires once
        per task on its first committed result (its non-``None`` return
        replaces the stored result — the streaming shuffle uses this to
        drop map buffers it has already ingested).

        Returns the task ids lost terminally under ``on_lost="degrade"``
        (empty outputs committed in their place); under ``on_lost="fail"``
        raises :class:`JobFailedError` carrying all exhausted tasks'
        attempt errors plus the completed tasks' stats.
        """
        tracer = self.tracer
        policy = self._active_policy
        clock = self._clock
        metrics = get_metrics()
        failures: Dict[int, List[TaskError]] = {}
        exhausted: set[int] = set()
        lost: List[str] = []
        #: Indices with a committed outcome (result, loss, or exhaustion);
        #: late twin futures for a settled index are discarded, not read.
        settled: set[int] = set()
        #: Backoff queue: (ready_at, index, payload, attempt).
        delayed: List[Tuple[float, int, Any, int]] = []
        speculated: set[int] = set()
        durations: List[float] = []
        started: Dict[Future, float] = {}
        entry_now = clock.monotonic()
        for future in pending:
            started.setdefault(future, entry_now)

        def in_flight(index: int) -> bool:
            """A live or queued twin attempt exists for this index."""
            return any(e[0] == index for e in pending.values()) or any(
                d[1] == index for d in delayed
            )

        def commit_lost(index: int, attempt: int) -> None:
            """Degraded mode: substitute an empty output and move on."""
            task_id = f"{kind}-{index}"
            settled.add(index)
            lost.append(task_id)
            metrics.counter(f"task.{kind}.lost").inc()
            if counters is not None:
                counters.framework("tasks_lost")
            tracer.record_span(
                task_id, kind="decision", parent=parent,
                decision="degrade", attempt=attempt,
                task_kind=kind, executor=ex.name,
            )
            get_events().emit(
                "task.degraded", task=task_id, attempt=attempt, job=spec.name
            )
            result = _lost_placeholder(spec, kind, index, attempt)
            if on_done is not None:
                replaced = on_done(index, result)
                if replaced is not None:
                    result = replaced
            results[index] = result

        def settle_failure(
            index: int, payload: Any, attempt: int, failure: TaskError
        ) -> None:
            """Record one failed attempt; retry, degrade, or exhaust."""
            self._note_failure(ex, kind, index, attempt, failure, failures, parent)
            if isinstance(failure, TaskTimeoutError):
                metrics.counter(f"task.{kind}.timeouts").inc()
                if counters is not None:
                    counters.framework("task_timeouts")
            if in_flight(index):
                return  # a speculative twin is still running; let it decide
            task_id = f"{kind}-{index}"
            if attempt <= policy.max_retries:
                delay = policy.backoff_s(task_id, attempt + 1)
                metrics.counter(f"task.{kind}.retries").inc()
                if counters is not None:
                    counters.framework("task_retries")
                tracer.record_span(
                    task_id, kind="decision", parent=parent,
                    decision="retry", attempt=attempt + 1,
                    backoff_s=round(delay, 9),
                    task_kind=kind, executor=ex.name,
                )
                get_events().emit(
                    "task.retry", task=task_id, attempt=attempt + 1,
                    backoff_s=round(delay, 6), job=spec.name,
                )
                delayed.append((clock.monotonic() + delay, index, payload, attempt + 1))
            elif policy.on_lost == "degrade":
                commit_lost(index, attempt)
            else:
                exhausted.add(index)
                settled.add(index)

        while True:
            now = clock.monotonic()
            # Launch retries whose backoff has elapsed.
            waiting: List[Tuple[float, int, Any, int]] = []
            for ready_at, index, payload, attempt in delayed:
                if index in settled:
                    continue
                if ready_at <= now:
                    future = self._submit_task(
                        ex, fn, spec, kind, index, payload, attempt, parent
                    )
                    pending[future] = (index, payload, attempt)
                    started[future] = now
                else:
                    waiting.append((ready_at, index, payload, attempt))
            delayed = waiting
            live = [f for f, e in pending.items() if e[0] not in settled]
            if not live:
                if not delayed:
                    break  # every index settled (twin leftovers are garbage)
                # All runnable work is waiting out a backoff delay.
                next_ready = min(d[0] for d in delayed)
                clock.sleep(max(0.0, next_ready - clock.monotonic()))
                continue
            done, _ = wait(
                live,
                timeout=_drain_wait_timeout(
                    ex, policy, live, started, delayed, durations, now
                ),
                return_when=FIRST_COMPLETED,
            )
            for future in sorted(done, key=lambda f: pending[f][0]):
                index, payload, attempt = pending.pop(future)
                started.pop(future, None)
                if index in settled:
                    # Losing speculative attempt: discard before commit.
                    metrics.counter(f"task.{kind}.duplicates_discarded").inc()
                    continue
                try:
                    result = future.result()
                except TaskError as exc:
                    settle_failure(index, payload, attempt, exc)
                    continue
                except Exception as exc:  # worker crashed outside user code
                    if ex.inline:
                        raise
                    failure = TaskError(f"{kind}-{index}", exc)
                    self._note_failure(
                        ex, kind, index, attempt, failure, failures, parent
                    )
                    if policy.on_lost == "degrade" and not in_flight(index):
                        commit_lost(index, attempt)
                    else:
                        exhausted.add(index)
                        settled.add(index)
                    continue
                _, _, stats = result
                if attempt > 1:
                    stats.attempt = attempt
                durations.append(stats.duration_s)
                if not ex.inline:
                    span_extra = (
                        {"speculative": True} if index in speculated else {}
                    )
                    tracer.record_span(
                        stats.task_id,
                        kind="task",
                        parent=parent,
                        duration_ns=int(stats.duration_s * 1e9),
                        executor=ex.name,
                        **span_extra,
                        **_task_span_attrs(stats),
                    )
                if on_done is not None:
                    replaced = on_done(index, result)
                    if replaced is not None:
                        result = replaced
                results[index] = result
                settled.add(index)

            now = clock.monotonic()
            # Deadline watchdog: abandon futures past their wall-clock
            # budget.  Pool executors only — inline futures resolve during
            # submit, so a deadline can only be honoured cooperatively.
            if policy.task_timeout_s is not None and not ex.inline:
                for future in list(pending):
                    index, payload, attempt = pending[future]
                    if index in settled or future.done():
                        continue
                    if now - started.get(future, now) >= policy.task_timeout_s:
                        del pending[future]
                        started.pop(future, None)
                        if not ex.cancel(future):
                            # Still running: the future is abandoned (its
                            # result will never be read) and its worker
                            # slot is suspect until the body returns.
                            metrics.counter("executor.suspect_workers").inc()
                        tracer.record_span(
                            f"{kind}-{index}", kind="decision", parent=parent,
                            decision="timeout", attempt=attempt,
                            timeout_s=policy.task_timeout_s,
                            task_kind=kind, executor=ex.name,
                        )
                        get_events().emit(
                            "task.timeout", task=f"{kind}-{index}",
                            attempt=attempt, timeout_s=policy.task_timeout_s,
                            job=spec.name,
                        )
                        settle_failure(
                            index, payload, attempt,
                            TaskTimeoutError(
                                f"{kind}-{index}", policy.task_timeout_s
                            ),
                        )
            # Speculation: back up stragglers once enough completions
            # establish a median to compare against (first finisher wins).
            if (
                policy.speculation
                and not ex.inline
                and len(durations) >= policy.speculation_min_completed
            ):
                threshold = policy.speculation_factor * statistics.median(durations)
                for future in list(pending):
                    index, payload, attempt = pending[future]
                    if index in settled or index in speculated or future.done():
                        continue
                    elapsed = now - started.get(future, now)
                    if elapsed > threshold:
                        speculated.add(index)
                        metrics.counter(f"task.{kind}.speculative").inc()
                        if counters is not None:
                            counters.framework("speculative_attempts")
                        tracer.record_span(
                            f"{kind}-{index}", kind="decision", parent=parent,
                            decision="speculate", attempt=attempt,
                            elapsed_s=round(elapsed, 9),
                            task_kind=kind, executor=ex.name,
                        )
                        get_events().emit(
                            "task.speculate", task=f"{kind}-{index}",
                            attempt=attempt, elapsed_s=round(elapsed, 6),
                            job=spec.name,
                        )
                        backup = self._submit_task(
                            ex, fn, spec, kind, index, payload, attempt, parent
                        )
                        pending[backup] = (index, payload, attempt)
                        started[backup] = now
        if exhausted:
            raise JobFailedError(
                spec.name,
                [err for i in sorted(exhausted) for err in failures[i]],
                completed_stats=[r[2] for r in results if r is not None],
            )
        return lost

    def _run_tasks(
        self,
        ex: Executor,
        fn: Callable[..., Any],
        spec: JobSpec,
        kind: str,
        items: Sequence[Any],
        *,
        on_done: Callable[[int, Any], Any] | None = None,
        parent: Span | None = None,
        counters: Counters | None = None,
    ) -> Tuple[List[Any], List[str]]:
        """Submit one task per item and drain them all.

        Returns ``(results, lost task ids)`` — the latter non-empty only
        under ``RetryPolicy(on_lost="degrade")``.
        """
        results: List[Any] = [None] * len(items)
        pending: _Pending = {}
        for index, item in enumerate(items):
            future = self._submit_task(ex, fn, spec, kind, index, item, 1, parent)
            pending[future] = (index, item, 1)
        lost = self._drain(
            ex, fn, spec, kind, pending, results,
            on_done=on_done, parent=parent, counters=counters,
        )
        return results, lost

    def _note_failure(
        self,
        ex: Executor,
        kind: str,
        index: int,
        attempt: int,
        exc: TaskError,
        failures: Dict[int, List[TaskError]],
        parent: Span | None,
    ) -> None:
        """Trace/metric footprint of one failed task attempt."""
        failures.setdefault(index, []).append(exc)
        get_metrics().counter(f"task.{kind}.failures").inc()
        if not ex.inline:
            # Inline attempts traced their own error span as they raised.
            self.tracer.record_span(
                exc.task_id,
                kind="task",
                status="error",
                parent=parent,
                attempt=attempt,
                task_kind=kind,
                executor=ex.name,
                error=str(exc.cause),
            )


def _drain_wait_timeout(
    ex: Executor,
    policy: RetryPolicy,
    live: List[Future],
    started: Dict[Future, float],
    delayed: List[Tuple[float, int, Any, int]],
    durations: List[float],
    now: float,
) -> float | None:
    """How long the drain loop may block before its next housekeeping pass.

    ``None`` (block until a future completes) whenever nothing is
    scheduled: no backoff expiry pending, no deadline to enforce, no armed
    speculation.  Otherwise the earliest of those three, floored at zero.
    """
    candidates: List[float] = []
    if delayed:
        candidates.append(max(0.0, min(d[0] for d in delayed) - now))
    if policy.task_timeout_s is not None and not ex.inline:
        deadlines = [
            started[f] + policy.task_timeout_s - now for f in live if f in started
        ]
        if deadlines:
            candidates.append(max(0.0, min(deadlines)))
    if (
        policy.speculation
        and not ex.inline
        and len(durations) >= policy.speculation_min_completed
    ):
        candidates.append(policy.speculation_poll_s)
    return min(candidates) if candidates else None


def _lost_placeholder(spec: JobSpec, kind: str, index: int, attempt: int) -> Any:
    """The empty committed result of a terminally-lost task.

    Shaped like the real task result so downstream aggregation (counter
    merge, stats, streaming ingest — whose completeness gate must still be
    satisfied) runs unchanged: a lost map task contributes an empty buffer
    per reduce partition, a lost reduce task an empty output list.
    """
    task_kind = TaskKind.MAP if kind == "map" else TaskKind.REDUCE
    stats = TaskStats(
        task_id=f"{kind}-{index}",
        kind=task_kind,
        attempt=attempt,
        partition=index if kind == "reduce" else -1,
    )
    if kind == "map":
        return ([[] for _ in range(spec.num_reducers)], Counters(), stats)
    return ([], Counters(), stats)


def _ingest_into(
    streaming: StreamingShuffle | None,
    speculation: bool = False,
) -> Callable[[int, Any], Any] | None:
    """Drain callback feeding finished map tasks into a streaming shuffle.

    Ingested buffers are replaced by ``None`` in the stored result, so the
    runner holds one copy of the intermediate data, not two.  Under a
    speculating policy, duplicate buffers from a losing backup attempt are
    discarded at the shuffle boundary (the drain loop's ``settled`` index
    set already prevents this in practice — the shuffle-side discard is
    the commit-barrier backstop).
    """
    if streaming is None:
        return None
    on_duplicate = "discard" if speculation else "raise"

    def _ingest(index: int, result: Any) -> Any:
        buffers, task_counters, stats = result
        streaming.ingest(index, buffers, on_duplicate=on_duplicate)
        return (None, task_counters, stats)

    return _ingest


class SerialRunner(Runner):
    """Runs every task inline in the driver, one at a time.

    Alias for ``Runner(SerialExecutor())`` — kept because serial execution
    is the *measurement* configuration (clean per-task timings for the
    cluster simulator) and must stay pinned even when ``REPRO_EXECUTOR``
    redirects default runners elsewhere.
    """

    def __init__(self, max_task_retries: int = 0, tracer: Tracer | None = None):
        super().__init__(
            SerialExecutor(), max_task_retries=max_task_retries, tracer=tracer
        )


class MultiprocessRunner(Runner):
    """Runs tasks in a process pool (back-compat alias).

    Equivalent to ``Runner("processes", num_workers=...)``: one pool now
    serves both phases of a job — and every job of a chain — instead of
    the former pool-per-phase lifecycle.  Task payloads are pickled to
    workers, so user mapper/reducer classes must be module-level.
    """

    def __init__(
        self,
        num_workers: int,
        max_task_retries: int = 0,
        tracer: Tracer | None = None,
    ):
        if num_workers is None or num_workers <= 0:
            raise JobConfigError(f"num_workers must be >= 1, got {num_workers}")
        super().__init__(
            "processes",
            num_workers=num_workers,
            max_task_retries=max_task_retries,
            tracer=tracer,
        )


def run_job(
    job: Job,
    *,
    records: Sequence[Pair] | None = None,
    input_format: InputFormat | None = None,
    runner: Runner | None = None,
) -> JobResult:
    """One-call convenience: run ``job`` with the given or default runner.

    The default runner picks its executor from ``$REPRO_EXECUTOR`` (serial
    when unset), which is how the CI executor matrix exercises every
    backend without per-test plumbing.
    """
    runner = runner or Runner()
    return runner.run(job, records=records, input_format=input_format)
