"""Fixture: state crossing a thread boundary under a guarding lock.

Same shapes as the unsafe twin, but every shared mutation happens inside
a ``with <lock>:`` region — bound method guarded by the instance lock,
closure guarded by a local lock.
"""

import threading


class Tally:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counts = {}

    def work(self) -> None:
        with self._lock:
            self.counts["n"] = self.counts.get("n", 0) + 1

    def start(self) -> None:
        threading.Thread(target=self.work).start()


def fan_out(executor):
    results = []
    results_lock = threading.Lock()

    def task() -> None:
        with results_lock:
            results.append(1)

    executor.submit(task)
    return results
