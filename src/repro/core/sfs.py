"""Sort-Filter-Skyline (SFS) — Chomicki et al.'s presorting refinement of BNL.

Sorting the input by a monotone scoring function (any function where
``a dominates b  ⇒  score(a) < score(b)``) guarantees that no point can be
dominated by a point appearing *after* it in the scan.  The window therefore
only ever accumulates skyline points, one pass always suffices, and no point
is ever evicted — a useful verification baseline for BNL and the default
reference for large inputs.

Two classic monotone scores are provided: the attribute sum (L1 norm) and
the entropy score ``Σ ln(1 + v_i)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Literal

import numpy as np

from repro.core.dominance import DominanceCounter, validate_points
from repro.core.kernels import DominanceKernel, get_kernel

__all__ = ["SFSResult", "sfs_skyline", "monotone_score"]

ScoreName = Literal["sum", "entropy"]


def monotone_score(points: np.ndarray, score: ScoreName = "sum") -> np.ndarray:
    """Evaluate a monotone (dominance-compatible) score per point."""
    pts = validate_points(points)
    if score == "sum":
        return pts.sum(axis=1)
    if score == "entropy":
        shifted = pts - pts.min(axis=0, keepdims=True)
        return np.log1p(shifted).sum(axis=1)
    raise ValueError(f"unknown score {score!r}")


@dataclass(slots=True)
class SFSResult:
    """Outcome of one SFS run."""

    indices: np.ndarray
    dominance_tests: int

    def points(self, points: np.ndarray) -> np.ndarray:
        return np.asarray(points, dtype=np.float64)[self.indices]


def sfs_skyline(
    points: np.ndarray,
    *,
    score: ScoreName | Callable[[np.ndarray], np.ndarray] = "sum",
    counter: DominanceCounter | None = None,
    kernel: str | DominanceKernel | None = None,
) -> SFSResult:
    """Compute the skyline with sort-filter-skyline.

    ``score`` may be one of the named monotone scores or a callable mapping
    the ``(n, d)`` array to per-point scores.  A non-monotone callable will
    produce wrong results; prefer the named scores unless you know better.

    The presorted scan runs through the kernel seam
    (:meth:`~repro.core.kernels.DominanceKernel.sweep_sorted`): the
    ``scalar`` backend is the classic one-candidate-per-step filter loop,
    the ``block`` backend sweeps whole chunks — identical indices either
    way.
    """
    pts = validate_points(points)
    n, d = pts.shape
    scores = score(pts) if callable(score) else monotone_score(pts, score)
    scores = np.asarray(scores, dtype=np.float64)
    if scores.shape != (n,):
        raise ValueError(f"score produced shape {scores.shape}, expected ({n},)")

    # Sort by score with a lexicographic tiebreak.  The tiebreak is a
    # correctness requirement, not cosmetics: floating-point rounding can
    # collapse score(a) and score(b) to the same value even when ``a``
    # dominates ``b`` (e.g. sums 1.0 and 1.0 + 1e-99), and dominance implies
    # lexicographic order, so ties resolved lexicographically keep the SFS
    # invariant that no later point dominates an earlier one.
    keys = tuple(pts[:, j] for j in range(d - 1, -1, -1)) + (scores,)
    order = np.lexsort(keys)
    local = DominanceCounter()
    mask = get_kernel(kernel).sweep_sorted(pts[order], counter=local, stage="sfs")
    if counter is not None:
        counter.merge(local)
    return SFSResult(
        indices=np.sort(order[mask]).astype(np.intp),
        dominance_tests=local.tests,
    )
