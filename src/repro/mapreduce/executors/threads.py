"""Thread-pool executor: in-process concurrency, shared memory."""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable

from repro.mapreduce.errors import JobConfigError
from repro.mapreduce.executors.base import Executor

__all__ = ["ThreadExecutor"]


class ThreadExecutor(Executor):
    """Runs tasks in a lazily-created :class:`ThreadPoolExecutor`.

    Payloads are shared by reference (no pickling), so this is the cheap
    way to overlap tasks whose heavy lifting releases the GIL — the
    skyline jobs' NumPy dominance kernels do.  Task durations reported
    back are measured inside the worker threads and may include GIL
    contention; the runner records them as synthetic (back-dated) spans.

    The lazily-created pool is guarded by ``self._lock`` (the engine's
    lock-discipline contract, enforced by ``repro lint``): concurrent
    first ``submit`` calls — e.g. two pipelined chains sharing one
    executor instance — must not race the pool into existence twice, and
    ``shutdown`` must not tear it down under a submitter.

    Metrics *instrument creation* is likewise locked in the registry;
    histogram observations from inside task code remain best-effort under
    threads (per-instrument increments are unsynchronized).  Counters are
    immune — each task owns a private
    :class:`~repro.mapreduce.counters.Counters` merged in the driver.

    Timeouts: a running task thread cannot be interrupted, so when the
    runner's deadline watchdog fires it *abandons* the future (base
    ``cancel`` succeeds only for not-yet-started tasks) and the hung thread
    keeps occupying a pool slot until it returns on its own — the
    ``executor.suspect_workers`` counter tracks how many slots are suspect.
    """

    name = "threads"

    def __init__(self, num_workers: int | None = None):
        if num_workers is not None and num_workers <= 0:
            raise JobConfigError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers or (os.cpu_count() or 1)
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    def submit(self, fn: Callable[..., Any], /, *args: Any) -> Future:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.num_workers,
                    thread_name_prefix="repro-task",
                )
            pool = self._pool
        return pool.submit(fn, *args)

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)
