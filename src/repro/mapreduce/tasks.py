"""Mapper / combiner / reducer interfaces and their execution contexts.

User code subclasses :class:`Mapper` and :class:`Reducer` (a combiner is just
a :class:`Reducer` run map-side).  Classes — not instances — are attached to
the :class:`~repro.mapreduce.job.Job`, so they remain picklable for the
multiprocessing runner; per-job parameters travel in ``JobConf.params`` and
are available as ``self.params`` after ``setup``.

The :class:`MapContext` buffers emitted pairs per reduce partition and runs
the combiner whenever the in-memory buffer exceeds ``JobConf.spill_records``
(and once more at task end), mirroring Hadoop's spill-time combining.  This
is where the paper's "local skyline computation" middle stage plugs in.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Hashable, Iterable, List, Tuple

from repro.mapreduce.counters import Counters
from repro.mapreduce.errors import TaskError
from repro.mapreduce.serialization import estimate_nbytes
from repro.mapreduce.types import TaskKind, TaskStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (job.py imports us)
    from repro.mapreduce.inputs import InputSplit
    from repro.mapreduce.job import Job

Pair = Tuple[Hashable, Any]


class _TaskBase:
    """Shared lifecycle for mappers and reducers."""

    def __init__(self) -> None:
        self.params: Dict[str, Any] = {}

    def setup(self, params: Dict[str, Any]) -> None:
        """Called once before the first record; default stores ``params``."""
        self.params = params

    def cleanup(self, ctx: "_ContextBase") -> None:
        """Called once after the last record; default does nothing."""


class Mapper(_TaskBase):
    """Transforms one input record into zero or more intermediate pairs."""

    def map(self, key: Hashable, value: Any, ctx: "MapContext") -> None:
        raise NotImplementedError


class Reducer(_TaskBase):
    """Folds all values sharing a key into zero or more output pairs."""

    def reduce(self, key: Hashable, values: Iterable[Any], ctx: "ReduceContext") -> None:
        raise NotImplementedError


class IdentityMapper(Mapper):
    """Passes records through unchanged."""

    def map(self, key: Hashable, value: Any, ctx: "MapContext") -> None:
        ctx.emit(key, value)


class IdentityReducer(Reducer):
    """Emits every value under its key unchanged."""

    def reduce(self, key: Hashable, values: Iterable[Any], ctx: "ReduceContext") -> None:
        for value in values:
            ctx.emit(key, value)


#: A combiner has the reducer interface; the alias documents intent.
Combiner = Reducer


class _ContextBase:
    """State shared by map and reduce contexts: counters and parameters."""

    def __init__(self, params: Dict[str, Any], counters: Counters):
        self.params = params
        self.counters = counters

    def increment(self, group: str, name: str, amount: int = 1) -> None:
        """Bump a user counter (merged into the job counters at task end)."""
        self.counters.increment(group, name, amount)


class MapContext(_ContextBase):
    """Collects a map task's emits into per-reduce-partition buffers."""

    def __init__(
        self,
        params: Dict[str, Any],
        counters: Counters,
        num_partitions: int,
        partition_fn: Callable[[Hashable, int], int],
        combiner_factory: Callable[[], Reducer] | None = None,
        spill_records: int = 0,
        sort_keys: bool = True,
    ):
        super().__init__(params, counters)
        if num_partitions <= 0:
            raise ValueError(f"num_partitions must be positive, got {num_partitions}")
        self.num_partitions = num_partitions
        self._partition_fn = partition_fn
        self._combiner_factory = combiner_factory
        self._spill_records = spill_records
        self._sort_keys = sort_keys
        self._buffers: List[List[Pair]] = [[] for _ in range(num_partitions)]
        self._buffered = 0
        self.records_out = 0
        self.spills = 0

    def emit(self, key: Hashable, value: Any) -> None:
        """Route one intermediate pair to its reduce partition."""
        part = self._partition_fn(key, self.num_partitions)
        if not 0 <= part < self.num_partitions:
            raise TaskError(
                "map", f"partitioner returned {part} outside [0, {self.num_partitions})"
            )
        self._buffers[part].append((key, value))
        self._buffered += 1
        self.records_out += 1
        if self._spill_records and self._buffered >= self._spill_records:
            self._run_combiner()

    def finish(self) -> List[List[Pair]]:
        """Final combine pass; returns the per-partition pair lists."""
        if self._combiner_factory is not None:
            self._run_combiner()
        return self._buffers

    # -- internals ---------------------------------------------------------------

    def _run_combiner(self) -> None:
        if self._combiner_factory is None:
            self._buffered = 0
            return
        self.spills += 1
        self.counters.framework("combiner_invocations")
        for part in range(self.num_partitions):
            buffer = self._buffers[part]
            if not buffer:
                continue
            combined = _combine(
                buffer,
                self._combiner_factory,
                self.params,
                self.counters,
                sort_keys=self._sort_keys,
            )
            self.counters.framework("combiner_in_records", len(buffer))
            self.counters.framework("combiner_out_records", len(combined))
            self._buffers[part] = combined
        self._buffered = sum(len(b) for b in self._buffers)
        # Combined output still counts once toward records_out semantics:
        self.records_out = self._buffered


class ReduceContext(_ContextBase):
    """Collects a reduce task's output pairs."""

    def __init__(self, params: Dict[str, Any], counters: Counters):
        super().__init__(params, counters)
        self.output: List[Pair] = []

    def emit(self, key: Hashable, value: Any) -> None:
        self.output.append((key, value))


def _combine(
    pairs: List[Pair],
    combiner_factory: Callable[[], Reducer],
    params: Dict[str, Any],
    counters: Counters,
    *,
    sort_keys: bool,
) -> List[Pair]:
    """Group ``pairs`` by key and run the combiner over each group."""
    groups: Dict[Hashable, List[Any]] = {}
    for key, value in pairs:
        groups.setdefault(key, []).append(value)
    combiner = combiner_factory()
    combiner.setup(params)
    ctx = ReduceContext(params, counters)
    keys = sorted(groups) if sort_keys else list(groups)
    for key in keys:
        combiner.reduce(key, groups[key], ctx)
    combiner.cleanup(ctx)
    return ctx.output


def run_map_task(
    task_id: str,
    mapper_factory: Callable[[], Mapper],
    records: Iterable[Pair],
    params: Dict[str, Any],
    num_partitions: int,
    partition_fn: Callable[[Hashable, int], int],
    combiner_factory: Callable[[], Reducer] | None,
    spill_records: int,
    sort_keys: bool = True,
) -> Tuple[List[List[Pair]], Counters, float, int, int]:
    """Execute one map task; returns (buffers, counters, seconds, in, out)."""
    counters = Counters()
    ctx = MapContext(
        params,
        counters,
        num_partitions,
        partition_fn,
        combiner_factory,
        spill_records,
        sort_keys,
    )
    mapper = mapper_factory()
    start = time.perf_counter_ns()
    records_in = 0
    try:
        mapper.setup(params)
        for key, value in records:
            records_in += 1
            mapper.map(key, value, ctx)
        mapper.cleanup(ctx)
        buffers = ctx.finish()
    except TaskError:
        raise
    except Exception as exc:
        raise TaskError(task_id, exc) from exc
    duration = (time.perf_counter_ns() - start) / 1e9
    counters.framework("map_input_records", records_in)
    counters.framework("map_output_records", ctx.records_out)
    if ctx.spills:
        counters.framework("map_spills", ctx.spills)
    return buffers, counters, duration, records_in, ctx.records_out


def run_reduce_task(
    task_id: str,
    reducer_factory: Callable[[], Reducer],
    grouped: List[Tuple[Hashable, List[Any]]],
    params: Dict[str, Any],
) -> Tuple[List[Pair], Counters, float, int, int]:
    """Execute one reduce task over pre-grouped input.

    ``grouped`` is a key-sorted list of ``(key, values)`` as produced by the
    shuffle.  Returns (output pairs, counters, seconds, records in, out).
    """
    counters = Counters()
    ctx = ReduceContext(params, counters)
    reducer = reducer_factory()
    records_in = sum(len(vs) for _, vs in grouped)
    start = time.perf_counter_ns()
    try:
        reducer.setup(params)
        for key, values in grouped:
            reducer.reduce(key, values, ctx)
        reducer.cleanup(ctx)
    except TaskError:
        raise
    except Exception as exc:
        raise TaskError(task_id, exc) from exc
    duration = (time.perf_counter_ns() - start) / 1e9
    counters.framework("reduce_input_records", records_in)
    counters.framework("reduce_output_records", len(ctx.output))
    return ctx.output, counters, duration, records_in, len(ctx.output)


# ---------------------------------------------------------------------------
# Executor-facing task units
# ---------------------------------------------------------------------------
#
# Everything below is the *task side* of the engine: a picklable view of a
# job plus the two module-level task bodies executors actually run.  They
# live here (not in runner.py) because they are execution-policy-free —
# the same functions run inline, in a worker thread, or in a worker
# process reached by pickle.


@dataclass(slots=True)
class JobSpec:
    """The picklable task-side view of a job.

    A :class:`~repro.mapreduce.job.Job` carries builder conveniences that
    tasks never need; this spec is the flattened subset that travels to
    worker processes with each task submission.
    """

    name: str
    mapper: type
    reducer: type
    combiner: type | None
    params: Dict[str, Any]
    num_reducers: int
    partitioner: Any
    spill_records: int
    sort_keys: bool

    @classmethod
    def of(cls, job: "Job") -> "JobSpec":
        """Flatten a validated job into its task-side spec."""
        return cls(
            name=job.name,
            mapper=job.mapper,
            reducer=job.reducer,
            combiner=job.combiner,
            params=dict(job.conf.params),
            num_reducers=job.conf.num_reducers,
            partitioner=job.conf.partitioner,
            spill_records=job.conf.spill_records,
            sort_keys=job.conf.sort_keys,
        )


def execute_map_task(
    spec: JobSpec, task_index: int, split: "InputSplit"
) -> Tuple[List[List[Pair]], Counters, TaskStats]:
    """One complete map task: body + volume accounting, executor-agnostic."""
    task_id = f"map-{task_index}"
    buffers, counters, duration, rin, rout = run_map_task(
        task_id,
        spec.mapper,
        split.records,
        spec.params,
        spec.num_reducers,
        spec.partitioner,
        spec.combiner,
        spec.spill_records,
        spec.sort_keys,
    )
    bytes_out = sum(
        estimate_nbytes(k) + estimate_nbytes(v) for buf in buffers for k, v in buf
    )
    stats = TaskStats(
        task_id=task_id,
        kind=TaskKind.MAP,
        duration_s=duration,
        records_in=rin,
        records_out=rout,
        bytes_out=bytes_out,
    )
    return buffers, counters, stats


def execute_reduce_task(
    spec: JobSpec, part_index: int, grouped: List[Tuple[Hashable, List[Any]]]
) -> Tuple[List[Pair], Counters, TaskStats]:
    """One complete reduce task over a pre-grouped partition."""
    task_id = f"reduce-{part_index}"
    output, counters, duration, rin, rout = run_reduce_task(
        task_id, spec.reducer, grouped, spec.params
    )
    bytes_out = sum(estimate_nbytes(k) + estimate_nbytes(v) for k, v in output)
    stats = TaskStats(
        task_id=task_id,
        kind=TaskKind.REDUCE,
        duration_s=duration,
        records_in=rin,
        records_out=rout,
        bytes_out=bytes_out,
        partition=part_index,
    )
    return output, counters, stats
