"""End-to-end tests for the serial and multiprocessing runners."""

import numpy as np
import pytest

from repro.mapreduce import (
    Job,
    JobChain,
    JobConf,
    JobConfigError,
    JobFailedError,
    Mapper,
    MultiprocessRunner,
    Reducer,
    SerialRunner,
    SingleReducerPartitioner,
    run_job,
)
from repro.mapreduce.fs import BlockFileSystem
from repro.mapreduce.inputs import TextInputFormat
from repro.mapreduce.types import TaskKind


class TokenMapper(Mapper):
    def map(self, key, value, ctx):
        for word in value.split():
            ctx.emit(word, 1)
            ctx.increment("app", "tokens")


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


class CrashOnXMapper(Mapper):
    def map(self, key, value, ctx):
        if value == "x":
            raise RuntimeError("poisoned record")
        ctx.emit(value, 1)


# Module-level so the job stays picklable under REPRO_EXECUTOR=processes.
class ArrayMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(0, np.asarray(value))


class StackReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, np.vstack(list(values)).sum())


def _wordcount_job(reducers=2, maps=2, combiner=None):
    return Job(
        name="wordcount",
        mapper=TokenMapper,
        reducer=SumReducer,
        combiner=combiner,
        conf=JobConf(num_reducers=reducers, num_map_tasks=maps),
    )


WORDS = [(None, "a b a"), (None, "b b c"), (None, "c a d")]
EXPECTED = {"a": 3, "b": 3, "c": 2, "d": 1}


class TestSerialRunner:
    def test_wordcount(self):
        result = run_job(_wordcount_job(), records=WORDS)
        assert dict(result.output_pairs()) == EXPECTED

    def test_counters_merged(self):
        result = run_job(_wordcount_job(), records=WORDS)
        assert result.counters.value("app", "tokens") == 9
        assert result.counters.value("framework", "map_input_records") == 3

    def test_task_stats_populated(self):
        result = run_job(_wordcount_job(maps=3), records=WORDS)
        assert len(result.map_stats) == 3
        assert len(result.reduce_stats) == 2
        assert result.map_stats.kind is TaskKind.MAP
        assert result.map_stats.records_in == 3
        assert all(t.duration_s >= 0 for t in result.map_stats.tasks)
        assert result.wall_s > 0

    def test_combiner_does_not_change_result(self):
        plain = run_job(_wordcount_job(), records=WORDS)
        combined = run_job(_wordcount_job(combiner=SumReducer), records=WORDS)
        assert dict(plain.output_pairs()) == dict(combined.output_pairs())
        assert (
            combined.shuffle_stats.records < plain.shuffle_stats.records
        ), "combiner should shrink shuffle volume"

    def test_single_reducer_partitioner(self):
        job = Job(
            name="single",
            mapper=TokenMapper,
            reducer=SumReducer,
            conf=JobConf(
                num_reducers=3, partitioner=SingleReducerPartitioner()
            ),
        )
        result = run_job(job, records=WORDS)
        assert [len(p) for p in result.outputs] == [4, 0, 0]

    def test_requires_exactly_one_input(self):
        with pytest.raises(JobConfigError):
            run_job(_wordcount_job())
        fs = BlockFileSystem()
        fs.write_text("/in.txt", "a b")
        fmt = TextInputFormat(fs, "/in.txt")
        with pytest.raises(JobConfigError):
            run_job(_wordcount_job(), records=WORDS, input_format=fmt)

    def test_file_input(self):
        fs = BlockFileSystem(block_size=8)
        fs.write_text("/in.txt", "a b a\nb b c\nc a d")
        result = run_job(
            _wordcount_job(), input_format=TextInputFormat(fs, "/in.txt")
        )
        assert dict(result.output_pairs()) == EXPECTED

    def test_failing_task_raises_job_failed(self):
        job = Job(
            name="crash",
            mapper=CrashOnXMapper,
            reducer=SumReducer,
            conf=JobConf(num_reducers=1),
        )
        with pytest.raises(JobFailedError) as info:
            run_job(job, records=[(None, "ok"), (None, "x")])
        assert "crash" in str(info.value)

    def test_validation_rejects_non_mapper(self):
        job = Job(name="bad", mapper=SumReducer, reducer=SumReducer)  # type: ignore[arg-type]
        with pytest.raises(JobConfigError):
            run_job(job, records=WORDS)

    def test_empty_input(self):
        result = run_job(_wordcount_job(), records=[])
        assert list(result.output_pairs()) == []

    def test_numpy_values_flow_through(self):
        job = Job(
            name="np",
            mapper=ArrayMapper,
            reducer=StackReducer,
            conf=JobConf(num_reducers=1),
        )
        result = run_job(job, records=[(0, [1.0, 2.0]), (1, [3.0, 4.0])])
        assert list(result.output_values()) == [10.0]


class TestRetries:
    def test_deterministic_failure_exhausts_retries(self):
        job = Job(
            name="crash",
            mapper=CrashOnXMapper,
            reducer=SumReducer,
            conf=JobConf(num_reducers=1),
        )
        runner = SerialRunner(max_task_retries=2)
        with pytest.raises(JobFailedError) as info:
            runner.run(job, records=[(None, "x")])
        assert len(info.value.failures) == 3  # 1 try + 2 retries

    def test_negative_retries_rejected(self):
        with pytest.raises(JobConfigError):
            SerialRunner(max_task_retries=-1)


class TestJobChain:
    def test_two_stage_pipeline(self):
        def stage1(records):
            return _wordcount_job()

        def stage2(records):
            # Second job: re-key counts by parity of the count.
            class ParityMapper(Mapper):
                def map(self, key, value, ctx):
                    ctx.emit(value % 2, 1)

            return Job(
                name="parity",
                mapper=ParityMapper,
                reducer=SumReducer,
                conf=JobConf(num_reducers=1),
            )

        chain = JobChain("wc-parity", [stage1, stage2])
        result = SerialRunner().run_chain(chain, WORDS)
        assert len(result.results) == 2
        # counts are {3,3,2,1} -> parities {1:2 odd, 0:1}... 3,3 odd, 2 even, 1 odd
        assert dict(result.final.output_pairs()) == {0: 1, 1: 3}
        assert result.wall_s >= result.final.wall_s

    def test_phase_stats_concatenated(self):
        class CountKeyMapper(Mapper):
            def map(self, key, value, ctx):
                ctx.emit(key, value)

        second = Job(
            name="passthrough",
            mapper=CountKeyMapper,
            reducer=SumReducer,
            conf=JobConf(num_reducers=1, num_map_tasks=1),
        )
        chain = JobChain("x", [lambda r: _wordcount_job(), lambda r: second])
        result = SerialRunner().run_chain(chain, WORDS)
        assert len(result.phase_stats(TaskKind.MAP)) == 3

    def test_empty_chain_rejected(self):
        with pytest.raises(JobConfigError):
            JobChain("empty", [])


class TestMultiprocessRunner:
    def test_matches_serial(self):
        serial = run_job(_wordcount_job(maps=3), records=WORDS)
        mp = MultiprocessRunner(num_workers=2).run(
            _wordcount_job(maps=3), records=WORDS
        )
        assert dict(mp.output_pairs()) == dict(serial.output_pairs())
        assert mp.counters.value("app", "tokens") == 9

    def test_failure_propagates(self):
        job = Job(
            name="crash",
            mapper=CrashOnXMapper,
            reducer=SumReducer,
            conf=JobConf(num_reducers=1),
        )
        with pytest.raises(JobFailedError):
            MultiprocessRunner(num_workers=2).run(job, records=[(None, "x")])

    def test_failure_preserves_real_cause(self):
        # TaskError must survive the pool's pickle round-trip; a broken
        # round-trip kills the worker result pipe and masks the user error
        # as BrokenProcessPool.
        job = Job(
            name="crash",
            mapper=CrashOnXMapper,
            reducer=SumReducer,
            conf=JobConf(num_reducers=1, num_map_tasks=3),
        )
        records = [(None, "a"), (None, "b"), (None, "x")]
        with pytest.raises(JobFailedError) as info:
            MultiprocessRunner(num_workers=2).run(job, records=records)
        assert len(info.value.failures) == 1
        assert "poisoned record" in str(info.value.failures[0].cause)
        # The two healthy tasks still completed and report their timings.
        assert len(info.value.completed_stats) == 2

    def test_bad_worker_count(self):
        with pytest.raises(JobConfigError):
            MultiprocessRunner(num_workers=0)
