"""kernel-seam: dominance comparisons must route through the kernel seam.

:mod:`repro.core.kernels` is the single switch point between the scalar
reference backend and the columnar block backend (``--kernel`` /
``$REPRO_KERNEL``).  A hot path that calls the raw primitives of
:mod:`repro.core.dominance` directly is pinned to point-at-a-time
semantics: it ignores the selected backend, its comparisons never reach
the per-stage ``dominance_tests`` accounting the kernels thread through
:class:`~repro.core.dominance.DominanceCounter`, and the differential
parity suite cannot exercise it under both backends.

Flagged: any call to ``dominates`` / ``incomparable`` / ``dominates_any``
/ ``dominated_by_any`` / ``dominance_matrix`` / ``dominated_mask`` whose
name is imported from ``repro.core.dominance`` (directly or via the
module object).  Importing the names is fine — re-exports and type
references don't compare anything — only call sites are findings.

Legitimate direct use exists and is pragma'd, with the reason on the
line: the scalar kernel *is* the reference implementation
(``repro.core.kernels``), and the brute-force oracles
(``skyline_numpy``, D&C's base case) are deliberately kernel-independent
cross-checks.  Suppress such a site with ``# repro: allow[kernel-seam]``
and say why.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Rule, register
from repro.analysis.findings import Finding
from repro.analysis.project import Module, Project

#: The dominance-comparison primitives the kernels wrap.
_PRIMITIVES = frozenset(
    {
        "dominates",
        "incomparable",
        "dominates_any",
        "dominated_by_any",
        "dominance_matrix",
        "dominated_mask",
    }
)

#: The module that owns the primitives (its own code may call them freely).
_DOMINANCE_MODULE = "repro.core.dominance"


@register
class KernelSeamRule(Rule):
    """Hot paths must compare through DominanceKernel, not raw primitives."""

    id = "kernel-seam"

    def check_module(self, module: Module, project: Project) -> Iterator[Finding]:
        if module.name == _DOMINANCE_MODULE:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            primitive = _primitive_called(module, node)
            if primitive is not None:
                yield self.finding(
                    module,
                    node,
                    f"direct call to repro.core.dominance.{primitive}() "
                    "bypasses the kernel seam: route it through "
                    "repro.core.kernels.DominanceKernel (get_kernel) so the "
                    "--kernel backend selection and dominance_tests "
                    "accounting apply",
                )


def _primitive_called(module: Module, call: ast.Call) -> str | None:
    """The primitive's name when ``call`` invokes one from the dominance
    module through this module's imports; ``None`` otherwise."""
    func = call.func
    if isinstance(func, ast.Name):
        binding = module.bindings.get(func.id)
        if (
            binding is not None
            and binding.kind == "import"
            and binding.module == _DOMINANCE_MODULE
            and binding.orig_name in _PRIMITIVES
        ):
            return binding.orig_name
        return None
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.attr not in _PRIMITIVES:
            return None
        binding = module.bindings.get(func.value.id)
        if binding is None or binding.kind != "import":
            return None
        target = binding.module
        if binding.orig_name:
            target = f"{binding.module}.{binding.orig_name}"
        if target == _DOMINANCE_MODULE:
            return func.attr
    return None
